"""Experiment F9/F10 -- Figure 9's rules generate 2D lattices (Theorem 6).

Random structured programs are executed, their operation-level task
graphs reconstructed, and the 2D-lattice property machine-checked
(single source/sink, lattice, order dimension <= 2).  The timed portion
measures the interpreter alone (the substrate cost every detector pays).
"""

from __future__ import annotations

import pytest

from repro.forkjoin import build_task_graph, run
from repro.lattice.realizer import is_two_dimensional
from repro.workloads.synthetic import SyntheticConfig, random_program


@pytest.mark.parametrize("seed", range(8))
def test_random_task_graphs_are_2d_lattices(seed):
    cfg = SyntheticConfig(seed=seed, max_tasks=14, ops_per_task=5)
    ex = run(random_program(cfg), record_events=True)
    tg = build_task_graph(ex.events)
    assert len(tg.graph.sources()) == 1
    assert len(tg.graph.sinks()) == 1
    assert tg.poset.is_lattice()
    assert is_two_dimensional(tg.poset)


def test_figure10_line_timeline(capsys):
    """Figure 10's presentation: the evolving line of task points,
    one horizontal snapshot per transition, printed stacked.  The
    invariants the proof of Theorem 6 uses are asserted on every
    snapshot: forks insert immediately left of the forker, joins remove
    the joiner's immediate left neighbour, the line ends as the root
    alone."""
    from repro.forkjoin import fork, join_left, read, run, write
    from repro.viz.timeline import LineTracker, render_timeline

    def stageify(self, n):
        if n:
            yield write(("buf", n))
            yield fork(stageify, n - 1)
            yield read(("buf", n))
            yield join_left()

    def main(self):
        yield fork(stageify, 3)
        yield join_left()

    tracker = LineTracker()
    run(main, observers=[tracker])
    prev = None
    for desc, line, active in tracker.snapshots:
        if prev is not None and desc.startswith("fork"):
            child = line[line.index(active) - 1]
            assert prev.index(active) == line.index(child) == line.index(active) - 1
        prev = line
    assert tracker.snapshots[-1][1] == [0]
    with capsys.disabled():
        print("\nFigure 10-style timeline (nested fork/join):")
        print(render_timeline(tracker))


@pytest.mark.parametrize("max_tasks", [64, 512, 2048])
def test_bench_interpreter_throughput(benchmark, max_tasks):
    cfg = SyntheticConfig(
        seed=42, max_tasks=max_tasks, ops_per_task=8,
        fork_probability=0.4,
    )
    body = random_program(cfg)
    ex = benchmark(run, body)
    assert ex.task_count > max_tasks // 2
