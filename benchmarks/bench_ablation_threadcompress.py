"""Experiment A2 -- ablation: thread compression (transformation (8)).

Section 4: "As currently formulated, the algorithm requires storing
every visited vertex ... we decompose the vertices into threads" so
bookkeeping is per-thread, not per-operation.  This ablation runs the
same workload twice:

* compressed -- the online detector over thread ids (the paper);
* uncompressed -- the delayed suprema walker over the *vertex-level*
  delayed traversal of the reconstructed task graph (one union-find
  element per executed operation).

Both must answer every ordering query identically (equation (9)); the
table shows the bookkeeping gap (union-find elements tracked).
"""

from __future__ import annotations

import pytest

from repro.bench.tables import print_table
from repro.core.delayed import DelayedSupremaWalker
from repro.detectors import Lattice2DDetector
from repro.forkjoin import build_task_graph, run
from repro.forkjoin.pipeline import PipelineSpec, pipeline_body
from repro.lattice.dominance import Diagram
from repro.lattice.nonseparating import delayed_nonseparating_traversal
from repro.workloads.pipelines import clean_pipeline


def build_both(n_items, n_stages):
    items, stages = clean_pipeline(n_items, n_stages)
    body = pipeline_body(PipelineSpec(tuple(items), tuple(stages)))
    det = Lattice2DDetector()
    ex = run(body, observers=[det], record_events=True)
    tg = build_task_graph(ex.events)
    return det, ex, tg


def vertex_level_walk(tg):
    diagram = Diagram.from_poset(tg.poset)
    items = delayed_nonseparating_traversal(diagram, tg.poset.leq)
    walker = DelayedSupremaWalker(check_preconditions=False)
    for item in items:
        walker.feed(item)
    return walker


def test_equation_9_compression_preserves_comparisons():
    """Sup(x, t) = t  iff  Sup(tid(x), tid(t)) = tid(t) -- checked by
    replaying the vertex-level walk and comparing every x ⊑ t verdict
    with the true order (both sides were already validated against it
    separately; here we check them against each other)."""
    det, ex, tg = build_both(6, 3)
    diagram = Diagram.from_poset(tg.poset)
    items = delayed_nonseparating_traversal(diagram, tg.poset.leq)
    walker = DelayedSupremaWalker()
    visited = []
    mismatches = []

    def on_visit(t, w):
        for x in visited:
            vertex_verdict = w.sup(x, t) == t
            order_verdict = tg.poset.leq(x, t)
            if vertex_verdict != order_verdict:
                mismatches.append((x, t))
        visited.append(t)

    walker.walk(items, on_visit)
    assert not mismatches, mismatches[:5]


def test_bookkeeping_gap_table():
    rows = []
    for n_items, n_stages in [(4, 3), (8, 4), (16, 4)]:
        det, ex, tg = build_both(n_items, n_stages)
        walker = vertex_level_walk(tg)
        rows.append(
            {
                "items x stages": f"{n_items}x{n_stages}",
                "ops": ex.op_count,
                "threads": ex.task_count,
                "uf elems (compressed)": det.engine.thread_count,
                "uf elems (vertex-level)": len(walker.unionfind),
            }
        )
    print_table(
        rows, title="A2: thread compression ablation (transformation (8))"
    )
    for row in rows:
        assert row["uf elems (compressed)"] == row["threads"]
        assert row["uf elems (vertex-level)"] == row["ops"]
        assert row["uf elems (compressed)"] < row["uf elems (vertex-level)"]


@pytest.mark.parametrize("mode", ["compressed", "vertex-level"])
def test_bench_modes(benchmark, mode):
    if mode == "compressed":
        def once():
            det, ex, tg = build_both(8, 4)
            return det

        benchmark(once)
    else:
        _, _, tg = build_both(8, 4)

        def once():
            return vertex_level_walk(tg)

        benchmark(once)
