"""Experiment A3 -- ablation: sparse vs dense vector clocks vs 2D.

Section 1's Θ(n)-per-location critique describes the textbook *dense*
vector-clock implementation; practical detectors use sparse tricks that
soften (but cannot remove) the asymptotics.  This ablation runs the
same read-shared pipeline under

* the 2D detector (Θ(1) per location, O(1) clock work per event),
* sparse dict clocks (entries only for related threads),
* dense numpy clocks (full-width copies on every fork/join),

reporting total shadow entries, metadata and the dense implementation's
copied-element counter, whose superlinear growth in the task count is
the concrete form of the paper's scalability warning.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import DETECTOR_FACTORIES
from repro.bench.tables import print_table
from repro.forkjoin.pipeline import run_pipeline
from repro.workloads.pipelines import read_shared_pipeline

NAMES = ("lattice2d", "vectorclock", "vectorclock-dense")
SWEEP = [8, 32, 128]


def run_one(name, n_items):
    items, stages = read_shared_pipeline(n_items, 4)
    det = DETECTOR_FACTORIES[name]()
    ex = run_pipeline(items, stages, observers=[det])
    assert det.races == []
    return det, ex


def test_clock_ablation_table():
    rows = []
    copied = []
    tasks = []
    for n_items in SWEEP:
        row = {}
        for name in NAMES:
            det, ex = run_one(name, n_items)
            row.setdefault("tasks", ex.task_count)
            row[f"{name} shadow"] = det.shadow_total_entries()
            row[f"{name} metadata"] = det.metadata_entries()
            if name == "vectorclock-dense":
                row["dense copies"] = det.elements_copied
                copied.append(det.elements_copied)
                tasks.append(ex.task_count)
        rows.append(row)
    print_table(rows, title="A3: clock representation ablation "
                            "(read-shared pipeline)")
    # Dense copy work grows superlinearly in the task count: 4x the
    # tasks must cost clearly more than 4x the copies.
    t_ratio = tasks[-1] / tasks[0]
    c_ratio = copied[-1] / copied[0]
    assert c_ratio > 2 * t_ratio, (t_ratio, c_ratio)
    # And the 2D detector's totals stay the smallest at the top scale.
    last = rows[-1]
    assert last["lattice2d shadow"] == min(
        last[f"{n} shadow"] for n in NAMES
    )


@pytest.mark.parametrize("name", NAMES)
def test_bench_clock_variants(benchmark, name):
    det, _ = benchmark(run_one, name, 32)
    assert det.shadow_total_entries() > 0
