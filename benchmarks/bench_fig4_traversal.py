"""Experiment F4 -- Figure 4: the non-separating traversal.

Regenerates Figure 4's caption verbatim from the diagram, checks the
last-arc forest (solid arcs in the figure), and times traversal
construction on grids up to 10^4 vertices (linear by Euler's formula --
Theorem 3's traversal term).
"""

from __future__ import annotations

import pytest

from repro.core.traversal import check_wellformed
from repro.events import Arc, format_traversal
from repro.lattice.generators import figure3_diagram, grid_diagram
from repro.lattice.nonseparating import nonseparating_traversal

FIGURE4 = (
    "(1, 1)(1, 2)(2, 2)(2, 3)(3, 3)(3, 6)(2, 5)(1, 4)(4, 4)(4, 5)(5, 5)"
    "(5, 6)(6, 6)(6, 9)(5, 8)(4, 7)(7, 7)(7, 8)(8, 8)(8, 9)(9, 9)"
)


def test_caption_verbatim():
    assert format_traversal(nonseparating_traversal(figure3_diagram())) == FIGURE4


def test_last_arc_forest_at_cursor_55():
    """At the cursor (5,5), the last-arc forest is the trees {(3,6)},
    {(2,5)} and {(1,4)} -- the black solid arcs of Figure 4."""
    items = nonseparating_traversal(figure3_diagram())
    cursor = items.index(next(x for x in items if repr(x) == "(5)"))
    prefix_last = {
        (a.src, a.dst)
        for a in items[:cursor]
        if isinstance(a, Arc) and a.last
    }
    assert prefix_last == {(3, 6), (2, 5), (1, 4)}


@pytest.mark.parametrize("side", [10, 32, 100])
def test_bench_traversal_scales_linearly(benchmark, side):
    diagram = grid_diagram(side, side)
    items = benchmark(nonseparating_traversal, diagram)
    # |T| = |V| + |E|
    assert len(items) == diagram.graph.vertex_count + diagram.graph.arc_count


def test_traversal_wellformed_on_large_grid():
    check_wellformed(nonseparating_traversal(grid_diagram(40, 40)))
