"""Experiment X1 (extension) -- language-independent detection.

The paper stresses its algorithm works on any 2D-lattice task graph,
"independent of any language constructs".  This extension experiment
exercises that end to end on grid lattices of growing size:

* offline detection on the annotated DAG (realizer -> diagram ->
  traversal -> Figure 5/6), and
* synthesis of a fork-join execution (converse of Theorem 6) replayed
  through the online detector,

asserting the two agree and timing both paths.  Grids use their
analytic diagrams so the (test-scale) realizer search is not the
bottleneck being measured.
"""

from __future__ import annotations

import pytest

from repro.core.reports import AccessKind
from repro.detectors import Lattice2DDetector, detect_races_on_lattice
from repro.forkjoin.replay import replay_events
from repro.forkjoin.synthesis import synthesize_events
from repro.lattice.generators import grid_diagram


def annotate(diagram, stride=5):
    """Conflicting accesses on a striped location pool; races whenever
    two incomparable cells share a stripe."""
    accesses = {}
    for v in diagram.graph.vertices():
        i, j = v
        kind = AccessKind.WRITE if (i + j) % 3 == 0 else AccessKind.READ
        accesses[v] = [(("stripe", (i * 3 + j) % stride), kind)]
    return accesses


@pytest.mark.parametrize("side", [4, 8, 16])
def test_offline_and_online_agree(side):
    diagram = grid_diagram(side, side)
    accesses = annotate(diagram)
    offline = detect_races_on_lattice(
        diagram.graph, accesses, diagram=diagram
    )
    synth = synthesize_events(diagram, accesses)
    online = Lattice2DDetector()
    replay_events(synth.events, observers=[online])
    assert bool(offline) == bool(online.races)
    # Grids of this shape with striped conflicting accesses do race.
    assert offline and online.races


@pytest.mark.parametrize("side", [8, 16, 32])
def test_bench_offline_detection(benchmark, side):
    diagram = grid_diagram(side, side)
    accesses = annotate(diagram)
    reports = benchmark(
        detect_races_on_lattice, diagram.graph, accesses, diagram=diagram
    )
    assert reports


@pytest.mark.parametrize("side", [8, 16, 32])
def test_bench_synthesis(benchmark, side):
    diagram = grid_diagram(side, side)
    accesses = annotate(diagram)
    synth = benchmark(synthesize_events, diagram, accesses)
    assert synth.task_count >= side  # one thread per grid column-ish


def test_bench_synthesized_replay(benchmark):
    diagram = grid_diagram(16, 16)
    synth = synthesize_events(diagram, annotate(diagram))

    def once():
        det = Lattice2DDetector()
        replay_events(synth.events, observers=[det])
        return det

    det = benchmark(once)
    assert det.races
