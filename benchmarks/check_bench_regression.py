"""CI gate: fail on a >25% engine-throughput regression.

Compares a freshly measured ``BENCH_engine.json`` against the baseline
committed in git (the record as of the checkout, before the benchmark
run overwrote it). The gated series:

* ``events_per_sec.batched`` -- the serial fast path every other tier
  is measured against; its shape tests already pin the *ratios*
  (parallel > batched, batched >= 2x per-event), so one absolute
  anchor suffices for the engine;
* ``events_per_sec.serve_4s`` -- the serving layer's 4-session
  loopback throughput, the steady-state shape of a real deployment.
  Skipped (with a note) when the baseline predates the serving layer,
  so the gate can introduce itself without failing its own PR.
* ``events_per_sec.depa`` -- the array-native DePa backend behind the
  vectorized kernel; its own shape test pins the ratio over
  ``batched`` (2.8x floor, 4x on the multi-run median), this gate pins
  the absolute number.  Skipped (with a note) when the baseline
  predates the backend.
* ``events_per_sec.depa_parallel`` -- the depa-native process pool --
  and ``events_per_sec.serve_depa_1s`` -- a depa-negotiated serve
  session's loopback throughput.  Both self-introducing: skipped (with
  a note) when the baseline predates them, matching the convention
  every tier above followed.  The fresh
  ``speedup_depa_parallel_vs_depa`` ratio is additionally gated >= 1.0,
  with the same ``cpu_count`` < 2 softening as the lattice2d pool
  (depa workers shed no validation work, so a single-core pool is pure
  scheduling overhead).
* ``events_per_sec.predict`` -- the sound race-prediction engine (shb
  vector clocks plus candidate-pair windows).  Skipped (with a note)
  when the baseline predates prediction, so the gate can introduce
  itself without failing its own PR.  The fresh record must also carry
  ``differential.predict_sound`` == true: a prediction engine that
  stopped covering the observed races is a correctness bug, not a
  perf trade.
* ``events_per_sec.serve_multinode_2w`` / ``_4w`` -- the
  location-sharded gateway's single-session loopback throughput over 2
  and 4 engine worker processes (``docs/SCALE_OUT.md``).  Both
  self-introducing (skipped with a note when the baseline predates the
  multi-node tier).  No speedup floor: the bench host is single-core,
  so worker processes measure routing overhead, not parallelism.  The
  fresh record must instead carry
  ``differential.serve_multinode_agrees`` == true -- a gateway that
  changed race verdicts is a correctness bug, not a perf trade.
* ``events_per_sec.compressed`` -- memoized detection over the
  grammar-compressed loops workload.  Self-introducing (skipped with a
  note when the baseline predates the compressed subsystem).  The
  fresh record must also carry ``differential.compressed_agrees`` ==
  true and a ``compression_ratio`` >= 3.0: a compressed path that
  changed verdicts or a container that stopped paying for itself is a
  correctness/size bug, not a perf trade.
* ``checkpoint.save_ms`` / ``checkpoint.restore_ms`` /
  ``checkpoint.resume_replay_overhead`` -- the fault-tolerance layer's
  costs, gated *lower-is-better* with a generous 2x ceiling (these are
  millisecond-scale timings, noisy on shared runners).  Skipped when
  the baseline predates the checkpoint benchmark.
* ``speedup_parallel_vs_batched`` -- the multi-process tier must keep
  paying for itself (> 1.0x) in the fresh record.  Skipped (with a
  note) when the fresh run recorded ``cpu_count`` < 2 or no
  ``cpu_count`` at all: on a single-core runner the worker pool is
  pure scheduling overhead and the ratio says nothing about the
  kernel.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json FRESH.json

Exits 0 when fresh throughput is within tolerance (or improved), 1 on
regression, 2 on unusable inputs. CI extracts the baseline with
``git show HEAD:BENCH_engine.json``; after an intentional perf change,
commit the regenerated record to move the baseline.
"""

from __future__ import annotations

import json
import sys

#: fraction of baseline throughput the fresh run may lose
TOLERANCE = 0.25

#: the gated series: (path into the record, required in the baseline?)
GATES = (
    (("events_per_sec", "batched"), True),
    (("events_per_sec", "serve_4s"), False),
    (("events_per_sec", "depa"), False),
    (("events_per_sec", "depa_parallel"), False),
    (("events_per_sec", "serve_depa_1s"), False),
    (("events_per_sec", "serve_multinode_2w"), False),
    (("events_per_sec", "serve_multinode_4w"), False),
    (("events_per_sec", "predict"), False),
    (("events_per_sec", "compressed"), False),
)

#: floor for the fresh ``compression_ratio`` (RPR2TRZ vs raw RPR2TRC
#: bytes on the loops workload; the paper-facing 3x size claim)
COMPRESSION_FLOOR = 3.0

#: floor for the fresh ``speedup_parallel_vs_batched`` ratio (only
#: enforced when the fresh run had at least 2 CPUs to parallelise on)
PARALLEL_FLOOR = 1.0

#: multiple of the baseline a lower-is-better series may grow to
LOWER_CEILING = 2.0

#: lower-is-better series (never required: the baseline may predate them)
LOWER_GATES = (
    ("checkpoint", "save_ms"),
    ("checkpoint", "restore_ms"),
    ("checkpoint", "resume_replay_overhead"),
)


def _lookup(record, series):
    value = record
    for key in series:
        value = value[key]
    return float(value)


def _load(path: str):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    _, baseline_path, fresh_path = argv
    try:
        baseline_rec = _load(baseline_path)
        fresh_rec = _load(fresh_path)
    except (OSError, ValueError) as exc:
        print(f"cannot read benchmark records: {exc!r}", file=sys.stderr)
        return 2
    floor = 1.0 - TOLERANCE
    failed = False
    for series, required in GATES:
        name = ".".join(series)
        try:
            baseline = _lookup(baseline_rec, series)
        except (KeyError, TypeError):
            if required:
                print(f"{name}: missing from baseline", file=sys.stderr)
                return 2
            print(f"{name}: not in baseline yet; skipping this gate")
            continue
        try:
            fresh = _lookup(fresh_rec, series)
        except (KeyError, TypeError):
            print(f"{name}: missing from the fresh record", file=sys.stderr)
            return 2
        if baseline <= 0:
            print(f"{name}: baseline throughput is {baseline}; "
                  "nothing to gate", file=sys.stderr)
            return 2
        ratio = fresh / baseline
        ok = ratio >= floor
        failed = failed or not ok
        print(
            f"{name}: baseline {baseline:,.0f} ev/s, "
            f"fresh {fresh:,.0f} ev/s ({ratio:.2%} of baseline, "
            f"floor {floor:.0%}) -> {'OK' if ok else 'REGRESSION'}"
        )
    for series in LOWER_GATES:
        name = ".".join(series)
        try:
            baseline = _lookup(baseline_rec, series)
        except (KeyError, TypeError):
            print(f"{name}: not in baseline yet; skipping this gate")
            continue
        try:
            fresh = _lookup(fresh_rec, series)
        except (KeyError, TypeError):
            print(f"{name}: missing from the fresh record", file=sys.stderr)
            return 2
        if baseline <= 0:
            print(f"{name}: baseline is {baseline}; nothing to gate",
                  file=sys.stderr)
            return 2
        ratio = fresh / baseline
        ok = ratio <= LOWER_CEILING
        failed = failed or not ok
        print(
            f"{name}: baseline {baseline:.3f}, fresh {fresh:.3f} "
            f"({ratio:.2f}x of baseline, ceiling {LOWER_CEILING:.1f}x) "
            f"-> {'OK' if ok else 'REGRESSION'}"
        )
    failed = _check_parallel_ratio(fresh_rec) or failed
    failed = _check_depa_parallel_ratio(fresh_rec) or failed
    failed = _check_predict_sound(fresh_rec) or failed
    failed = _check_compressed(fresh_rec) or failed
    failed = _check_multinode_agrees(fresh_rec) or failed
    return 1 if failed else 0


def _check_parallel_ratio(fresh_rec) -> bool:
    """Gate the fresh parallel-over-batched ratio; returns True on
    failure.  Skipped on single-core runners (see module docstring)."""
    name = "speedup_parallel_vs_batched"
    cpus = fresh_rec.get("cpu_count")
    if not isinstance(cpus, int) or cpus < 2:
        print(
            f"{name}: fresh run recorded cpu_count={cpus!r}; skipping "
            "this gate (no second core to parallelise on)"
        )
        return False
    try:
        ratio = float(fresh_rec[name])
    except (KeyError, TypeError, ValueError):
        print(f"{name}: missing from the fresh record", file=sys.stderr)
        return True
    ok = ratio > PARALLEL_FLOOR
    print(
        f"{name}: fresh {ratio:.3f}x (floor {PARALLEL_FLOOR:.1f}x, "
        f"cpu_count {cpus}) -> {'OK' if ok else 'REGRESSION'}"
    )
    return not ok


def _check_depa_parallel_ratio(fresh_rec) -> bool:
    """Gate the fresh depa-pool-over-serial-depa ratio; returns True on
    failure.  Self-introducing (skipped when the fresh record predates
    the depa pool) and skipped on single-core runners, like the
    lattice2d parallel gate."""
    name = "speedup_depa_parallel_vs_depa"
    if name not in fresh_rec:
        print(f"{name}: not in the fresh record; skipping this gate")
        return False
    cpus = fresh_rec.get("cpu_count")
    if not isinstance(cpus, int) or cpus < 2:
        print(
            f"{name}: fresh run recorded cpu_count={cpus!r}; skipping "
            "this gate (no second core to parallelise on)"
        )
        return False
    try:
        ratio = float(fresh_rec[name])
    except (TypeError, ValueError):
        print(f"{name}: unreadable in the fresh record", file=sys.stderr)
        return True
    ok = ratio >= PARALLEL_FLOOR
    print(
        f"{name}: fresh {ratio:.3f}x (floor {PARALLEL_FLOOR:.1f}x, "
        f"cpu_count {cpus}) -> {'OK' if ok else 'REGRESSION'}"
    )
    return not ok


def _check_predict_sound(fresh_rec) -> bool:
    """Gate the fresh prediction-soundness verdict; returns True on
    failure.  Skipped when the fresh record predates prediction (the
    self-introduction case; a fresh record from current code always
    carries the key)."""
    name = "differential.predict_sound"
    differential = fresh_rec.get("differential")
    if not isinstance(differential, dict) or "predict_sound" not in (
        differential
    ):
        print(f"{name}: not in the fresh record; skipping this gate")
        return False
    sound = differential["predict_sound"]
    print(f"{name}: {sound} -> {'OK' if sound is True else 'REGRESSION'}")
    return sound is not True


def _check_multinode_agrees(fresh_rec) -> bool:
    """Gate the fresh multi-node differential verdict; returns True on
    failure.  Self-introducing: skipped when the fresh record predates
    the gateway tier.  Throughput gives the gateway no cover -- a
    record that carries the tier must certify the race multisets
    agreed at every measured worker count."""
    name = "differential.serve_multinode_agrees"
    differential = fresh_rec.get("differential")
    if not isinstance(differential, dict) or (
        "serve_multinode_agrees" not in differential
    ):
        print(f"{name}: not in the fresh record; skipping this gate")
        return False
    agrees = differential["serve_multinode_agrees"]
    print(f"{name}: {agrees} -> {'OK' if agrees is True else 'REGRESSION'}")
    return agrees is not True


def _check_compressed(fresh_rec) -> bool:
    """Gate the fresh compressed-tier verdicts; returns True on
    failure.  Self-introducing: skipped when the fresh record predates
    the compressed subsystem.  A fresh record that carries the tier
    must certify it on both axes -- the memoized path changed no
    verdicts (``differential.compressed_agrees``) and the container
    still clears the 3x size floor (``compression_ratio``)."""
    differential = fresh_rec.get("differential")
    if not isinstance(differential, dict) or "compressed_agrees" not in (
        differential
    ):
        print(
            "differential.compressed_agrees: not in the fresh record; "
            "skipping this gate"
        )
        return False
    agrees = differential["compressed_agrees"]
    print(
        f"differential.compressed_agrees: {agrees} -> "
        f"{'OK' if agrees is True else 'REGRESSION'}"
    )
    failed = agrees is not True
    try:
        ratio = float(fresh_rec["compression_ratio"])
    except (KeyError, TypeError, ValueError):
        print("compression_ratio: missing from the fresh record",
              file=sys.stderr)
        return True
    ok = ratio >= COMPRESSION_FLOOR
    print(
        f"compression_ratio: fresh {ratio:.2f}x (floor "
        f"{COMPRESSION_FLOOR:.1f}x) -> {'OK' if ok else 'REGRESSION'}"
    )
    return failed or not ok


if __name__ == "__main__":
    sys.exit(main(sys.argv))
