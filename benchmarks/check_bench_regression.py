"""CI gate: fail on a >25% engine-throughput regression.

Compares a freshly measured ``BENCH_engine.json`` against the baseline
committed in git (the record as of the checkout, before the benchmark
run overwrote it). The gated series is ``events_per_sec.batched`` --
the serial fast path every other tier is measured against; its shape
tests already pin the *ratios* (parallel > batched, batched >= 2x
per-event), so one absolute anchor suffices.

Usage::

    python benchmarks/check_bench_regression.py BASELINE.json FRESH.json

Exits 0 when fresh throughput is within tolerance (or improved), 1 on
regression, 2 on unusable inputs. CI extracts the baseline with
``git show HEAD:BENCH_engine.json``; after an intentional perf change,
commit the regenerated record to move the baseline.
"""

from __future__ import annotations

import json
import sys

#: fraction of baseline throughput the fresh run may lose
TOLERANCE = 0.25

#: the gated series
SERIES = ("events_per_sec", "batched")


def _throughput(path: str) -> float:
    with open(path, "r", encoding="utf-8") as handle:
        record = json.load(handle)
    value = record
    for key in SERIES:
        value = value[key]
    return float(value)


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    _, baseline_path, fresh_path = argv
    try:
        baseline = _throughput(baseline_path)
        fresh = _throughput(fresh_path)
    except (OSError, KeyError, ValueError, TypeError) as exc:
        print(f"cannot read benchmark records: {exc!r}", file=sys.stderr)
        return 2
    if baseline <= 0:
        print(f"baseline throughput is {baseline}; nothing to gate",
              file=sys.stderr)
        return 2
    ratio = fresh / baseline
    floor = 1.0 - TOLERANCE
    verdict = "OK" if ratio >= floor else "REGRESSION"
    print(
        f"{'.'.join(SERIES)}: baseline {baseline:,.0f} ev/s, "
        f"fresh {fresh:,.0f} ev/s ({ratio:.2%} of baseline, "
        f"floor {floor:.0%}) -> {verdict}"
    )
    return 0 if ratio >= floor else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
