"""Experiment C2 -- Section 5: pipelines are 2D-expressible and analysable.

Sweeps linear pipelines over items x stages, checking (a) the 2D
detector monitors them online with constant per-location space and no
false positives on the clean workload, (b) seeded cross-stage races are
found at every scale, and (c) monitoring overhead versus the bare
interpreter stays a modest constant factor.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import measure
from repro.bench.tables import print_table
from repro.detectors import Lattice2DDetector
from repro.forkjoin.pipeline import PipelineSpec, pipeline_body, run_pipeline
from repro.workloads.pipelines import clean_pipeline, racy_pipeline

SWEEP = [(8, 2), (16, 4), (64, 4), (64, 8)]


def test_clean_sweep_no_false_positives():
    rows = []
    for n_items, n_stages in SWEEP:
        items, stages = clean_pipeline(n_items, n_stages)
        det = Lattice2DDetector()
        ex = run_pipeline(items, stages, observers=[det])
        assert det.races == []
        assert det.shadow_peak_per_location() <= 2
        rows.append(
            {
                "items": n_items,
                "stages": n_stages,
                "tasks": ex.task_count,
                "ops": ex.op_count,
                "shadow/loc": det.shadow_peak_per_location(),
                "races": len(det.races),
            }
        )
    print_table(rows, title="C2: clean pipeline sweep under the 2D detector")


@pytest.mark.parametrize("n_items,n_stages", SWEEP)
def test_racy_sweep_always_detected(n_items, n_stages):
    items, stages = racy_pipeline(n_items, n_stages)
    det = Lattice2DDetector()
    run_pipeline(items, stages, observers=[det])
    assert det.races, (n_items, n_stages)


def test_monitoring_overhead_is_bounded():
    items, stages = clean_pipeline(64, 4)
    body = pipeline_body(PipelineSpec(tuple(items), tuple(stages)))
    base = measure(body)
    monitored = measure(
        body, detector=Lattice2DDetector(), base_seconds=base.wall_seconds
    )
    print_table(
        [base.row(), monitored.row()],
        title="C2: monitoring overhead (64 items x 4 stages)",
    )
    assert monitored.overhead is not None
    # Pure-Python detector over a pure-Python interpreter: a small
    # constant factor, not growth in the task count.
    assert monitored.overhead < 10


def test_parallel_stage_semantics():
    """Cilk-P parallel stages: per-item buffers stay safe, a shared
    accumulator at the parallel stage races while the same accumulator
    at a serial stage does not -- monitored at 64 items."""
    from repro.forkjoin.program import read as _read, write as _write

    def buf_stage(item, j):
        yield _write(("buf", j))

    def accum_stage(item, j):
        yield _read(("buf", j))
        yield _read(("acc",))
        yield _write(("acc",))

    serial_det = Lattice2DDetector()
    run_pipeline(range(64), [buf_stage, accum_stage],
                 observers=[serial_det])
    assert serial_det.races == []

    par_det = Lattice2DDetector()
    run_pipeline(range(64), [buf_stage, accum_stage], parallel=[1],
                 observers=[par_det])
    assert par_det.races  # the parallel stage really overlaps items
    assert par_det.shadow_peak_per_location() <= 2


@pytest.mark.parametrize("n_items,n_stages", SWEEP)
def test_bench_monitored_pipeline(benchmark, n_items, n_stages):
    items, stages = clean_pipeline(n_items, n_stages)

    def once():
        det = Lattice2DDetector()
        run_pipeline(items, stages, observers=[det])
        return det

    det = benchmark(once)
    assert det.races == []
