"""Experiment C3 -- construction (11): bracketed fork-join, SP graphs,
and agreement between SP-bags and the 2D detector.

On spawn-sync workloads (divide-and-conquer, map-reduce) the two Θ(1)
detectors must agree verdict-for-verdict; the benchmark also compares
their throughput, since the paper positions the 2D detector as a
generalisation of SP-bags at comparable cost.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import print_table
from repro.detectors import (
    Lattice2DDetector,
    OffsetSpanDetector,
    SPBagsDetector,
)
from repro.forkjoin import run
from repro.workloads.spworkloads import (
    divide_and_conquer,
    map_reduce,
    racy_divide_and_conquer,
)

WORKLOADS = {
    "dnc-depth4": (lambda: divide_and_conquer(4), False),
    "dnc-depth6": (lambda: divide_and_conquer(6), False),
    "dnc-racy": (lambda: racy_divide_and_conquer(3), True),
    "mapreduce-16": (lambda: map_reduce(16), False),
}


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_verdict_agreement(name):
    factory, racy = WORKLOADS[name]
    sp = SPBagsDetector()
    l2 = Lattice2DDetector()
    os_ = OffsetSpanDetector()
    run(factory(), observers=[sp, l2, os_])
    assert bool(sp.races) == bool(l2.races) == bool(os_.races) == racy, name
    assert sp.shadow_peak_per_location() <= 2
    assert l2.shadow_peak_per_location() <= 2


def test_offsetspan_shadow_grows_with_depth():
    """The Θ(1)-vs-Θ(depth) contrast: the 2D detector's shadow stays at
    two entries while offset-span labels grow with spawn nesting."""
    rows = []
    for depth in (3, 6, 9):
        l2 = Lattice2DDetector()
        os_ = OffsetSpanDetector()
        run(divide_and_conquer(depth), observers=[l2, os_])
        rows.append(
            {
                "nesting depth": depth,
                "lattice2d shadow/loc": l2.shadow_peak_per_location(),
                "offsetspan shadow/loc": os_.shadow_peak_per_location(),
                "offsetspan label len": os_.peak_label_len,
            }
        )
    print_table(rows, title="C3b: Θ(1) vs Θ(depth) shadow (offset-span)")
    assert all(r["lattice2d shadow/loc"] <= 2 for r in rows)
    assert rows[-1]["offsetspan shadow/loc"] > rows[0]["offsetspan shadow/loc"]
    assert rows[-1]["offsetspan label len"] >= 10


def test_space_parity_table():
    rows = []
    for name in sorted(WORKLOADS):
        factory, _ = WORKLOADS[name]
        sp = SPBagsDetector()
        l2 = Lattice2DDetector()
        ex = run(factory(), observers=[sp, l2])
        rows.append(
            {
                "workload": name,
                "tasks": ex.task_count,
                "spbags shadow/loc": sp.shadow_peak_per_location(),
                "lattice2d shadow/loc": l2.shadow_peak_per_location(),
                "spbags races": len(sp.races),
                "lattice2d races": len(l2.races),
            }
        )
    print_table(rows, title="C3: SP-bags vs 2D detector on SP workloads")


@pytest.mark.parametrize("detector_cls", [SPBagsDetector, Lattice2DDetector])
def test_bench_detectors_on_dnc(benchmark, detector_cls):
    body = divide_and_conquer(6)

    def once():
        det = detector_cls()
        run(body, observers=[det])
        return det

    det = benchmark(once)
    assert det.races == []
