"""CI gate: assert the fresh benchmark record's correctness invariants.

Every tier that merges into ``BENCH_engine.json`` certifies itself
with a ``differential.*`` flag -- the tier changed *no verdicts*
against the union-find referee / local replay -- and a throughput
series proving the leg actually ran.  Those assertions used to live as
inline ``python - <<'EOF'`` blocks in ``.github/workflows/ci.yml``,
one per tier, each added by the PR that introduced the tier.  This
script consolidates them behind one declarative manifest so a new tier
adds a manifest line instead of a workflow block.

The manifest is self-introducing in the same sense as
``check_bench_regression.py``: an entry marked not-required is skipped
(with a note) when the fresh record predates its tier, so the gate can
land in the same PR as the benchmark that feeds it.  Entries for tiers
the current code always measures are marked required -- a fresh record
missing them means the benchmark leg silently failed to run, which is
exactly what this gate exists to catch.

Usage::

    python benchmarks/assert_bench_invariants.py BENCH_engine.json

Exits 0 when every invariant holds, 1 on any violated invariant or
missing required key, 2 on unusable input.  Throughput *levels* are
not this script's business -- ``check_bench_regression.py`` gates
those against the committed baseline.
"""

from __future__ import annotations

import json
import sys

#: ``differential.<flag>`` entries that must be ``True``:
#: (flag, required, what it certifies)
DIFFERENTIAL_FLAGS = (
    ("depa_agrees", True,
     "array-native DePa backend == union-find referee"),
    ("depa_parallel_agrees", True,
     "depa process pool == union-find referee"),
    ("serve_depa_agrees", True,
     "depa-negotiated serve session == local lattice2d replay"),
    ("predict_sound", True,
     "predicted race set covers every observed race"),
    ("compressed_agrees", True,
     "memoized detection over RPR2TRZ == decompressed replay"),
    ("serve_multinode_agrees", True,
     "location-sharded gateway == local replay at 2 and 4 workers"),
)

#: ``events_per_sec.<key>`` series whose presence proves the leg ran:
#: (key, required)
REQUIRED_SERIES = (
    ("depa_parallel", True),
    ("serve_depa_1s", True),
    ("predict", True),
    ("compressed", True),
    ("serve_multinode_2w", True),
    ("serve_multinode_4w", True),
)

#: top-level ratios with a hard floor: (key, floor, required)
MIN_RATIOS = (
    ("compression_ratio", 3.0, True),
)


def main(argv) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        with open(argv[1], "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"cannot read benchmark record: {exc!r}", file=sys.stderr)
        return 2
    failed = False

    differential = record.get("differential")
    if not isinstance(differential, dict):
        print("differential: missing from the record", file=sys.stderr)
        differential = {}
        failed = True
    for flag, required, meaning in DIFFERENTIAL_FLAGS:
        name = f"differential.{flag}"
        if flag not in differential:
            if required:
                print(f"{name}: MISSING ({meaning})", file=sys.stderr)
                failed = True
            else:
                print(f"{name}: not in the record yet; skipping")
            continue
        value = differential[flag]
        ok = value is True
        failed = failed or not ok
        print(f"{name}: {value} -> {'OK' if ok else 'VIOLATED'} ({meaning})")

    series = record.get("events_per_sec")
    if not isinstance(series, dict):
        print("events_per_sec: missing from the record", file=sys.stderr)
        series = {}
        failed = True
    for key, required in REQUIRED_SERIES:
        name = f"events_per_sec.{key}"
        if key not in series:
            if required:
                print(f"{name}: MISSING (leg did not run)", file=sys.stderr)
                failed = True
            else:
                print(f"{name}: not in the record yet; skipping")
            continue
        print(f"{name}: {series[key]:,.0f} ev/s -> present")

    for key, floor, required in MIN_RATIOS:
        if key not in record:
            if required:
                print(f"{key}: MISSING (floor {floor:.1f}x)", file=sys.stderr)
                failed = True
            else:
                print(f"{key}: not in the record yet; skipping")
            continue
        try:
            ratio = float(record[key])
        except (TypeError, ValueError):
            print(f"{key}: unreadable value {record[key]!r}", file=sys.stderr)
            failed = True
            continue
        ok = ratio >= floor
        failed = failed or not ok
        print(
            f"{key}: {ratio:.2f}x (floor {floor:.1f}x) -> "
            f"{'OK' if ok else 'VIOLATED'}"
        )

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
