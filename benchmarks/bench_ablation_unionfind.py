"""Experiment A1 -- ablation: union-find path compression & linking.

Theorem 3's near-linear bound rests on the union-find implementation
(Tarjan [19, 20]).  This ablation disables path compression and/or
union-by-rank on the adversarial workload for naive linking: a
single-stage read-shared pipeline.  Each item's task joins the previous
item's (a *fold chain* -- with naive linking the tree degenerates to a
path of depth n), and every task's race check queries the very first
writer of the shared config cell, forcing a find on the deepest
element.  Either path compression or by-rank linking restores the
amortised bound; with both off, hops per find blow up linearly.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.tables import print_table
from repro.detectors.lattice2d import Lattice2DDetector
from repro.forkjoin.pipeline import run_pipeline
from repro.workloads.pipelines import read_shared_pipeline

VARIANTS = {
    "compress+rank": dict(path_compression=True, link_by_rank=True),
    "compress only": dict(path_compression=True, link_by_rank=False),
    "rank only": dict(path_compression=False, link_by_rank=True),
    "neither": dict(path_compression=False, link_by_rank=False),
}

ITEMS, STAGES = 300, 1


def run_variant(opts):
    items, stages = read_shared_pipeline(ITEMS, STAGES)
    det = Lattice2DDetector(**opts)
    ex = run_pipeline(items, stages, observers=[det])
    return det, ex


def test_ablation_table():
    rows = []
    hops = {}
    for name, opts in VARIANTS.items():
        run_variant(opts)  # warm-up
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            det, ex = run_variant(opts)
            best = min(best, time.perf_counter() - start)
        uf = det.engine.unionfind
        hops[name] = uf.hop_count / max(1, uf.find_count)
        rows.append(
            {
                "variant": name,
                "ms": round(1e3 * best, 2),
                "finds": uf.find_count,
                "hops/find": round(hops[name], 2),
                "races": len(det.races),
            }
        )
    print_table(
        rows,
        title="A1: union-find ablation (fold-chain pipeline, "
        f"{ITEMS} items)",
    )
    # All variants stay correct...
    assert all(r["races"] == 0 for r in rows)
    # ...but with both optimisations off, the fold chain degenerates:
    # an order of magnitude more pointer chasing per find.
    assert hops["neither"] > 10 * hops["compress+rank"]
    # Either optimisation alone is enough to stay amortised-flat.
    assert hops["compress only"] < 5
    assert hops["rank only"] < 5


@pytest.mark.parametrize("name", sorted(VARIANTS))
def test_bench_variant(benchmark, name):
    opts = VARIANTS[name]
    det, _ = benchmark(run_variant, opts)
    assert det.races == []
