"""Experiment F1 -- Figure 1: spawn-sync and async-finish, one SP graph.

The paper's Figure 1 shows a spawn-sync program and an async-finish
program with *exactly the same* series-parallel task graph.  We build
both with the respective sugars, reconstruct the operation-level task
graphs, and check they are order-isomorphic (same reachability relation
under the label correspondence A/B/C/D) and series-parallel.

The timed portion measures the interpreter + 2D detector on each
dialect.
"""

from __future__ import annotations

from repro.detectors import Lattice2DDetector
from repro.forkjoin import build_task_graph, read, run, write
from repro.forkjoin.async_finish import x10
from repro.forkjoin.spawn_sync import cilk
from repro.lattice.series_parallel import is_series_parallel

LABELS = ["A", "B", "C", "D"]


def spawn_sync_program():
    @cilk
    def a_task(ctx):
        yield read("r", label="A")

    @cilk
    def c_task(ctx):
        yield read("s", label="C")

    @cilk
    def main(ctx):
        yield from ctx.spawn(a_task)
        yield read("r", label="B")
        yield from ctx.sync()
        yield from ctx.spawn(c_task)
        yield write("w", label="D")
        yield from ctx.sync()

    return main


def async_finish_program():
    def a_task(ctx):
        yield read("r", label="A")

    def c_task(ctx):
        yield read("s", label="C")

    @x10
    def main(ctx):
        def first():
            yield from ctx.async_(a_task)
            yield read("r", label="B")

        def second():
            yield from ctx.async_(c_task)
            yield write("w", label="D")

        yield from ctx.finish(first)
        yield from ctx.finish(second)

    return main


def _label_order(body):
    ex = run(body, record_events=True)
    tg = build_task_graph(ex.events)
    by_label = {op.label: i for i, op in tg.ops.items() if op.label}
    rel = {
        (x, y)
        for x in LABELS
        for y in LABELS
        if x != y and tg.poset.leq(by_label[x], by_label[y])
    }
    return tg, rel


def test_same_task_graph_shape():
    tg1, rel1 = _label_order(spawn_sync_program())
    tg2, rel2 = _label_order(async_finish_program())
    # Identical ordering among the four operations...
    assert rel1 == rel2 == {
        ("A", "C"), ("A", "D"), ("B", "C"), ("B", "D"),
    }
    # ...and both graphs are series-parallel, as Figure 1 depicts.
    assert is_series_parallel(tg1.graph.transitive_reduction())
    assert is_series_parallel(tg2.graph.transitive_reduction())


def test_no_races_in_either_dialect():
    for body in (spawn_sync_program(), async_finish_program()):
        det = Lattice2DDetector()
        run(body, observers=[det])
        assert det.races == []


def test_bench_spawn_sync_monitored(benchmark):
    def once():
        det = Lattice2DDetector()
        run(spawn_sync_program(), observers=[det])
        return det

    det = benchmark(once)
    assert det.races == []


def test_bench_async_finish_monitored(benchmark):
    def once():
        det = Lattice2DDetector()
        run(async_finish_program(), observers=[det])
        return det

    det = benchmark(once)
    assert det.races == []
