"""Experiment E5 -- what durability costs.

The fault-tolerance layer (PR 5) must be cheap enough to leave on:

* ``checkpoint.save_ms`` / ``checkpoint.restore_ms`` -- best-of wall
  time to serialize a :class:`BatchEngine` holding the standard
  100k-access ``racegen`` workload state, and to rebuild it from the
  file (CRC check included);
* ``checkpoint.resume_replay_overhead`` -- a durable serve session
  (sequenced batches, periodic background checkpoints, ACK trimming)
  versus a plain session streaming the same workload: the ratio of
  their best-of wall times, lower is better, 1.0 is free.

The numbers merge into ``BENCH_engine.json`` (read-modify-write, same
discipline as ``bench_serve.py``: the engine benchmark owns the record
and runs first in CI) under the ``checkpoint`` key, which the CI
regression gate tracks as lower-is-better once a baseline carries it.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.bench.tables import print_table
from repro.engine.benchlib import build_workload, capture
from repro.engine.ingest import BatchEngine
from repro.engine.snapshot import (
    load_checkpoint,
    save_checkpoint,
    state_digest,
)
from repro.obs.registry import MetricsRegistry
from repro.serve import ServeConfig, ServerThread
from repro.serve.client import RaceClient

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

ACCESSES = 100_000
BATCH_SIZE = 16384
CHECKPOINT_INTERVAL = 2  # several background checkpoints per stream
REPEATS = 3

pytestmark = [pytest.mark.engine, pytest.mark.serve]


def _best_of(fn) -> float:
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _stream_session(port: int, batch, session) -> None:
    with RaceClient("127.0.0.1", port, session=session) as client:
        client.send_batches(batch, BATCH_SIZE)
        client.finish()


@pytest.fixture(scope="module")
def record(tmp_path_factory):
    _events, batch, _interner = capture(build_workload(ACCESSES))
    engine = BatchEngine()
    engine.ingest(batch)

    ckpt = tmp_path_factory.mktemp("bench-ckpt") / "engine.ckpt"
    nbytes = save_checkpoint(engine, str(ckpt))  # warm-up + size probe
    save_s = _best_of(lambda: save_checkpoint(engine, str(ckpt)))
    restored, _meta = load_checkpoint(str(ckpt))
    assert state_digest(restored) == state_digest(engine)
    restore_s = _best_of(lambda: load_checkpoint(str(ckpt)))

    ckdir = tmp_path_factory.mktemp("bench-serve-ckpt")
    plain_cfg = ServeConfig()
    with ServerThread(plain_cfg, registry=MetricsRegistry()) as srv:
        plain_s = _best_of(lambda: _stream_session(srv.port, batch, None))
    durable_cfg = ServeConfig(
        checkpoint_dir=str(ckdir), checkpoint_interval=CHECKPOINT_INTERVAL
    )
    counter = iter(range(10_000))
    with ServerThread(durable_cfg, registry=MetricsRegistry()) as srv:
        durable_s = _best_of(
            lambda: _stream_session(
                srv.port, batch, f"bench-{next(counter)}"
            )
        )

    rec = {
        "bench": "checkpoint",
        "workload": {
            "accesses": ACCESSES,
            "events": len(batch),
            "batch_size": BATCH_SIZE,
            "checkpoint_interval": CHECKPOINT_INTERVAL,
            "repeats": REPEATS,
        },
        "checkpoint": {
            "save_ms": save_s * 1e3,
            "restore_ms": restore_s * 1e3,
            "state_bytes": nbytes,
            "resume_replay_overhead": durable_s / plain_s,
        },
        "seconds": {
            "serve_plain": plain_s,
            "serve_durable": durable_s,
        },
    }

    stored = {}
    if RECORD_PATH.exists():
        stored = json.loads(RECORD_PATH.read_text(encoding="utf-8"))
    stored["checkpoint"] = rec["checkpoint"]
    RECORD_PATH.write_text(
        json.dumps(stored, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    print_table(
        [
            {"metric": "save", "value": f"{save_s * 1e3:.2f} ms"},
            {"metric": "restore", "value": f"{restore_s * 1e3:.2f} ms"},
            {"metric": "state size", "value": f"{nbytes:,} bytes"},
            {"metric": "plain session", "value": f"{plain_s:.3f} s"},
            {"metric": "durable session", "value": f"{durable_s:.3f} s"},
            {
                "metric": "durability overhead",
                "value": f"{durable_s / plain_s:.2f}x",
            },
        ],
        title=f"checkpoint costs ({ACCESSES // 1000}k accesses)",
    )
    return rec


@pytest.mark.shape
def test_checkpoint_roundtrip_is_subsecond(record):
    """Saving or restoring 100k accesses of state is an eye-blink, not
    a maintenance window."""
    assert record["checkpoint"]["save_ms"] < 1000.0, record["checkpoint"]
    assert record["checkpoint"]["restore_ms"] < 1000.0, record["checkpoint"]


@pytest.mark.shape
def test_durable_session_overhead_bounded(record):
    """Sequencing + periodic background checkpoints must not dominate
    the stream: a durable session stays within 3x of a plain one."""
    assert record["checkpoint"]["resume_replay_overhead"] <= 3.0, (
        record["seconds"]
    )


def test_record_merged_into_engine_record(record):
    stored = json.loads(RECORD_PATH.read_text(encoding="utf-8"))
    assert "save_ms" in stored["checkpoint"]
    assert stored["checkpoint"]["resume_replay_overhead"] == pytest.approx(
        record["checkpoint"]["resume_replay_overhead"]
    )
