"""Experiment F3 -- Figure 3: the planar monotone diagram.

Rebuild the nine-vertex lattice's diagram from its order alone
(realizer search -> dominance drawing) and machine-check the figure's
properties: monotone (every arc advances downward) and planar (arcs
meet only at endpoints).  Timed portions: realizer computation and
diagram construction, plus the same on larger grids to show they stay
cheap.
"""

from __future__ import annotations

import pytest

from repro.lattice.dominance import Diagram
from repro.lattice.generators import figure3_diagram, figure3_lattice, grid_diagram
from repro.lattice.poset import Poset
from repro.lattice.realizer import is_realizer_of, realizer_of


def test_figure3_diagram_is_planar_and_monotone():
    d = figure3_diagram()
    d.check_planar()  # raises on a crossing
    for s, t in d.graph.arcs():
        assert d.screen(s)[1] < d.screen(t)[1]  # strictly downward


def test_figure3_realizer_realizes_the_order():
    poset = Poset(figure3_lattice())
    l1, l2 = realizer_of(poset)
    assert is_realizer_of(poset, l1, l2)


def test_grid_diagrams_planar():
    for side in (3, 6, 10):
        grid_diagram(side, side).check_planar()


def test_bench_realizer_of_figure3(benchmark):
    poset = Poset(figure3_lattice())
    l1, l2 = benchmark(realizer_of, poset)
    assert is_realizer_of(poset, l1, l2)


def test_bench_diagram_from_poset_figure3(benchmark):
    poset = Poset(figure3_lattice())
    d = benchmark(Diagram.from_poset, poset)
    assert d.is_planar()


@pytest.mark.parametrize("side", [4, 8, 16])
def test_bench_grid_diagram_construction(benchmark, side):
    d = benchmark(grid_diagram, side, side)
    assert d.graph.vertex_count == side * side
