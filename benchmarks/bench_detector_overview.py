"""Overview table: every detector on every applicable workload.

Not tied to a single figure -- this is the summary comparison a systems
paper would print as "Table 1": per (workload, detector), races found,
peak shadow per location, metadata entries and per-op time, with the
interpreter-only baseline for overhead.  Shape assertions encode the
qualitative matrix the paper implies:

* the Θ(1) detectors (lattice2d, spbags, espbags) never exceed 2 shadow
  entries per location on their applicable workloads;
* vectorclock's shadow dominates everyone's on the read-shared
  workload;
* all detectors agree on the race verdict per workload.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import DETECTOR_FACTORIES, measure
from repro.bench.tables import print_table
from repro.forkjoin.pipeline import PipelineSpec, pipeline_body
from repro.workloads.pipelines import clean_pipeline, read_shared_pipeline
from repro.workloads.spworkloads import divide_and_conquer
from repro.workloads.synthetic import SyntheticConfig, random_program

# workload name -> (body factory, applicable detectors, races expected)
def _pipeline(builder, n, m):
    items, stages = builder(n, m)
    return pipeline_body(PipelineSpec(tuple(items), tuple(stages)))


GENERIC = ["lattice2d", "vectorclock", "fasttrack", "naive"]
SP_ONLY = ["spbags", "offsetspan"]

WORKLOADS = {
    "pipeline-32x4": (
        lambda: _pipeline(clean_pipeline, 32, 4), GENERIC, False,
    ),
    "read-shared-64x4": (
        lambda: _pipeline(read_shared_pipeline, 64, 4), GENERIC, False,
    ),
    "dnc-depth5": (
        lambda: divide_and_conquer(5), GENERIC + SP_ONLY, False,
    ),
    "synthetic-racy": (
        lambda: random_program(
            SyntheticConfig(seed=5, max_tasks=24, ops_per_task=6,
                            n_locations=3)
        ),
        GENERIC,
        True,
    ),
}


def test_overview_table():
    rows = []
    for wname, (factory, detectors, racy) in WORKLOADS.items():
        base = measure(factory())
        verdicts = set()
        for dname in detectors:
            det = DETECTOR_FACTORIES[dname]()
            stats = measure(
                factory(), detector=det, base_seconds=base.wall_seconds
            )
            verdicts.add(stats.races > 0)
            rows.append(
                {
                    "workload": wname,
                    "detector": dname,
                    "races": stats.races,
                    "shadow/loc": stats.shadow_peak_per_loc,
                    "metadata": stats.metadata_entries,
                    "us/op": round(1e6 * stats.seconds_per_op, 2),
                    "overhead": round(stats.overhead or 0, 2),
                }
            )
            if dname in ("lattice2d", "spbags", "espbags"):
                assert stats.shadow_peak_per_loc <= 2, (wname, dname)
        assert verdicts == {racy}, f"verdict split on {wname}"
    print_table(rows, title="Detector overview (Table-1 style)")

    # vectorclock pays the most shadow on the read-shared workload.
    rs = [r for r in rows if r["workload"] == "read-shared-64x4"]
    vc = next(r for r in rs if r["detector"] == "vectorclock")
    assert vc["shadow/loc"] == max(r["shadow/loc"] for r in rs)


@pytest.mark.parametrize("dname", GENERIC)
def test_bench_overview_pipeline(benchmark, dname):
    factory = WORKLOADS["pipeline-32x4"][0]

    def once():
        det = DETECTOR_FACTORIES[dname]()
        return measure(factory(), detector=det)

    stats = benchmark(once)
    assert stats.races == 0
