"""Experiment T5 (space) -- Theorem 5: Θ(1) per thread and per location.

The paper's headline: as thread count n grows, the 2D detector's shadow
state per monitored location stays at <= 2 entries, while the
vector-clock baseline grows linearly and FastTrack inflates on
read-shared locations.  Workload: the race-free read-shared pipeline
(one config cell read by every task -- the adversarial case for
vector-based shadow memory).

The printed table is the reproduction of the paper's central
space-complexity comparison (Section 1's Θ(n)-vs-Θ(1) motivation).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import DETECTOR_FACTORIES
from repro.bench.tables import print_table
from repro.forkjoin.pipeline import run_pipeline
from repro.workloads.pipelines import read_shared_pipeline

SWEEP = [(4, 2), (16, 4), (64, 4), (128, 8)]  # (items, stages)


def run_with(name, items, stages):
    det = DETECTOR_FACTORIES[name]()
    ex = run_pipeline(items, stages, observers=[det])
    return det, ex


def test_space_table_and_shape():
    rows = []
    peaks = {"lattice2d": [], "vectorclock": [], "fasttrack": []}
    tasks_seen = []
    for n_items, n_stages in SWEEP:
        items, stages = read_shared_pipeline(n_items, n_stages)
        row = {"tasks": None, "races": 0}
        for name in peaks:
            det, ex = run_with(name, items, stages)
            assert det.races == [], f"{name} false positive"
            row["tasks"] = ex.task_count
            row[f"{name} shadow/loc"] = det.shadow_peak_per_location()
            peaks[name].append(det.shadow_peak_per_location())
        tasks_seen.append(row["tasks"])
        rows.append(row)
    print_table(
        rows,
        title="Theorem 5: peak shadow entries per location "
        "(race-free read-shared pipeline)",
    )
    # Shape: the 2D detector is flat at <= 2 ...
    assert all(p <= 2 for p in peaks["lattice2d"])
    # ... while the vector clock grows with the task count ...
    assert peaks["vectorclock"][-1] > 10 * peaks["vectorclock"][0] / 2
    assert peaks["vectorclock"][-1] >= tasks_seen[-1] // 2
    # ... and FastTrack's read-shared vector grows too.
    assert peaks["fasttrack"][-1] > 8 * max(1, peaks["lattice2d"][-1])


def test_metadata_per_thread_constant():
    """Θ(1) per thread: detector metadata grows linearly in task count
    with a constant per-task word budget."""
    from repro.detectors import Lattice2DDetector

    per_task = []
    for n_items, n_stages in [(8, 4), (64, 4)]:
        items, stages = read_shared_pipeline(n_items, n_stages)
        det = Lattice2DDetector()
        ex = run_pipeline(items, stages, observers=[det])
        per_task.append(det.metadata_entries() / ex.task_count)
    assert per_task[0] == per_task[1] == 6.0


@pytest.mark.parametrize("name", ["lattice2d", "vectorclock", "fasttrack"])
def test_bench_monitored_pipeline(benchmark, name):
    items, stages = read_shared_pipeline(32, 4)

    def once():
        det, _ = run_with(name, items, stages)
        return det

    det = benchmark(once)
    assert det.races == []
