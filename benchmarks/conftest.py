"""Shared helpers for the benchmark suite.

Each ``bench_*.py`` file regenerates one experiment from DESIGN.md's
per-experiment index (a figure scenario or a theorem/claim measurement).
Benchmarks both *assert the shape* the paper predicts (who wins, what
stays constant, what grows) and time the relevant operation with
pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s

(-s shows the paper-style tables printed by the experiments.)
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks live outside testpaths; make their intent explicit.
    config.addinivalue_line(
        "markers", "shape: asserts the qualitative claim of the experiment"
    )
