"""Experiment T5 (time) -- Theorem 5: Θ(α(m+n, n)) amortised per op.

Measurable shape: the 2D detector's time per monitored operation stays
nearly flat as the task count grows by ~50x, and the union-find does
amortised O(alpha) work (hops per find stay tiny).  The printed table
reports both wall time and union-find hop counts.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.tables import print_table
from repro.detectors import Lattice2DDetector
from repro.forkjoin import run
from repro.forkjoin.pipeline import run_pipeline
from repro.workloads.pipelines import clean_pipeline

SWEEP = [(8, 4), (32, 8), (128, 8)]


def monitored_run(items, stages):
    det = Lattice2DDetector()
    ex = run_pipeline(items, stages, observers=[det])
    return det, ex


def test_per_op_time_flat_and_hops_amortised():
    rows = []
    per_op = []
    for n_items, n_stages in SWEEP:
        items, stages = clean_pipeline(n_items, n_stages)
        monitored_run(items, stages)  # warm-up
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            det, ex = monitored_run(items, stages)
            best = min(best, time.perf_counter() - start)
        uf = det.engine.unionfind
        finds = max(1, uf.find_count)
        us = 1e6 * best / ex.op_count
        per_op.append(us)
        rows.append(
            {
                "tasks": ex.task_count,
                "ops": ex.op_count,
                "us/op": round(us, 3),
                "uf finds": uf.find_count,
                "hops/find": round(uf.hop_count / finds, 3),
            }
        )
    print_table(rows, title="Theorem 5: 2D detector amortised per-op cost")
    assert max(per_op) / min(per_op) < 4.0, per_op
    # Amortised union-find: far below one parent hop per find on average.
    assert rows[-1]["hops/find"] < 3.0


@pytest.mark.parametrize("n_items,n_stages", SWEEP)
def test_bench_detector_throughput(benchmark, n_items, n_stages):
    items, stages = clean_pipeline(n_items, n_stages)

    def once():
        det, ex = monitored_run(items, stages)
        return det

    det = benchmark(once)
    assert det.races == []
