"""Experiment F2 -- Figure 2: the 2D (non-SP) program with the A-D race.

Every applicable detector must flag exactly the A-D race (one report,
on the write labelled D) and nothing else; the task graph must be a 2D
lattice that is not series-parallel.  The timed portion measures the
full monitored execution per detector.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import DETECTOR_FACTORIES
from repro.detectors import exact_races
from repro.forkjoin import build_task_graph, fork, join, read, run, step, write
from repro.lattice.realizer import is_two_dimensional
from repro.lattice.series_parallel import is_series_parallel


def figure2_body():
    def task_a(self):
        yield read("l", label="A")

    def task_c(self, a):
        yield join(a)
        yield step(label="C")

    def main(self):
        a = yield fork(task_a)
        yield read("l", label="B")
        c = yield fork(task_c, a)
        yield write("l", label="D")
        yield join(c)

    return main


GENERIC = ("lattice2d", "vectorclock", "fasttrack", "naive")


def test_oracle_finds_exactly_one_race():
    ex = run(figure2_body(), record_events=True)
    pairs = exact_races(ex.events)
    assert len(pairs) == 1
    assert pairs[0].loc == "l"


@pytest.mark.parametrize("name", GENERIC)
def test_each_detector_flags_d(name):
    det = DETECTOR_FACTORIES[name]()
    run(figure2_body(), observers=[det])
    assert len(det.races) == 1, name
    assert det.races[0].label == "D"


def test_graph_is_2d_but_not_sp():
    ex = run(figure2_body(), record_events=True)
    tg = build_task_graph(ex.events)
    assert tg.poset.is_lattice() and is_two_dimensional(tg.poset)
    assert not is_series_parallel(tg.graph.transitive_reduction())


@pytest.mark.parametrize("name", GENERIC)
def test_bench_detectors_on_figure2(benchmark, name):
    body = figure2_body()

    def once():
        det = DETECTOR_FACTORIES[name]()
        run(body, observers=[det])
        return det

    det = benchmark(once)
    assert len(det.races) == 1
