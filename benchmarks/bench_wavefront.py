"""Experiment X2 (extension) -- an application kernel: wavefront DP.

Wavefront dynamic programming is the 2D-lattice application beyond
pipelines: cell (i, j) depends on its up/left neighbours.  Two
measurements:

* correctness at scale -- the correct kernel stays silent, the
  anti-diagonal bug is flagged at every size;
* a *granularity ablation* -- tiling the matrix into blocks trades task
  count against work per task; the detector's metadata is Θ(1) per
  task, so coarser blocks shrink monitoring state linearly while the
  per-location shadow stays at 2 throughout.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import print_table
from repro.detectors import Lattice2DDetector
from repro.forkjoin.pipeline import run_pipeline
from repro.workloads.wavefront import (
    blocked_wavefront,
    wavefront,
    wavefront_with_bug,
)


def monitored(workload):
    items, stages = workload
    det = Lattice2DDetector()
    ex = run_pipeline(items, stages, observers=[det])
    return det, ex


@pytest.mark.parametrize("size", [4, 8, 16])
def test_correct_kernel_silent(size):
    det, _ = monitored(wavefront(size, size))
    assert det.races == []
    assert det.shadow_peak_per_location() <= 2


@pytest.mark.parametrize("size", [4, 8, 16])
def test_buggy_kernel_flagged(size):
    det, _ = monitored(wavefront_with_bug(size, size))
    assert det.races


def test_granularity_ablation_table():
    size = 16
    rows = []
    for block in (1, 2, 4, 8):
        det, ex = monitored(blocked_wavefront(size, size, block, block))
        assert det.races == []
        rows.append(
            {
                "block": f"{block}x{block}",
                "tasks": ex.task_count,
                "ops": ex.op_count,
                "metadata": det.metadata_entries(),
                "shadow/loc": det.shadow_peak_per_location(),
            }
        )
    print_table(
        rows, title=f"X2: wavefront granularity ablation ({size}x{size})"
    )
    # Metadata is 6 words per task: shrinks with coarser blocks...
    metas = [r["metadata"] for r in rows]
    assert metas == sorted(metas, reverse=True)
    assert all(r["metadata"] == 6 * r["tasks"] for r in rows)
    # ...while per-location shadow is flat.
    assert all(r["shadow/loc"] <= 2 for r in rows)


@pytest.mark.parametrize("block", [1, 4, 8])
def test_bench_blocked_wavefront(benchmark, block):
    workload = blocked_wavefront(16, 16, block, block)

    def once():
        det, _ = monitored(workload)
        return det

    det = benchmark(once)
    assert det.races == []
