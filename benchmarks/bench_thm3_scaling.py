"""Experiment T3 -- Theorem 3: Θ((m+n)·α(m+n,n)) time, Θ(n) space.

The inverse-Ackermann factor is constant for every feasible input, so
the measurable claim is: total walk+query time is *near-linear* in
m + n -- equivalently, time per operation stays nearly flat as the
lattice grows by two orders of magnitude.  We sweep grid lattices,
print the per-op table, and assert the per-op time does not drift more
than a small factor across the sweep (the "shape" of the theorem).
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bench.tables import print_table
from repro.core.suprema import SupremaWalker
from repro.lattice.generators import grid_diagram
from repro.lattice.nonseparating import nonseparating_traversal

SIDES = [10, 32, 100]  # n = 100 .. 10,000 vertices
QUERIES_PER_VERTEX = 2


def run_walk(items, queries_per_vertex, seed):
    rng = random.Random(seed)
    walker = SupremaWalker(check_preconditions=False)
    visited = []
    ops = 0

    def on_visit(t, w):
        nonlocal ops
        if visited:
            for _ in range(queries_per_vertex):
                w.sup(rng.choice(visited), t)
                ops += 1
        visited.append(t)

    walker.walk(items, on_visit)
    return ops + len(items)


def test_per_op_time_is_nearly_flat():
    rows = []
    per_op = []
    for side in SIDES:
        items = nonseparating_traversal(grid_diagram(side, side))
        # Warm once, then measure the best of 3 runs (noise floor).
        run_walk(items, QUERIES_PER_VERTEX, 7)
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            ops = run_walk(items, QUERIES_PER_VERTEX, 7)
            best = min(best, time.perf_counter() - start)
        us_per_op = 1e6 * best / ops
        per_op.append(us_per_op)
        rows.append(
            {
                "n (vertices)": side * side,
                "m+n (ops)": ops,
                "total ms": round(1e3 * best, 2),
                "us/op": round(us_per_op, 3),
            }
        )
    print_table(rows, title="Theorem 3: suprema walk scaling (grids)")
    # Shape assertion: 100x more vertices, per-op cost within ~4x
    # (amortised near-constant; pure-Python noise allowed for).
    assert max(per_op) / min(per_op) < 4.0, per_op


def test_space_is_linear_in_n():
    """Θ(n) space: union-find elements == vertices, nothing more."""
    for side in (10, 40):
        diagram = grid_diagram(side, side)
        items = nonseparating_traversal(diagram)
        walker = SupremaWalker(check_preconditions=False)
        for item in items:
            walker.feed(item)
        assert len(walker.unionfind) == side * side


@pytest.mark.parametrize("side", SIDES)
def test_bench_walk(benchmark, side):
    items = nonseparating_traversal(grid_diagram(side, side))
    ops = benchmark(run_walk, items, QUERIES_PER_VERTEX, 7)
    assert ops > 0
