"""Experiment E4 -- the serving layer's cost over direct ingestion.

``repro serve`` is an engineering extension, not a paper claim, so its
benchmark gates *overhead*, not a speedup: shipping the standard
100k-access ``racegen`` workload through framing, CRC, loopback TCP,
the asyncio session machinery, and the credit loop must cost at most
2x the events/sec of handing the same batch straight to a local
:class:`BatchEngine`.  The load generator then scales the same
workload to 4 and 16 concurrent sessions to record how aggregate
throughput holds up under the credit window.

The numbers merge into ``BENCH_engine.json`` (read-modify-write: the
engine benchmark owns the record and runs first in CI) as
``events_per_sec.serve_1s/_4s/_16s`` plus the headline
``serve_vs_batched_overhead`` ratio, which the CI regression gate
tracks alongside the batched series.  A fourth series,
``serve_depa_1s``, replays the single-session load over a
depa-negotiated session (v3 HELLO ``backend="depa"``) so the record
shows what backend negotiation buys on the wire; its differential
(served depa races == local lattice2d races) is asserted on every run.

The multi-node tier rides the same harness: ``serve_multinode_2w`` and
``serve_multinode_4w`` replay the single-session load through a
:class:`ClusterThread` gateway sharding by location across 2 and 4
engine worker processes (``docs/SCALE_OUT.md``).  On a single-core
bench host these legs measure routing overhead, not speedup, so no
ratio is gated -- but ``differential.serve_multinode_agrees`` (gateway
races == local races at every worker count) is asserted on every run.
"""

from __future__ import annotations

import gc
import json
import time
from pathlib import Path

import pytest

from repro.bench.tables import print_table
from repro.engine.benchlib import build_workload, capture
from repro.engine.ingest import BatchEngine
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    ClusterConfig,
    ClusterThread,
    ServeConfig,
    ServerThread,
    run_load,
)

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

ACCESSES = 100_000
BATCH_SIZE = 16384
SESSION_COUNTS = (1, 4, 16)
MULTINODE_WORKERS = (2, 4)
REPEATS = 3

pytestmark = [pytest.mark.engine, pytest.mark.serve]


def _time_batched(batch) -> float:
    """Best-of direct BatchEngine ingestion: the reference the serving
    overhead is measured against (fresh engine per run, GC paused --
    the discipline of :func:`repro.engine.benchlib._best_of`)."""
    engine = BatchEngine()
    engine.ingest(batch)  # warm-up
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(REPEATS):
            engine = BatchEngine()
            start = time.perf_counter()
            engine.ingest(batch)
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _time_served(
    port: int, batch, sessions: int, backend: str = None
) -> tuple:
    """Best-of load-generator seconds plus the races of the last run
    (identical across runs: every session replays the same batch)."""
    best = float("inf")
    races = 0
    for _ in range(REPEATS):
        result = run_load(
            "127.0.0.1", port, batch,
            sessions=sessions, batch_size=BATCH_SIZE, timeout=120.0,
            backend=backend,
        )
        assert result.events == sessions * len(batch)
        best = min(best, result.seconds)
        races = result.races
    return best, races


@pytest.fixture(scope="module")
def record():
    _events, batch, _interner = capture(build_workload(ACCESSES))
    batched_s = _time_batched(batch)
    eps = {"batched_reference": len(batch) / batched_s}
    seconds = {"batched_reference": batched_s}
    reference = BatchEngine()
    reference.ingest(batch)
    local_races = len(reference.detector.races)
    with ServerThread(registry=MetricsRegistry()) as srv:
        for sessions in SESSION_COUNTS:
            served_s, _ = _time_served(srv.port, batch, sessions)
            key = f"serve_{sessions}s"
            seconds[key] = served_s
            eps[key] = sessions * len(batch) / served_s
        # The depa-negotiated session rides the same server: the v3
        # HELLO requests the backend per session, nothing is restarted.
        depa_s, depa_races = _time_served(
            srv.port, batch, 1, backend="depa"
        )
        seconds["serve_depa_1s"] = depa_s
        eps["serve_depa_1s"] = len(batch) / depa_s
    # The multi-node legs each get a fresh gateway: worker processes
    # are part of what is being measured, not amortisable fixtures.
    multinode_races = {}
    for workers in MULTINODE_WORKERS:
        with ClusterThread(
            ClusterConfig(workers=workers), registry=MetricsRegistry()
        ) as cluster:
            served_s, races = _time_served(cluster.port, batch, 1)
            key = f"serve_multinode_{workers}w"
            seconds[key] = served_s
            eps[key] = len(batch) / served_s
            multinode_races[workers] = races
    multinode_agrees = all(
        races == local_races for races in multinode_races.values()
    )
    rec = {
        "bench": "serve",
        "workload": {
            "accesses": ACCESSES,
            "events": len(batch),
            "batch_size": BATCH_SIZE,
            "repeats": REPEATS,
        },
        "seconds": seconds,
        "events_per_sec": eps,
        "serve_vs_batched_overhead": eps["batched_reference"]
        / eps["serve_1s"],
        "differential": {
            "serve_depa_agrees": depa_races == local_races,
            "serve_multinode_agrees": multinode_agrees,
            "races": {
                "local": local_races,
                "serve_depa": depa_races,
                "serve_multinode": {
                    str(w): r for w, r in multinode_races.items()
                },
            },
        },
    }

    # Merge into the engine record: bench_engine_batch.py rewrites the
    # file wholesale, so this benchmark must run after it and only
    # add its own keys.
    stored = {}
    if RECORD_PATH.exists():
        stored = json.loads(RECORD_PATH.read_text(encoding="utf-8"))
    stored.setdefault("events_per_sec", {}).update(
        {k: v for k, v in eps.items() if k.startswith("serve_")}
    )
    stored.setdefault("seconds", {}).update(
        {k: v for k, v in seconds.items() if k.startswith("serve_")}
    )
    stored["serve_vs_batched_overhead"] = rec["serve_vs_batched_overhead"]
    stored.setdefault("differential", {})["serve_depa_agrees"] = rec[
        "differential"
    ]["serve_depa_agrees"]
    stored["differential"]["serve_multinode_agrees"] = multinode_agrees
    RECORD_PATH.write_text(
        json.dumps(stored, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )

    print_table(
        [
            {
                "path": name,
                "seconds": f"{seconds[name]:.3f}",
                "events/sec": f"{eps[name]:,.0f}",
            }
            for name in (
                "batched_reference", "serve_1s", "serve_4s",
                "serve_16s", "serve_depa_1s",
                "serve_multinode_2w", "serve_multinode_4w",
            )
        ],
        title=f"serving layer vs direct ingest ({ACCESSES // 1000}k accesses)",
    )
    return rec


@pytest.mark.shape
def test_serving_overhead_within_2x(record):
    """The acceptance bar: framing + TCP + asyncio costs < 2x."""
    assert record["serve_vs_batched_overhead"] <= 2.0, record["seconds"]


@pytest.mark.shape
def test_concurrent_sessions_sustain_throughput(record):
    """16 sessions under the default credit window must not collapse:
    aggregate throughput stays above half the single-session rate."""
    eps = record["events_per_sec"]
    assert eps["serve_16s"] >= 0.5 * eps["serve_1s"], record["seconds"]


@pytest.mark.shape
def test_depa_session_changes_no_verdicts(record):
    """A depa-negotiated session must stream the exact race count a
    local lattice2d engine finds -- negotiation moves work, never
    verdicts."""
    assert record["differential"]["serve_depa_agrees"] is True, record[
        "differential"
    ]


@pytest.mark.shape
def test_multinode_gateway_changes_no_verdicts(record):
    """Sharding by location across worker processes is exact: every
    worker count streams back the local lattice2d race count."""
    assert record["differential"]["serve_multinode_agrees"] is True, record[
        "differential"
    ]


def test_record_merged_into_engine_record(record):
    stored = json.loads(RECORD_PATH.read_text(encoding="utf-8"))
    assert "serve_4s" in stored["events_per_sec"]
    assert "serve_depa_1s" in stored["events_per_sec"]
    assert "serve_multinode_2w" in stored["events_per_sec"]
    assert "serve_multinode_4w" in stored["events_per_sec"]
    assert stored["differential"]["serve_depa_agrees"] is True
    assert stored["differential"]["serve_multinode_agrees"] is True
    assert stored["serve_vs_batched_overhead"] == pytest.approx(
        record["serve_vs_batched_overhead"]
    )
