"""Experiment F7 -- Figure 7: delayed traversals and the modified Walk.

Regenerates Figure 7's delayed traversal (stop-arcs in the right
places, the paper's thread decomposition), checks the relaxed
conditions (6)-(7) hold along it, and times the delayed walk on grids.
"""

from __future__ import annotations

import pytest

from repro.core.delayed import DelayedSupremaWalker
from repro.core.traversal import threads_of_delayed
from repro.events import StopArc, format_traversal
from repro.lattice.generators import figure3_diagram, figure3_lattice, grid_diagram
from repro.lattice.nonseparating import delayed_nonseparating_traversal
from repro.lattice.poset import Poset


def test_figure7_caption_prefix():
    poset = Poset(figure3_lattice())
    items = delayed_nonseparating_traversal(figure3_diagram(), poset.leq)
    assert format_traversal(items).startswith(
        "(1, 1)(1, 2)(2, 2)(2, 3)(3, 3)"
        "(3, \N{MULTIPLICATION SIGN})(2, \N{MULTIPLICATION SIGN})"
        "(1, 4)(4, 4)(2, 5)(4, 5)(5, 5)"
    )


def test_figure7_threads():
    poset = Poset(figure3_lattice())
    items = delayed_nonseparating_traversal(figure3_diagram(), poset.leq)
    threads = {tuple(t) for t in threads_of_delayed(items)}
    assert threads == {(2,), (3,), (5,), (6,), (1, 4, 7, 8, 9)}


def test_relaxed_condition_6_on_grid():
    diagram = grid_diagram(4, 4)
    poset = Poset(diagram.graph)
    items = delayed_nonseparating_traversal(diagram, poset.leq)
    walker = DelayedSupremaWalker()
    visited = []

    def on_visit(t, w):
        for x in visited:
            assert (w.sup(x, t) == t) == poset.leq(x, t)
        visited.append(t)

    walker.walk(items, on_visit)


def _delayed_walk(items):
    walker = DelayedSupremaWalker(check_preconditions=False)
    for item in items:
        walker.feed(item)
    return walker


@pytest.mark.parametrize("side", [10, 30, 60])
def test_bench_delayed_walk(benchmark, side):
    diagram = grid_diagram(side, side)
    poset = Poset(diagram.graph)
    items = delayed_nonseparating_traversal(diagram, poset.leq)
    walker = benchmark(_delayed_walk, items)
    stop_count = sum(isinstance(x, StopArc) for x in items)
    assert walker.unionfind.stats.union_count >= 1
    assert stop_count > 0  # grids genuinely need delays
