"""Experiment E1 -- the batched ingestion engine's throughput claim.

The engine's reason to exist: feeding the 2D detector dense columnar
batches (interned locations, inlined access kernel) must beat the
per-event observer calls by at least 2x on the standard 100k-access
``racegen`` bulk workload -- and it must do so while changing *zero*
verdicts, which the differential harness checks on the same run.

The multi-process tier rides the same record: ``parallel`` (4 shard
workers over shared memory, whole-batch feed) must beat ``batched``
outright, with the race multiset and the parent-vs-worker routing
counters in exact agreement.

The array-native tier rides it too: ``depa`` (the numpy segment kernel
over the DePa detector's flat columns) must clear a 2.8x hysteresis
floor over ``batched`` on the best-of ratio, with the 4x target
asserted only on the median of the interleaved repeats -- one noisy
run cannot flip the gate either way.  The union-find kernel acts as
referee (``differential.depa_agrees``) on every run, and the
depa-native process pool (``depa_parallel``) rides the same record
with its own referee (``differential.depa_parallel_agrees``).

The measured record is written to ``BENCH_engine.json`` at the repo
root so the perf trajectory accumulates across revisions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.bench.tables import print_table
from repro.engine.benchlib import format_record, run_engine_benchmark

RECORD_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

pytestmark = pytest.mark.engine


@pytest.fixture(scope="module")
def record():
    rec = run_engine_benchmark(accesses=100_000, repeats=3)
    RECORD_PATH.write_text(
        json.dumps(rec, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print_table(format_record(rec), title="engine ingestion paths (100k accesses)")
    return rec


@pytest.mark.shape
def test_batched_beats_per_event_by_2x(record):
    """The headline acceptance bar: >= 2x over per-event calls."""
    assert record["speedup_batched_vs_per_event"] >= 2.0, record["seconds"]


@pytest.mark.shape
def test_batched_beats_replay(record):
    """A fortiori: the full replay path (validation included) loses too."""
    assert record["speedup_batched_vs_replay"] >= 2.0, record["seconds"]


@pytest.mark.shape
def test_parallel_beats_batched(record):
    """The multi-core tier must pay for itself even on one core.

    The worker kernel skips the per-event structural checks (the
    parent pre-validates the whole batch vectorized), which is where
    the margin comes from when no second core exists; real parallelism
    only widens it.  On a runner that genuinely has a single CPU the
    worker pool is pure scheduling overhead, so the ratio is recorded
    but not asserted (mirroring check_bench_regression's gate).
    """
    cpus = record["cpu_count"]
    if not isinstance(cpus, int) or cpus < 2:
        pytest.skip(f"cpu_count={cpus!r}: no second core to parallelise on")
    assert record["speedup_parallel_vs_batched"] > 1.0, record["seconds"]


@pytest.mark.shape
def test_depa_beats_batched_with_hysteresis(record):
    """The array-native backend's acceptance bar, with hysteresis.

    The best-of ratio only has to clear a 2.8x floor (the old hard 3x
    gate sat one noisy repeat away from a false failure); the real 4x
    target is asserted on the median over the interleaved repeats,
    which a single outlier sample cannot move."""
    assert record["speedup_depa_vs_batched"] >= 2.8, record["seconds"]
    assert record["speedup_depa_vs_batched_median"] >= 4.0, record


@pytest.mark.shape
def test_depa_parallel_beats_depa(record):
    """The depa-native pool must pay for itself over serial depa.

    Same single-core softening as the lattice2d parallel gate: the
    ratio is recorded but not asserted when there is no second core
    (the depa workers have no validation work to shed, so a 1-core
    pool is pure scheduling overhead)."""
    assert "depa_parallel" in record["events_per_sec"]  # key always emitted
    cpus = record["cpu_count"]
    if not isinstance(cpus, int) or cpus < 2:
        pytest.skip(f"cpu_count={cpus!r}: no second core to parallelise on")
    assert record["speedup_depa_parallel_vs_depa"] >= 1.0, record["seconds"]


@pytest.mark.shape
def test_compressed_beats_batched_on_loops(record):
    """The compressed tier's acceptance bar: memoized ingestion over
    the grammar-compressed loops workload must beat batched raw
    ingestion of the same stream outright (best-of), with a 2x floor
    on the median -- repeated blocks replay as cached transitions, so
    the margin scales with the dedup factor, not with luck."""
    assert record["speedup_compressed_vs_batched"] > 1.0, record["seconds"]
    assert record["speedup_compressed_vs_batched_median"] >= 2.0, record


@pytest.mark.shape
def test_compression_ratio_clears_3x(record):
    """RPR2TRZ must be at least 3x smaller than the raw RPR2TRC bytes
    on the standard loops workload (the paper-facing size claim)."""
    assert record["compression_ratio"] >= 3.0, record["workload_loops"]


@pytest.mark.shape
def test_compressed_changes_no_verdicts(record):
    """The memoized path is a pure optimisation: the differential
    harness must certify it on both the loops and the bulk workload."""
    assert record["differential"]["compressed_agrees"] is True
    assert record["races"]["compressed"] > 0  # the loops workload races


@pytest.mark.shape
def test_metrics_overhead_within_5_percent(record):
    """Live per-batch counters vs the disabled NULL_REGISTRY engine.

    The headline `batched` number above already runs with metrics on;
    this pins the other side: turning the registry *off* must not be
    worth more than 5% -- i.e. the observability layer is effectively
    free at batch granularity.
    """
    ratio = record["metrics_overhead_vs_disabled"]
    assert ratio is not None
    assert ratio <= 1.05, record["seconds"]


@pytest.mark.shape
def test_fast_paths_change_no_verdicts(record):
    """Throughput without soundness is worthless: all paths agree."""
    races = record["races"]
    assert races["batched"] == races["per_event"] == races["sharded"]
    assert races["parallel"] == races["per_event"]
    assert races["depa"] == races["per_event"]
    assert races["depa_parallel"] == races["per_event"]
    assert races["per_event"] > 0  # the workload seeds real races
    diff = record["differential"]
    assert diff["divergences"] == 0
    assert diff["depa_agrees"] is True
    assert diff["sharded_agrees"] is True
    assert diff["parallel_agrees"] is True
    assert diff["depa_parallel_agrees"] is True
    assert len(set(diff["races"].values())) == 1  # trio agrees on the count


def test_record_is_written_and_loadable(record):
    stored = json.loads(RECORD_PATH.read_text(encoding="utf-8"))
    assert stored["bench"] == "engine_batch"
    assert stored["workload"]["accesses"] >= 100_000
    # The regression gate's cpu_count softening relies on every fresh
    # record carrying the field.
    assert "cpu_count" in stored
    # Absolute ev/s numbers mean little across hosts without these.
    assert stored["versions"]["python"]
