"""Experiment F5 -- Figure 5: the suprema-finding algorithm.

Correctness: on the Figure 3 lattice and on grids, every valid query
``Sup(x, t)`` equals the brute-force supremum (Theorem 1 gives exact
suprema offline).  Performance: time a full walk answering one query
per visited pair on grids (the m + n union-find term of Theorem 3).
"""

from __future__ import annotations

import random

import pytest

from repro.core.suprema import SupremaWalker
from repro.lattice.generators import figure3_diagram, grid_diagram
from repro.lattice.nonseparating import nonseparating_traversal
from repro.lattice.poset import Poset


def test_exactness_on_grid():
    diagram = grid_diagram(5, 5)
    poset = Poset(diagram.graph)
    traversal = nonseparating_traversal(diagram)
    walker = SupremaWalker()
    visited = []

    def on_visit(t, w):
        for x in visited:
            assert w.sup(x, t) == poset.sup(x, t)
        visited.append(t)

    walker.walk(traversal, on_visit)


def _walk_with_queries(diagram, queries_per_vertex, seed):
    rng = random.Random(seed)
    traversal = nonseparating_traversal(diagram)
    walker = SupremaWalker(check_preconditions=False)
    visited = []
    answered = 0

    def on_visit(t, w):
        nonlocal answered
        if visited:
            for _ in range(queries_per_vertex):
                w.sup(rng.choice(visited), t)
                answered += 1
        visited.append(t)

    walker.walk(traversal, on_visit)
    return answered


@pytest.mark.parametrize("side", [10, 30, 60])
def test_bench_walk_with_queries(benchmark, side):
    diagram = grid_diagram(side, side)
    answered = benchmark(_walk_with_queries, diagram, 2, 17)
    assert answered == 2 * (side * side - 1)


def test_bench_figure3_walk(benchmark):
    diagram = figure3_diagram()

    def once():
        return _walk_with_queries(diagram, 3, 5)

    assert benchmark(once) == 3 * 8
