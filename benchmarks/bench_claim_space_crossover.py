"""Experiment C1 -- the Θ(n) vs Θ(1) space claim, shared-table regime.

Section 1: "state of the art race detection techniques that handle
arbitrary parallelism suffer from scalability issues: their memory
usage is Θ(n) per monitored memory location ... As n gets larger the
analyzer can quickly run out of memory."

The regime that statement describes is a *fixed* set of shared
locations touched by a *growing* number of tasks.  Here a constant
table of L locations is initialised once and then only read by every
pipeline cell (race-free), while the task count n sweeps 9 -> 1025:

* the 2D detector's shadow stays at 2L entries total, forever;
* the vector-clock detector's shadow grows like L x n;
* FastTrack's read-shared vectors grow the same way.

The printed table reports total shadow entries over the table and the
mean entries per location; shape assertions pin the flat-vs-linear gap.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import DETECTOR_FACTORIES
from repro.bench.tables import print_table
from repro.forkjoin.pipeline import run_pipeline
from repro.forkjoin.program import read as _read, write as _write

TABLE_SIZE = 16
SWEEP = [(4, 2), (16, 4), (64, 4), (128, 8)]  # (items, stages)
NAMES = ("lattice2d", "fasttrack", "vectorclock")


def shared_table_workload(n_items: int, n_stages: int):
    """Every cell reads ``k`` cells of a fixed shared table.

    Cell (0, 0) initialises the whole table first; it is ordered before
    everything else in the pipeline grid, so the workload is race-free.
    """

    def make_stage(i: int):
        def stage(item, j):
            if i == 0 and j == 0:
                for k in range(TABLE_SIZE):
                    yield _write(("table", k))
            for k in range(3):
                yield _read(("table", (i * 7 + j * 3 + k) % TABLE_SIZE))

        stage.__name__ = f"table_stage{i}"
        return stage

    return list(range(n_items)), [make_stage(i) for i in range(n_stages)]


def run_with(name, n_items, n_stages):
    items, stages = shared_table_workload(n_items, n_stages)
    det = DETECTOR_FACTORIES[name]()
    ex = run_pipeline(items, stages, observers=[det])
    assert det.races == [], f"{name} false positive"
    return det, ex


def test_shared_table_space_table():
    rows = []
    totals = {name: [] for name in NAMES}
    for n_items, n_stages in SWEEP:
        row = {}
        for name in NAMES:
            det, ex = run_with(name, n_items, n_stages)
            row.setdefault("tasks", ex.task_count)
            total = det.shadow_total_entries()
            row[f"{name} shadow"] = total
            row[f"{name}/loc"] = round(total / TABLE_SIZE, 1)
            totals[name].append(total)
        rows.append(row)
    print_table(
        rows,
        title=f"C1: shadow entries over a fixed {TABLE_SIZE}-location "
        "shared table (race-free readers)",
    )
    # The 2D detector's table shadow never exceeds 2 entries/location.
    assert all(t <= 2 * TABLE_SIZE for t in totals["lattice2d"])
    # The vector-clock shadow scales with the task count: two orders of
    # magnitude more tasks => >= 50x more shadow.
    assert totals["vectorclock"][-1] >= 50 * totals["vectorclock"][0]
    # FastTrack's read-shared inflation puts it in the same regime.
    assert totals["fasttrack"][-1] >= 25 * totals["fasttrack"][0]
    # End-state gap: the paper's motivation in one number.
    gap = totals["vectorclock"][-1] / totals["lattice2d"][-1]
    print(f"\nend-state shadow gap (vectorclock / lattice2d): {gap:.0f}x")
    assert gap > 50


@pytest.mark.parametrize("name", NAMES)
def test_bench_shared_table_run(benchmark, name):
    det, _ = benchmark(run_with, name, 32, 4)
    assert det.shadow_total_entries() > 0
