"""repro.obs -- the observability layer: metrics, phases, exporters.

FastTrack-style detectors justify their complexity claims with
per-operation counter profiles; this package keeps those profiles
continuously measurable instead of re-deriving them per benchmark.
Three pieces, zero third-party dependencies:

* :mod:`repro.obs.registry` -- a process-local
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms.  O(1) thread-safe updates; a disabled registry hands out
  shared no-ops so instrumentation is free to leave in.
* :mod:`repro.obs.phases` -- a :class:`PhaseTracer` recording nested
  span timings (``ingest/dispatch`` ...) via a context manager or the
  :func:`traced` decorator; one truth test per call when disabled.
* :mod:`repro.obs.export` -- :func:`to_json` and :func:`to_prometheus`
  render one consistent snapshot; :func:`write_metrics` picks the
  format from the file extension (``.prom``/``.txt`` vs JSON).

Wiring: the batch engines count events/batches/races/dispatch paths and
shard routing against the default registry
(:func:`get_registry`); union-find and detector internals are *pulled*
via the function-gauge bindings in :mod:`repro.obs.bind`; the bench
harness builds its :class:`~repro.bench.metrics.DetectorStats` from a
registry snapshot, so benchmarks and exports can never disagree.

Quick taste::

    from repro.obs import MetricsRegistry, to_prometheus

    reg = MetricsRegistry()
    reg.counter("requests_total", "requests served").inc()
    print(to_prometheus(reg))

See ``docs/OBSERVABILITY.md`` for the full tour.
"""

from repro.obs.bind import bind_detector, bind_union_find
from repro.obs.export import to_json, to_prometheus, write_metrics
from repro.obs.phases import (
    PhaseTracer,
    Span,
    get_tracer,
    set_tracer,
    traced,
)
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "get_registry",
    "set_registry",
    "PhaseTracer",
    "Span",
    "get_tracer",
    "set_tracer",
    "traced",
    "to_json",
    "to_prometheus",
    "write_metrics",
    "bind_detector",
    "bind_union_find",
]
