"""Process-local metrics: counters, gauges, fixed-bucket histograms.

The registry is the repository's one instrumentation surface: every
subsystem that wants an always-on number (events ingested, races found,
union-find finds, shard routing decisions) registers it here, and every
consumer (the CLI's ``--metrics`` dump, ``repro-race stats``, the bench
harness, the exporters) reads the same snapshot.  Design constraints,
in order:

* **zero third-party dependencies** -- plain Python, stdlib only;
* **O(1) hot-path updates** -- an increment is one lock acquire plus an
  integer add; instruments are looked up *once*, at wiring time, never
  per event (hot loops keep plain local ints and flush per batch);
* **thread-safe** -- instrument creation and every mutation are guarded
  (instruments get their own small locks so unrelated updates do not
  contend);
* **free when disabled** -- a disabled registry hands out shared no-op
  instruments, so instrumented code pays one method call per *batch*,
  not per event (the engine benchmark asserts the overhead).

Identity model (after the Prometheus one): a time series is a metric
*name* plus a set of ``label=value`` pairs.  ``counter(name, labels=...)``
is get-or-create -- asking twice returns the same instrument, asking
with a different metric *type* for an existing name raises.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ProgramError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "DEFAULT_BUCKETS",
]

#: default histogram bucket upper bounds (seconds-flavoured; override
#: per histogram for size-flavoured metrics)
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.01, 0.1, 1.0, 10.0,
)

LabelPairs = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Optional[Mapping[str, str]]) -> LabelPairs:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count.

    ``inc`` is the only mutator; decrementing raises (use a
    :class:`Gauge` for values that go down).
    """

    __slots__ = ("name", "help", "labels", "_value", "_lock")
    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labels: LabelPairs = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value: float = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (>= 0) to the counter."""
        if amount < 0:
            raise ProgramError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        return self._value


class Gauge:
    """A value that can go up, down, or be computed on demand.

    ``set_function`` turns the gauge into a *pull* instrument: the
    callable is evaluated at snapshot/export time, which is how existing
    structures (union-find op counters, shadow-map sizes) surface their
    state without paying anything on their own hot paths.
    """

    __slots__ = ("name", "help", "labels", "_value", "_fn", "_lock")
    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: LabelPairs = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self._value: float = 0
        self._fn: Optional[Callable[[], float]] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Set the gauge to ``value`` (clears any pull function)."""
        with self._lock:
            self._fn = None
            self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)

    def set_function(self, fn: Callable[[], float]) -> None:
        """Evaluate ``fn()`` at read time instead of storing a value."""
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> float:
        """Current value (evaluates the pull function when set)."""
        fn = self._fn
        return fn() if fn is not None else self._value


class Histogram:
    """Fixed-bucket histogram: observation counts, sum, and total count.

    Buckets are cumulative *upper bounds*, Prometheus style; an implicit
    ``+Inf`` bucket always exists.  ``observe`` costs one binary search
    plus three integer updates under the instrument's lock.
    """

    __slots__ = (
        "name", "help", "labels", "buckets", "_counts", "_sum", "_count",
        "_lock",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: LabelPairs = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        uppers = tuple(sorted(float(b) for b in buckets))
        if not uppers:
            raise ProgramError(f"histogram {name!r} needs at least one bucket")
        if len(set(uppers)) != len(uppers):
            raise ProgramError(f"histogram {name!r} has duplicate buckets")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = uppers
        self._counts = [0] * (len(uppers) + 1)  # +1 for +Inf
        self._sum: float = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total number of observations."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        return self._sum

    def cumulative_counts(self) -> List[int]:
        """Per-bucket cumulative counts (ending with the +Inf total)."""
        out = []
        acc = 0
        for c in self._counts:
            acc += c
            out.append(acc)
        return out


class _NullInstrument:
    """Shared do-nothing instrument handed out by a disabled registry."""

    __slots__ = ()
    name = ""
    help = ""
    labels: LabelPairs = ()
    buckets: Tuple[float, ...] = DEFAULT_BUCKETS
    value = 0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def set_function(self, fn: Callable[[], float]) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def cumulative_counts(self) -> List[int]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Get-or-create home for a process's instruments.

    One registry per logical scope: the module-level default (see
    :func:`get_registry`) for always-on process metrics, fresh instances
    for isolated measurements (the bench harness makes one per run).

    Passing ``enabled=False`` creates a registry whose instrument
    factories return a shared no-op -- instrumented code runs unchanged
    at (measurably, see ``benchmarks/bench_engine_batch.py``) zero cost.
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: Dict[Tuple[str, LabelPairs], object] = {}
        self._kinds: Dict[str, str] = {}
        self._lock = threading.Lock()

    # -- instrument factories ------------------------------------------------

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        if not self.enabled:
            return _NULL_INSTRUMENT
        frozen = _freeze_labels(labels)
        key = (name, frozen)
        with self._lock:
            inst = self._metrics.get(key)
            if inst is not None:
                if inst.kind != cls.kind:
                    raise ProgramError(
                        f"metric {name!r} already registered as {inst.kind}, "
                        f"requested {cls.kind}"
                    )
                return inst
            kind = self._kinds.get(name)
            if kind is not None and kind != cls.kind:
                raise ProgramError(
                    f"metric {name!r} already registered as {kind}, "
                    f"requested {cls.kind}"
                )
            inst = cls(name, help, frozen, **kwargs)
            self._metrics[key] = inst
            self._kinds[name] = cls.kind
            return inst

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``."""
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # -- reading -------------------------------------------------------------

    def instruments(self) -> List[object]:
        """All registered instruments, sorted by (name, labels)."""
        with self._lock:
            return [
                self._metrics[k] for k in sorted(self._metrics)
            ]

    def snapshot(self) -> Dict[str, Dict]:
        """A plain-dict view of every instrument's current state.

        Stable across calls (sorted by name then labels); histogram
        bucket counts are cumulative, matching the Prometheus exposition
        they export to.
        """
        out: Dict[str, Dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for inst in self.instruments():
            series = _series_name(inst.name, inst.labels)
            if inst.kind == "counter":
                out["counters"][series] = inst.value
            elif inst.kind == "gauge":
                out["gauges"][series] = inst.value
            else:
                out["histograms"][series] = {
                    "buckets": {
                        str(upper): cum
                        for upper, cum in zip(
                            inst.buckets, inst.cumulative_counts()
                        )
                    },
                    "sum": inst.sum,
                    "count": inst.count,
                }
        return out

    def export_state(self) -> List[Dict]:
        """A picklable description of every instrument and its state.

        The wire format for cross-process metric aggregation: shard
        workers export their private registries and the parent folds
        them into one with :meth:`merge_state`.  Pull-function gauges
        are evaluated at export time.
        """
        out: List[Dict] = []
        for inst in self.instruments():
            entry: Dict = {
                "kind": inst.kind,
                "name": inst.name,
                "help": inst.help,
                "labels": [list(pair) for pair in inst.labels],
            }
            if inst.kind == "histogram":
                entry["buckets"] = list(inst.buckets)
                entry["counts"] = list(inst._counts)
                entry["sum"] = inst.sum
                entry["count"] = inst.count
            else:
                entry["value"] = inst.value
            out.append(entry)
        return out

    def merge_state(self, state: Sequence[Dict]) -> None:
        """Fold an :meth:`export_state` payload into this registry.

        Counter and gauge values *add* (use distinguishing labels --
        e.g. ``shard="3"`` -- when per-worker series must stay
        separate); histograms add per-bucket counts, sums and totals.
        Instruments are get-or-created, so merging into an empty
        registry reconstructs the exported one.
        """
        if not self.enabled:
            return
        for entry in state:
            labels = {k: v for k, v in entry["labels"]}
            kind = entry["kind"]
            if kind == "counter":
                self.counter(entry["name"], entry["help"], labels).inc(
                    entry["value"]
                )
            elif kind == "gauge":
                self.gauge(entry["name"], entry["help"], labels).inc(
                    entry["value"]
                )
            elif kind == "histogram":
                hist = self.histogram(
                    entry["name"],
                    entry["help"],
                    labels,
                    buckets=entry["buckets"],
                )
                counts = entry["counts"]
                if len(counts) != len(hist._counts) or list(
                    hist.buckets
                ) != list(entry["buckets"]):
                    raise ProgramError(
                        f"histogram {entry['name']!r} bucket mismatch "
                        f"on merge"
                    )
                with hist._lock:
                    for i, c in enumerate(counts):
                        hist._counts[i] += c
                    hist._sum += entry["sum"]
                    hist._count += entry["count"]
            else:
                raise ProgramError(
                    f"unknown instrument kind {kind!r} in merge"
                )

    def clear(self) -> None:
        """Drop every instrument (tests and CLI runs start clean)."""
        with self._lock:
            self._metrics.clear()
            self._kinds.clear()


def _series_name(name: str, labels: LabelPairs) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


#: the shared disabled registry: instrument anything against it for free
NULL_REGISTRY = MetricsRegistry(enabled=False)

_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (always-on metrics live here)."""
    return _default_registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process default; returns the previous one.

    The CLI installs a fresh registry per invocation so ``--metrics``
    dumps exactly one command's activity; tests do the same around
    assertions on global counters.
    """
    global _default_registry
    with _default_lock:
        previous = _default_registry
        _default_registry = registry
    return previous
