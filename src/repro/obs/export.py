"""Registry exporters: JSON for tools, Prometheus text for scrapers.

Both exporters read one consistent :meth:`MetricsRegistry.snapshot`
-- the formats cannot drift because neither talks to instruments
directly.  The Prometheus output follows the text exposition format
version 0.0.4: ``# HELP`` / ``# TYPE`` per metric family, label pairs
escaped, histograms as cumulative ``_bucket{le=...}`` series plus
``_sum`` and ``_count``.  Metric names are sanitised (every character
outside ``[a-zA-Z0-9_:]`` becomes ``_``) so registry names can stay
readable Python-side.
"""

from __future__ import annotations

import json
import re
from typing import Dict, List, Optional

from repro.obs.phases import PhaseTracer
from repro.obs.registry import MetricsRegistry

__all__ = ["to_json", "to_prometheus", "write_metrics"]

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_FIRST_OK = re.compile(r"^[a-zA-Z_:]")


def _prom_name(name: str) -> str:
    cleaned = _NAME_OK.sub("_", name)
    if not _FIRST_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _prom_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_labels(labels, extra: Optional[Dict[str, str]] = None) -> str:
    pairs = list(labels)
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    inner = ",".join(
        f'{_prom_name(k)}="{_prom_label_value(str(v))}"' for k, v in pairs
    )
    return f"{{{inner}}}"


def _prom_number(value) -> str:
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def to_json(
    registry: MetricsRegistry,
    *,
    tracer: Optional[PhaseTracer] = None,
    indent: Optional[int] = 2,
) -> str:
    """The registry snapshot as a JSON document.

    Pass the tracer to embed its per-phase aggregates under a
    ``"phases"`` key alongside the metric sections.
    """
    doc: Dict[str, object] = dict(registry.snapshot())
    if tracer is not None:
        doc["phases"] = tracer.totals()
    return json.dumps(doc, indent=indent, sort_keys=True)


def to_prometheus(registry: MetricsRegistry) -> str:
    """The registry snapshot in the Prometheus text exposition format."""
    families: Dict[str, Dict[str, object]] = {}
    for inst in registry.instruments():
        fam = families.setdefault(
            inst.name, {"kind": inst.kind, "help": inst.help, "rows": []}
        )
        if not fam["help"] and inst.help:
            fam["help"] = inst.help
        fam["rows"].append(inst)

    lines: List[str] = []
    for name in sorted(families):
        fam = families[name]
        pname = _prom_name(name)
        if fam["help"]:
            lines.append(f"# HELP {pname} {fam['help']}")
        lines.append(f"# TYPE {pname} {fam['kind']}")
        for inst in fam["rows"]:
            if inst.kind in ("counter", "gauge"):
                lines.append(
                    f"{pname}{_prom_labels(inst.labels)} "
                    f"{_prom_number(inst.value)}"
                )
            else:  # histogram
                cumulative = inst.cumulative_counts()
                for upper, cum in zip(inst.buckets, cumulative):
                    le = _prom_labels(inst.labels, {"le": _prom_number(upper)})
                    lines.append(f"{pname}_bucket{le} {cum}")
                inf = _prom_labels(inst.labels, {"le": "+Inf"})
                lines.append(f"{pname}_bucket{inf} {inst.count}")
                lines.append(
                    f"{pname}_sum{_prom_labels(inst.labels)} "
                    f"{_prom_number(inst.sum)}"
                )
                lines.append(
                    f"{pname}_count{_prom_labels(inst.labels)} {inst.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(
    path: str,
    registry: MetricsRegistry,
    *,
    tracer: Optional[PhaseTracer] = None,
) -> str:
    """Dump the registry to ``path``; the extension picks the format.

    ``.prom`` / ``.txt`` write the Prometheus text format, anything
    else JSON.  Returns the format written (``"prometheus"`` or
    ``"json"``).
    """
    if path.endswith((".prom", ".txt")):
        payload = to_prometheus(registry)
        fmt = "prometheus"
    else:
        payload = to_json(registry, tracer=tracer) + "\n"
        fmt = "json"
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
    return fmt
