"""Span/phase tracing: nested wall-clock timings, off by default.

The engine's hot paths run in phases -- ingest, split, dispatch,
shadow reconcile -- and the questions worth answering ("where did that
batch's time go?") are about the *nesting* of those phases, not about
individual events.  :class:`PhaseTracer` records exactly that: a stack
of named spans per thread, each finished span remembering its full path
(``ingest/dispatch``), duration, and nesting depth.

Two entry points:

* the context manager::

      with tracer.span("ingest"):
          with tracer.span("dispatch"):
              ...

* the decorator (late-bound to the module default tracer, so importing
  an instrumented module costs nothing)::

      @traced("dispatch")
      def _ingest_batch(det, batch): ...

Cost model: when the tracer is disabled (the default), ``span`` returns
a shared no-op context manager and ``@traced`` functions pay one
attribute load and one truth test per call -- no clock reads, no
allocation.  When enabled, each span costs two ``perf_counter`` calls
and two dict updates.  Per-phase aggregates (call counts, cumulative
seconds) are also mirrored into a :class:`~repro.obs.registry.MetricsRegistry`
when one is attached, so exports carry the timings alongside the
counters.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, NamedTuple, Optional, TypeVar

from repro.obs.registry import MetricsRegistry

__all__ = [
    "Span",
    "PhaseTracer",
    "get_tracer",
    "set_tracer",
    "traced",
]

F = TypeVar("F", bound=Callable)


class Span(NamedTuple):
    """One finished span."""

    path: str  #: slash-joined nesting path, e.g. ``"ingest/dispatch"``
    name: str  #: the leaf phase name
    depth: int  #: 0 for top-level spans
    seconds: float  #: wall-clock duration


class _NullSpan:
    """Shared no-op context manager for the disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; closing it records the timing."""

    __slots__ = ("_tracer", "_name", "_start")

    def __init__(self, tracer: "PhaseTracer", name: str) -> None:
        self._tracer = tracer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_LiveSpan":
        self._tracer._push(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        elapsed = time.perf_counter() - self._start
        self._tracer._pop(elapsed)
        return None


class PhaseTracer:
    """Records nested phase timings per thread (see module docstring).

    Parameters
    ----------
    enabled:
        Start enabled?  Defaults to off; flip :attr:`enabled` at any
        time (in-flight spans on the old setting finish consistently
        because disabled ``span()`` calls return the no-op manager).
    registry:
        When given, every finished span also bumps
        ``phase_calls_total{phase=path}`` and adds to
        ``phase_seconds_total{phase=path}`` in the registry.
    max_spans:
        Finished spans kept for inspection (a ring: oldest dropped).
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        registry: Optional[MetricsRegistry] = None,
        max_spans: int = 1000,
    ) -> None:
        self.enabled = enabled
        self.registry = registry
        self.max_spans = max_spans
        self.spans: List[Span] = []
        #: path -> [calls, cumulative seconds]
        self._totals: Dict[str, List[float]] = {}
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------

    def span(self, name: str) -> object:
        """A context manager timing one phase (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name)

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, name: str) -> None:
        self._stack().append(name)

    def _pop(self, elapsed: float) -> None:
        stack = self._stack()
        path = "/".join(stack)
        name = stack.pop()
        span = Span(path=path, name=name, depth=len(stack), seconds=elapsed)
        with self._lock:
            self.spans.append(span)
            if len(self.spans) > self.max_spans:
                del self.spans[: len(self.spans) - self.max_spans]
            total = self._totals.get(path)
            if total is None:
                total = self._totals[path] = [0, 0.0]
            total[0] += 1
            total[1] += elapsed
        registry = self.registry
        if registry is not None:
            registry.counter(
                "phase_calls_total",
                "finished spans per phase path",
                labels={"phase": path},
            ).inc()
            registry.counter(
                "phase_seconds_total",
                "cumulative wall seconds per phase path",
                labels={"phase": path},
            ).inc(elapsed)

    # -- reading -------------------------------------------------------------

    def totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregates per phase path: ``{path: {calls, seconds}}``."""
        with self._lock:
            return {
                path: {"calls": int(calls), "seconds": secs}
                for path, (calls, secs) in sorted(self._totals.items())
            }

    def clear(self) -> None:
        """Forget all finished spans and aggregates."""
        with self._lock:
            self.spans.clear()
            self._totals.clear()


_default_tracer = PhaseTracer()
_default_tracer_lock = threading.Lock()


def get_tracer() -> PhaseTracer:
    """The process-wide default tracer (disabled until someone enables it)."""
    return _default_tracer


def set_tracer(tracer: PhaseTracer) -> PhaseTracer:
    """Replace the process default tracer; returns the previous one."""
    global _default_tracer
    with _default_tracer_lock:
        previous = _default_tracer
        _default_tracer = tracer
    return previous


def traced(name: str, tracer: Optional[PhaseTracer] = None) -> Callable[[F], F]:
    """Decorator: time every call of the function as a span ``name``.

    The tracer is resolved *per call* (late binding) unless one is
    passed explicitly, so modules can decorate at import time and still
    honour a tracer installed later with :func:`set_tracer`.  Disabled
    tracers cost one truth test per call.
    """

    def decorate(fn: F) -> F:
        import functools

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            t = tracer if tracer is not None else _default_tracer
            if not t.enabled:
                return fn(*args, **kwargs)
            with t.span(name):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
