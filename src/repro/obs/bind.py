"""Pull-bindings: surface existing structures' state through a registry.

The hot structures (union-find, shadow maps, detectors) already keep
their own plain-int counters -- that is what makes their hot paths
cheap.  Rather than moving those counters behind instrument objects,
the registry *pulls* them: each binding registers function gauges that
read the live attributes at snapshot/export time.  Zero cost on the
instrumented structure's fast path, one attribute read per export.

These helpers are what the engines, the bench harness, and the CLI use
to make "what the structure counted" and "what the export says"
tautologically the same number.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.registry import MetricsRegistry

__all__ = ["bind_union_find", "bind_detector"]


def bind_union_find(
    registry: MetricsRegistry,
    uf: Any,
    labels: Optional[Dict[str, str]] = None,
    *,
    prefix: str = "unionfind",
) -> None:
    """Expose a union-find's op counters as function gauges.

    Accepts :class:`~repro.core.unionfind.IntUnionFind` or anything with
    ``find_count`` / ``union_count`` / ``hop_count`` attributes
    (:class:`~repro.core.unionfind.UnionFind` exposes its inner
    structure via ``.stats``).
    """
    stats = getattr(uf, "stats", uf)
    registry.gauge(
        f"{prefix}_finds",
        "find() calls made by the algorithm under measurement",
        labels=labels,
    ).set_function(lambda: stats.find_count)
    registry.gauge(
        f"{prefix}_unions",
        "union() calls made by the algorithm under measurement",
        labels=labels,
    ).set_function(lambda: stats.union_count)
    registry.gauge(
        f"{prefix}_hops",
        "parent-pointer hops walked during finds",
        labels=labels,
    ).set_function(lambda: stats.hop_count)
    registry.gauge(
        f"{prefix}_elements",
        "elements ever created",
        labels=labels,
    ).set_function(lambda: len(stats))


def bind_detector(
    registry: MetricsRegistry,
    detector: Any,
    labels: Optional[Dict[str, str]] = None,
    *,
    prefix: str = "detector",
) -> None:
    """Expose a detector's race/space accounting as function gauges.

    Works for any observer-protocol detector; whatever of the metric
    surface it has (``races``, a ``shadow`` map, ``metadata_entries``,
    a ``unionfind`` property) gets bound, the rest is skipped.
    """
    registry.gauge(
        f"{prefix}_races",
        "race reports accumulated by the detector",
        labels=labels,
    ).set_function(lambda: len(detector.races))
    if hasattr(detector, "op_index"):
        registry.gauge(
            f"{prefix}_ops",
            "events the detector has consumed",
            labels=labels,
        ).set_function(lambda: detector.op_index)
    shadow = getattr(detector, "shadow", None)
    if shadow is not None:
        registry.gauge(
            f"{prefix}_shadow_locations",
            "locations currently tracked in shadow memory",
            labels=labels,
        ).set_function(lambda: len(shadow))
    # Prefer the Detector ABC's accounting methods (each detector knows
    # its own cell layout); fall back to the raw ShadowMap counters for
    # plain observer-protocol objects like RaceDetector2D.
    total_fn = getattr(detector, "shadow_total_entries", None)
    if total_fn is None and shadow is not None:
        total_fn = shadow.total_entries
    if total_fn is not None:
        registry.gauge(
            f"{prefix}_shadow_entries",
            "current total shadow entries (conceptual words)",
            labels=labels,
        ).set_function(total_fn)
    peak_fn = getattr(detector, "shadow_peak_per_location", None)
    if peak_fn is None and shadow is not None:
        peak_fn = lambda: shadow.peak_entries_per_loc  # noqa: E731
    if peak_fn is not None:
        registry.gauge(
            f"{prefix}_shadow_peak_per_location",
            "peak shadow entries any single location ever used",
            labels=labels,
        ).set_function(peak_fn)
    if hasattr(detector, "metadata_entries"):
        registry.gauge(
            f"{prefix}_metadata_entries",
            "non-shadow metadata entries (conceptual words)",
            labels=labels,
        ).set_function(detector.metadata_entries)
    uf = getattr(detector, "unionfind", None)
    if uf is None:
        uf = getattr(detector, "_uf", None)
    if uf is not None and hasattr(uf, "find_count"):
        bind_union_find(registry, uf, labels, prefix=f"{prefix}_unionfind")
