"""Finding suprema in two-dimensional lattices (Figure 5, Theorems 1-3).

The algorithm consumes a *non-separating traversal* of a planar monotone
diagram and answers queries ``Sup(x, t)`` while the traversal is at vertex
``t``.  It maintains the **last-arc forest** of the current prefix in a
labeled union-find structure: the vertices of each tree live in one set,
labeled by the tree's root.  By Theorem 1,

    ``sup{x, t} = t``  if the root of ``x``'s tree was already visited,
    ``sup{x, t} = r``  (the root itself) otherwise.

Usage is either callback-style, mirroring the paper's ``Walk(T, Q)``::

    walker = SupremaWalker()
    walker.walk(items, on_visit=lambda t, w: ...w.sup(x, t)...)

or incremental, for online settings::

    walker = SupremaWalker()
    for item in items:
        walker.feed(item)
        if walker.current is not None:
            walker.sup(x, walker.current)
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, Optional

from repro.core.unionfind import UnionFind
from repro.errors import QueryPreconditionError, TraversalError
from repro.events import Arc, Loop, StopArc, TraversalItem

__all__ = ["SupremaWalker"]


class SupremaWalker:
    """Online engine answering ``Sup(x, t)`` along a non-separating traversal.

    Parameters
    ----------
    check_preconditions:
        When true (the default), :meth:`sup` verifies precondition (1) of
        Section 3 -- ``x`` must belong to the closure of the traversal
        prefix ending in ``t``, and ``t`` must be the currently visited
        vertex -- raising :class:`QueryPreconditionError` otherwise.
        Benchmarks switch this off; tests keep it on.
    path_compression / link_by_rank:
        Forwarded to the underlying union-find (ablation knobs).
    """

    def __init__(
        self,
        *,
        check_preconditions: bool = True,
        path_compression: bool = True,
        link_by_rank: bool = True,
    ) -> None:
        self._uf = UnionFind(
            path_compression=path_compression, link_by_rank=link_by_rank
        )
        self._visited: Dict[Hashable, bool] = {}
        self._check = check_preconditions
        #: vertex whose loop was fed most recently (the traversal "cursor")
        self.current: Optional[Hashable] = None

    # -- state inspection ---------------------------------------------------

    @property
    def unionfind(self) -> UnionFind:
        """The labeled union-find maintaining the last-arc forest."""
        return self._uf

    def is_visited(self, x: Hashable) -> bool:
        """Whether ``x`` is currently marked visited."""
        return self._visited.get(x, False)

    def is_known(self, x: Hashable) -> bool:
        """Whether ``x`` belongs to the closure of the current prefix.

        The closure of the prefix ending in ``(t, t)`` equals the vertex
        set of the last-arc forest together with the visited vertices, so
        membership in the union-find universe is the right test.
        """
        return x in self._uf

    # -- traversal consumption ----------------------------------------------

    def feed(self, item: TraversalItem) -> None:
        """Advance the traversal by one item (arc or loop)."""
        if isinstance(item, Loop):
            v = item.vertex
            self._uf.add(v)
            self._visited[v] = True
            self.current = v
        elif isinstance(item, Arc):
            # Both endpoints of a visited arc belong to the closure of
            # the prefix (a target may be seen here before its loop), so
            # they must enter the union-find universe even for non-last
            # arcs -- otherwise is_known()/sup() wrongly reject valid
            # queries on them.  Only last-arcs mutate the forest.
            self._uf.add(item.src)
            self._uf.add(item.dst)
            if item.last:
                # Walk lines 5-6: attach s's tree below t.
                self._uf.union(item.dst, item.src)
        elif isinstance(item, StopArc):
            self._on_stop_arc(item)
        else:  # pragma: no cover - defensive
            raise TraversalError(f"not a traversal item: {item!r}")

    def _on_stop_arc(self, item: StopArc) -> None:
        raise TraversalError(
            "stop-arc in a non-delayed traversal; use DelayedSupremaWalker"
        )

    def walk(
        self,
        items: Iterable[TraversalItem],
        on_visit: Optional[Callable[[Hashable, "SupremaWalker"], None]] = None,
    ) -> None:
        """Consume a whole traversal, invoking ``on_visit(t, self)`` at
        every vertex visit -- the paper's query set ``Q(t)`` as a callback.
        """
        for item in items:
            self.feed(item)
            if on_visit is not None and isinstance(item, Loop):
                on_visit(item.vertex, self)

    # -- queries --------------------------------------------------------------

    def sup(self, x: Hashable, t: Hashable) -> Hashable:
        """Answer the query ``Sup(x, t)`` (Figure 5 right).

        Returns ``t`` when ``sup{x, t} = t`` (i.e. ``x ⊑ t``); otherwise
        returns the root of ``x``'s tree in the last-arc forest, which by
        Theorem 1 is the true supremum.
        """
        if self._check:
            if t != self.current:
                raise QueryPreconditionError(
                    f"query Sup({x!r}, {t!r}) while traversal is at "
                    f"{self.current!r}"
                )
            if not self.is_known(x):
                raise QueryPreconditionError(
                    f"{x!r} is outside the closure of the current prefix"
                )
        try:
            r = self._uf.find(x)
        except KeyError:
            # Union-find lookup is non-creating; surface the miss as the
            # precondition violation it is, even with checks disabled.
            raise QueryPreconditionError(
                f"{x!r} is outside the closure of the current prefix"
            ) from None
        if self._visited.get(r, False):
            return t
        return r

    def ordered_before(self, x: Hashable, t: Hashable) -> bool:
        """Convenience: ``x ⊑ t``, i.e. ``Sup(x, t) = t``."""
        return self.sup(x, t) == t
