"""Core algorithms of the paper.

* :mod:`repro.core.unionfind` -- labeled disjoint-set forests (S1).
* :mod:`repro.core.traversal` -- traversal model and validity checks (S2).
* :mod:`repro.core.suprema` -- offline suprema, Figure 5 (S3).
* :mod:`repro.core.delayed` -- delayed/relaxed suprema, Figure 8 (S4).
* :mod:`repro.core.detector` -- the 2D race detector, Figure 6 (S5).
* :mod:`repro.core.shadow` -- shadow memory with space accounting.
* :mod:`repro.core.reports` -- race reports.
"""

from repro.core.unionfind import IntUnionFind, UnionFind
from repro.core.suprema import SupremaWalker
from repro.core.delayed import DelayedSupremaWalker
from repro.core.detector import RaceDetector2D
from repro.core.reports import AccessKind, RaceReport

__all__ = [
    "IntUnionFind",
    "UnionFind",
    "SupremaWalker",
    "DelayedSupremaWalker",
    "RaceDetector2D",
    "AccessKind",
    "RaceReport",
]
