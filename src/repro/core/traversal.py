"""Traversals of lattice diagrams: construction helpers and validity checks.

A traversal (Section 3) is a permutation of ``E ∪ {(x, x) | x ∈ V}`` --
arcs interleaved with one loop per vertex -- and the algorithms only work
on *non-separating* traversals (Definition 1: topological + depth-first +
left-to-right) or their *delayed* variants (Definition 3).

This module provides:

* :func:`annotate_last_arcs` -- mark each vertex's last (right-most) arc,
  the only arcs Walk acts on;
* :func:`delay_traversal` -- the ``T -> T'`` transform of Definition 3,
  moving every arc that violates executability (condition (4)) to just
  before its target's loop and leaving a stop-arc behind;
* structural checkers used by the test-suite to certify that generated
  traversals really are (delayed) non-separating.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.errors import TraversalError
from repro.events import Arc, Loop, StopArc, TraversalItem

__all__ = [
    "annotate_last_arcs",
    "last_arc_map",
    "delay_traversal",
    "check_wellformed",
    "check_topological",
    "check_delayed_wellformed",
    "loop_positions",
    "threads_of_delayed",
]


def loop_positions(items: Sequence[TraversalItem]) -> Dict[Hashable, int]:
    """Map each vertex to the index of its loop; error on duplicates."""
    pos: Dict[Hashable, int] = {}
    for i, item in enumerate(items):
        if isinstance(item, Loop):
            if item.vertex in pos:
                raise TraversalError(f"vertex {item.vertex!r} visited twice")
            pos[item.vertex] = i
    return pos


def last_arc_map(items: Sequence[TraversalItem]) -> Dict[Hashable, int]:
    """Map each vertex with outgoing arcs to the index of its last arc.

    The last arc of ``x`` is the *last visited* arc exiting ``x``, which in
    a non-separating traversal of a planar diagram coincides with the
    right-most arc exiting ``x`` (footnote 2 of the paper).
    """
    last: Dict[Hashable, int] = {}
    for i, item in enumerate(items):
        if isinstance(item, Arc):
            last[item.src] = i
    return last


def annotate_last_arcs(items: Iterable[TraversalItem]) -> List[TraversalItem]:
    """Return a copy of ``items`` with ``Arc.last`` flags recomputed."""
    seq = list(items)
    last = last_arc_map(seq)
    out: List[TraversalItem] = []
    for i, item in enumerate(seq):
        if isinstance(item, Arc):
            out.append(Arc(item.src, item.dst, last=(last[item.src] == i)))
        else:
            out.append(item)
    return out


def delay_traversal(
    items: Sequence[TraversalItem],
    reaches: Callable[[Hashable, Hashable], bool],
) -> List[TraversalItem]:
    """Apply the ``T -> T'`` transform of Definition 3.

    An arc ``(s, t)`` must be delayed when some vertex ``x`` with
    ``x ⊏ t`` is visited only after the arc (condition (4)): the arc's
    presence could not have been known at its original position in any
    execution.  Each delayed arc moves to just before ``(t, t)`` (delayed
    arcs of one target keep their relative order) and a stop-arc
    ``(s, ×)`` marks its original place.

    ``reaches(x, t)`` must decide reachability in the underlying digraph.
    In planar monotone diagrams every delayed arc is a last-arc; this is
    asserted because the stop-arc semantics of Figure 8 relies on it.
    """
    seq = annotate_last_arcs(items)
    loops = loop_positions(seq)
    n = len(seq)

    # suffix_vertices[i] = vertices whose loop occurs at index >= i.
    delayed_for: Dict[Hashable, List[Arc]] = {}
    delayed_idx: Set[int] = set()
    # For every arc, check condition (4): exists x with loop after the arc
    # and x ⊏ t.  A linear scan per arc is O(n^2) worst case but this
    # transform is only used on explicit (test-sized) lattices; the online
    # interpreter emits delayed traversals directly.
    loops_sorted = sorted(loops.items(), key=lambda kv: kv[1])
    for i, item in enumerate(seq):
        if not isinstance(item, Arc):
            continue
        t = item.dst
        must_delay = False
        for x, p in loops_sorted:
            if p <= i:
                continue
            if p >= loops[t]:
                break
            if x != t and reaches(x, t):
                must_delay = True
                break
        if must_delay:
            if not item.last:
                raise TraversalError(
                    f"delayed arc {item!r} is not a last-arc; the stop-arc "
                    "semantics of Figure 8 would be unsound"
                )
            delayed_for.setdefault(t, []).append(item)
            delayed_idx.add(i)

    out: List[TraversalItem] = []
    for i, item in enumerate(seq):
        if i in delayed_idx:
            assert isinstance(item, Arc)
            out.append(StopArc(item.src))
        elif isinstance(item, Loop):
            t = item.vertex
            pending = delayed_for.get(t)
            if pending:
                # The paper's T -> T' sketch inserts the delayed arcs
                # before the surviving incoming arcs of t (so the final
                # non-delayed arc (s_n, t) stays adjacent to (t, t)).
                k = len(out)
                while k and isinstance(out[k - 1], Arc) and out[k - 1].dst == t:
                    k -= 1
                out[k:k] = pending
            out.append(item)
        else:
            out.append(item)
    # Every delayed arc occurs twice: once as its stop-arc marker and once
    # in delayed position, so |T'| = |T| + number of delayed arcs.
    assert len(out) == n + len(delayed_idx)
    return out


# ---------------------------------------------------------------------------
# Checkers
# ---------------------------------------------------------------------------


def _arcs(items: Sequence[TraversalItem]) -> List[Tuple[int, Arc]]:
    return [(i, it) for i, it in enumerate(items) if isinstance(it, Arc)]


def check_wellformed(items: Sequence[TraversalItem]) -> None:
    """Check the permutation structure of a (non-delayed) traversal.

    * every vertex has exactly one loop;
    * no stop-arcs;
    * every arc appears exactly once;
    * for every arc ``(s, t)``: ``loop(s) < (s, t) < loop(t)`` (incoming
    arcs before the loop, outgoing after -- the order the paper fixes for
    topological traversals);
    * for every vertex, exactly its final outgoing arc carries ``last``.

    Raises :class:`TraversalError` on the first violation.
    """
    loops = loop_positions(items)
    seen: Set[Tuple[Hashable, Hashable]] = set()
    for i, item in enumerate(items):
        if isinstance(item, StopArc):
            raise TraversalError("stop-arc in a non-delayed traversal")
        if not isinstance(item, Arc):
            continue
        key = (item.src, item.dst)
        if key in seen:
            raise TraversalError(f"arc {item!r} visited twice")
        seen.add(key)
        if item.src not in loops or item.dst not in loops:
            raise TraversalError(f"arc {item!r} touches an unvisited vertex")
        if not loops[item.src] < i < loops[item.dst]:
            raise TraversalError(
                f"arc {item!r} at {i} not between its endpoint loops "
                f"({loops[item.src]}, {loops[item.dst]})"
            )
    last = last_arc_map(items)
    for i, item in _arcs(items):
        if item.last != (last[item.src] == i):
            raise TraversalError(f"wrong last flag on {item!r} at {i}")


def check_topological(
    items: Sequence[TraversalItem],
    reaches: Callable[[Hashable, Hashable], bool],
) -> None:
    """Check the traversal visits vertices in topological order.

    Sufficient given :func:`check_wellformed`: if loops respect the order
    and arcs sit between their endpoint loops, the full condition
    ``(a, x) <= (y, b)`` whenever ``x ⊑ y`` follows.
    """
    order = [it.vertex for it in items if isinstance(it, Loop)]
    for i, x in enumerate(order):
        for y in order[i + 1 :]:
            if reaches(y, x):
                raise TraversalError(
                    f"{y!r} visited after {x!r} but {y!r} reaches {x!r}"
                )


def check_delayed_wellformed(items: Sequence[TraversalItem]) -> None:
    """Structural checks for a *delayed* traversal (Definition 3).

    * every vertex has exactly one loop;
    * every arc ``(s, t)`` satisfies ``loop(s) < (s, t) < loop(t)``;
    * every stop-arc ``(s, ×)`` follows ``loop(s)`` and is matched by a
      later delayed arc exiting ``s``;
    * at most one stop-arc per vertex (a vertex has one last-arc).
    """
    loops = loop_positions(items)
    stop_pos: Dict[Hashable, int] = {}
    for i, item in enumerate(items):
        if isinstance(item, StopArc):
            if item.src in stop_pos:
                raise TraversalError(f"two stop-arcs for {item.src!r}")
            if item.src not in loops or loops[item.src] > i:
                raise TraversalError(f"stop-arc for unvisited {item.src!r}")
            stop_pos[item.src] = i
        elif isinstance(item, Arc):
            if not loops[item.src] < i < loops[item.dst]:
                raise TraversalError(
                    f"arc {item!r} at {i} not between its endpoint loops"
                )
    for s, i in stop_pos.items():
        matched = any(
            isinstance(it, Arc) and it.src == s and j > i
            for j, it in enumerate(items)
        )
        if not matched:
            raise TraversalError(f"stop-arc for {s!r} has no delayed arc")


def threads_of_delayed(items: Sequence[TraversalItem]) -> List[List[Hashable]]:
    """Decompose vertices into threads (Section 4).

    A thread is the vertex set of a maximal path of *non-delayed*
    last-arcs.  For the delayed traversal of Figure 7 this yields
    ``{2} {3} {5} {6} {1,4,7,8,9}``.

    An arc is delayed exactly when a stop-arc for its source occurs
    earlier in the sequence (stop-arcs mark delayed arcs' old positions).
    """
    stopped: Set[Hashable] = set()
    succ: Dict[Hashable, Hashable] = {}
    has_pred: Set[Hashable] = set()
    for item in items:
        if isinstance(item, StopArc):
            stopped.add(item.src)
        elif isinstance(item, Arc) and item.last and item.src not in stopped:
            succ[item.src] = item.dst
            has_pred.add(item.dst)
    threads: List[List[Hashable]] = []
    for item in items:
        if not isinstance(item, Loop):
            continue
        v = item.vertex
        if v in has_pred:
            continue  # interior of some thread
        chain = [v]
        while v in succ:
            v = succ[v]
            chain.append(v)
        threads.append(chain)
    return threads
