"""Labeled disjoint-set forests (union-find).

The Walk routines of Figures 5 and 8 maintain the *last-arc forest* with a
union-find structure whose operations follow the paper's convention:

    ``Union(y, x)`` merges the sets containing ``y`` and ``x`` under the
    **label** of the set containing ``y``; ``Find(x)`` returns the label
    of the set containing ``x``.

Labels are lattice vertices (the roots of last-arc trees) and must be
preserved exactly, which is why they are tracked separately from the
*physical* tree roots: union-by-rank is free to hang either physical root
under the other, as long as the surviving root records the label dictated
by the paper's semantics.

Two implementations are provided:

* :class:`IntUnionFind` -- the fast path over dense integer elements,
  backed by flat Python lists.  This is what the online race detector
  uses, with thread ids as elements.
* :class:`UnionFind` -- a thin wrapper accepting arbitrary hashable
  elements, used by the offline algorithms over lattice vertices.

Both honour two tuning knobs so the union-find ablation benchmark (A1 in
DESIGN.md) can quantify their effect:

* ``path_compression`` -- halve paths during ``find`` (Tarjan).
* ``link_by_rank`` -- union by rank; when off, the ``s``-side root is
  always hung under the ``t``-side root, which degenerates to linear-depth
  trees on adversarial inputs.

With both enabled, a sequence of ``m`` operations over ``n`` elements
costs ``O((m + n) * alpha(m + n, n))`` -- the bound cited by Theorem 3.

Counter semantics
-----------------

``find_count``, ``union_count`` and ``hop_count`` count exactly the
``find``/``union`` calls made by the *algorithm under measurement*:
inspection helpers (:meth:`IntUnionFind.sets`,
:meth:`UnionFind.sets`) walk the forest read-only -- no counter bumps,
no path compression -- so tests and reports can look at the partition
without perturbing the op counts the ablation benchmarks (A1) rely on.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

__all__ = ["IntUnionFind", "UnionFind"]


class IntUnionFind:
    """Disjoint sets over dense integers ``0..n-1`` with set labels.

    Elements are created with :meth:`make` (returning consecutive ids) or
    in bulk via ``IntUnionFind(n)``.  Every new element starts as a
    singleton set labeled by itself.

    The instance counts its operations (``find_count``, ``union_count``,
    ``hop_count``) so benchmarks can report work done rather than guess.
    """

    __slots__ = (
        "_parent",
        "_rank",
        "_label",
        "path_compression",
        "link_by_rank",
        "find_count",
        "union_count",
        "hop_count",
    )

    def __init__(
        self,
        n: int = 0,
        *,
        path_compression: bool = True,
        link_by_rank: bool = True,
    ) -> None:
        self._parent: List[int] = list(range(n))
        self._rank: List[int] = [0] * n
        self._label: List[int] = list(range(n))
        self.path_compression = path_compression
        self.link_by_rank = link_by_rank
        self.find_count = 0
        self.union_count = 0
        self.hop_count = 0

    def __len__(self) -> int:
        return len(self._parent)

    def make(self) -> int:
        """Create a fresh singleton set; return its element id."""
        i = len(self._parent)
        self._parent.append(i)
        self._rank.append(0)
        self._label.append(i)
        return i

    def _root(self, i: int) -> int:
        parent = self._parent
        # Find the physical root.
        r = i
        while parent[r] != r:
            r = parent[r]
            self.hop_count += 1
        if self.path_compression:
            # Second pass: point everything on the path at the root.
            while parent[i] != r:
                parent[i], i = r, parent[i]
        return r

    def find(self, i: int) -> int:
        """Return the *label* of the set containing ``i``."""
        self.find_count += 1
        return self._label[self._root(i)]

    def same_set(self, i: int, j: int) -> bool:
        """True iff ``i`` and ``j`` currently belong to the same set."""
        return self._root(i) == self._root(j)

    def union(self, t: int, s: int) -> int:
        """Merge the sets of ``t`` and ``s``; keep the label of ``t``'s set.

        Returns the surviving label.  Merging an element with itself (or
        two elements already in one set) only rewrites the label, matching
        the paper's ``Union(t, s)`` on a self last-arc being a no-op.
        """
        self.union_count += 1
        rt = self._root(t)
        rs = self._root(s)
        label = self._label[rt]
        if rt == rs:
            return label
        if self.link_by_rank:
            if self._rank[rt] < self._rank[rs]:
                rt, rs = rs, rt
            elif self._rank[rt] == self._rank[rs]:
                self._rank[rt] += 1
        self._parent[rs] = rt
        self._label[rt] = label
        return label

    def bind_metrics(
        self, registry, labels: Optional[Dict[str, str]] = None, *, prefix: str = "unionfind"
    ) -> None:
        """Expose the op counters through a metrics registry.

        Registers pull-gauges (``<prefix>_finds`` / ``_unions`` /
        ``_hops`` / ``_elements``) that read the live counters at
        snapshot time -- the hot-path attributes stay plain ints, the
        registry is the one place consumers look them up.
        """
        from repro.obs.bind import bind_union_find

        bind_union_find(registry, self, labels, prefix=prefix)

    def sets(self) -> Dict[int, List[int]]:
        """Return the current partition as ``{label: sorted members}``.

        Intended for tests and debugging; costs a full pass.  The walk
        is strictly read-only: it neither bumps ``find_count`` /
        ``hop_count`` nor compresses paths, so inspecting the partition
        cannot perturb the measurements a benchmark is accumulating.
        """
        parent = self._parent
        label = self._label
        out: Dict[int, List[int]] = {}
        for i in range(len(parent)):
            r = i
            while parent[r] != r:
                r = parent[r]
            out.setdefault(label[r], []).append(i)
        return out


class UnionFind:
    """Labeled union-find over arbitrary hashable elements.

    A convenience wrapper around :class:`IntUnionFind`.  Only the
    *mutating* entry points -- :meth:`add` and :meth:`union` -- intern
    unseen elements as fresh singletons, which matches how the Walk
    routines encounter lattice vertices lazily along a traversal.
    Queries (:meth:`find`, :meth:`same_set`) are non-creating: asking
    about an element that was never added raises :class:`KeyError`
    instead of silently inventing a singleton whose bogus answer would
    also corrupt later :meth:`sets` output.
    """

    __slots__ = ("_ids", "_elems", "_uf")

    def __init__(
        self,
        *,
        path_compression: bool = True,
        link_by_rank: bool = True,
    ) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._elems: List[Hashable] = []
        self._uf = IntUnionFind(
            path_compression=path_compression, link_by_rank=link_by_rank
        )

    def __len__(self) -> int:
        return len(self._elems)

    def __contains__(self, x: Hashable) -> bool:
        return x in self._ids

    @property
    def stats(self) -> IntUnionFind:
        """The underlying integer structure (exposes the op counters)."""
        return self._uf

    def _intern(self, x: Hashable) -> int:
        i = self._ids.get(x)
        if i is None:
            i = self._uf.make()
            self._ids[x] = i
            self._elems.append(x)
        return i

    def _id_of(self, x: Hashable) -> int:
        try:
            return self._ids[x]
        except KeyError:
            raise KeyError(
                f"{x!r} was never added to this union-find"
            ) from None

    def add(self, x: Hashable) -> None:
        """Ensure ``x`` exists as a singleton set (idempotent)."""
        self._intern(x)

    def find(self, x: Hashable) -> Hashable:
        """Return the label of the set containing ``x``.

        Raises :class:`KeyError` when ``x`` was never :meth:`add`-ed or
        :meth:`union`-ed -- lookup never creates elements.
        """
        return self._elems[self._uf.find(self._id_of(x))]

    def same_set(self, x: Hashable, y: Hashable) -> bool:
        """True iff ``x`` and ``y`` currently belong to the same set.

        Like :meth:`find`, raises :class:`KeyError` on unseen elements.
        """
        return self._uf.same_set(self._id_of(x), self._id_of(y))

    def union(self, t: Hashable, s: Hashable) -> Hashable:
        """Merge the sets of ``t`` and ``s`` under the label of ``t``'s set."""
        return self._elems[self._uf.union(self._intern(t), self._intern(s))]

    def bind_metrics(
        self, registry, labels: Optional[Dict[str, str]] = None, *, prefix: str = "unionfind"
    ) -> None:
        """Expose the inner structure's op counters through a registry
        (see :meth:`IntUnionFind.bind_metrics`)."""
        self._uf.bind_metrics(registry, labels, prefix=prefix)

    def sets(self) -> Dict[Hashable, List[Hashable]]:
        """Current partition as ``{label: members}`` (test helper)."""
        out: Dict[Hashable, List[Hashable]] = {}
        for label_id, members in self._uf.sets().items():
            out[self._elems[label_id]] = [self._elems[m] for m in members]
        return out
