"""Relaxed suprema along *delayed* non-separating traversals (Figure 8).

A true non-separating traversal may have to visit an arc ``(s, t)`` before
the execution could possibly know that ``t`` exists (Section 4, condition
(4)).  Delayed traversals move such arcs to just before their target's
loop and leave a *stop-arc* ``(s, ×)`` at the original position.

The algorithm is the one from Figure 5 with a single extra rule:

    on a stop-arc ``(s, ×)``, mark ``s`` as **unvisited**.

From that point on the root ``s`` is observationally equivalent to the
not-yet-determined supremum it stands for, which is exactly what the
relaxed query semantics (6)-(7) requires (Theorem 4):

* ``Sup(x, t) = t  ⟺  x ⊑ t``;
* ``Sup(Sup(x, y), t) = t  ⟺  Sup(x, t) = t and Sup(y, t) = t``.

Answers different from ``t`` need *not* be true suprema -- they are
placeholders that compare like the supremum in all later queries, which
is all the race detector of Figure 6 ever does with them.
"""

from __future__ import annotations

from repro.core.suprema import SupremaWalker
from repro.events import StopArc

__all__ = ["DelayedSupremaWalker"]


class DelayedSupremaWalker(SupremaWalker):
    """:class:`SupremaWalker` extended with stop-arc handling (Figure 8).

    Also tolerates *repeated* loops on the same vertex, which is how the
    thread-compressed traversals of Section 4 (transformation (8)) appear:
    each program step of a thread re-visits that thread's vertex.
    """

    def _on_stop_arc(self, item: StopArc) -> None:
        # Walk lines 7-8: the vertex starts impersonating the supremum that
        # its delayed last-arc will eventually reveal.
        self._uf.add(item.src)
        self._visited[item.src] = False
