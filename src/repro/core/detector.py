"""The 2D-lattice race detector (Figure 6 over Figure 8, thread-compressed).

This is the paper's headline artifact: an online race detector for
programs whose task graphs are two-dimensional lattices, running in

* **Θ(1) space per tracked memory location** -- two thread names, the
  suprema of the location's read and write histories;
* **Θ(1) space per thread** -- a union-find node plus a visited flag;
* **Θ(α(m+n, n)) amortised time per operation** (Theorem 5).

The detector consumes the event stream of a *serial fork-first* execution
of a structured fork-join program (Section 5).  Each event maps to the
traversal items of the delayed non-separating traversal exactly as the
paper's emission rules prescribe:

========================  ==============================================
event                     traversal items / Walk actions
========================  ==============================================
``fork(x, y)``            loop ``(x, x)`` then arc ``(x, y)`` -- mark
                          ``x`` visited (the fork vertex is visited);
                          the fork arc is never a last-arc
``step/read/write by x``  loop ``(x, x)`` -- mark visited, run queries
``join(x, y)``            last-arc ``(y, x)`` then loop ``(x, x)`` --
                          ``Union(x, y)``, mark ``x`` visited
``halt(x)``               stop-arc ``(x, ×)`` -- unmark ``x``
========================  ==============================================

(Every transition of a task is a vertex of the task graph, so each
event carries the loop of its own vertex in compressed form -- the
visited flag of a *running* thread is therefore true from its first
transition on, and only the halt stop-arc clears it.)

Race checks follow Figure 6 with the prose semantics of Section 2.3 (a
read is checked against the *write* supremum; the figure as printed says
``R`` -- see "Known erratum" in DESIGN.md.  Pass
``paper_figure6_literal=True`` to get the printed behaviour, which
additionally flags concurrent read pairs.)
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.core.unionfind import IntUnionFind
from repro.errors import DetectorError
from repro.events import Location

__all__ = ["RaceDetector2D", "detect_races"]


def detect_races(body, *args, **run_kwargs):
    """One-call monitoring: run ``body`` and return its race reports.

    Convenience wrapper equivalent to attaching a fresh
    :class:`RaceDetector2D` to :func:`repro.forkjoin.run`::

        races = detect_races(main)
        if races:
            print(races[0])

    Extra keyword arguments are forwarded to ``run`` (e.g.
    ``max_ops=...``).  Returns the list of
    :class:`~repro.core.reports.RaceReport` (empty = no races, and by
    the paper's soundness guarantee the execution really was
    deterministic from this input state).
    """
    from repro.forkjoin.interpreter import run

    detector = RaceDetector2D()
    run(body, *args, observers=[detector], **run_kwargs)
    return detector.races


def _cell_entries(cell: List[Optional[int]]) -> int:
    return (cell[0] is not None) + (cell[1] is not None)


class RaceDetector2D:
    """Online suprema-based race detector for 2D-lattice task graphs.

    Drive it with the lifecycle/memory callbacks below; read detected
    races from :attr:`races`.  Thread ids are dense integers handed out
    by :meth:`spawn_root` and :meth:`on_fork` (transformation (8): the
    detector does bookkeeping per *thread*, not per operation).

    Parameters
    ----------
    paper_figure6_literal:
        Implement ``On-Read`` exactly as printed in Figure 6 (compare the
        read against the read supremum) instead of the prose semantics
        (compare against the write supremum).  Only useful to study the
        erratum; defaults to ``False``.
    path_compression / link_by_rank:
        Union-find ablation knobs (see :mod:`repro.core.unionfind`).
    epoch_cache:
        Allow the batch kernel (:mod:`repro.engine.ingest`) to keep a
        per-location *access epoch* -- the last ``(task, kind)`` whose
        access was race-free and folded the supremum to the task itself
        -- and skip the union-find ``Sup`` queries when the same task
        repeats the same kind of access (FastTrack's same-epoch check,
        sound here because ``x`` ⊑ ``t`` is monotone: once a location's
        history is ordered before a live task it stays ordered).  The
        cache changes no verdicts and no shadow state, only the number
        of ``find`` calls; pass ``False`` to get union-find operation
        counts bit-identical to the per-event methods (the ablation
        experiments want the exact Figure-8 profile).

    Example
    -------
    >>> d = RaceDetector2D()
    >>> main = d.spawn_root()
    >>> child = d.on_fork(main)
    >>> d.on_write(child, "x")
    >>> d.on_halt(child)
    >>> d.on_write(main, "x")      # concurrent with child's write
    >>> len(d.races)
    1
    >>> d.on_join(main, child)
    """

    def __init__(
        self,
        *,
        paper_figure6_literal: bool = False,
        path_compression: bool = True,
        link_by_rank: bool = True,
        epoch_cache: bool = True,
    ) -> None:
        self._uf = IntUnionFind(
            path_compression=path_compression, link_by_rank=link_by_rank
        )
        self._visited: List[bool] = []
        self._halted: List[bool] = []
        self._joined: List[bool] = []
        self._literal = paper_figure6_literal
        #: batch-kernel access-epoch cache: location id -> encoded
        #: ``(task, kind)`` of the last clean access (``None`` disables)
        self._epoch: Optional[dict] = {} if epoch_cache else None
        #: per-location cells ``[read_sup, write_sup]``
        self.shadow: ShadowMap[List[Optional[int]]] = ShadowMap(_cell_entries)
        #: all reports, in detection order (precise up to the first one)
        self.races: List[RaceReport] = []
        self.op_index = 0

    # -- lifecycle events ----------------------------------------------------

    @property
    def thread_count(self) -> int:
        """Number of threads ever created."""
        return len(self._visited)

    @property
    def unionfind(self) -> IntUnionFind:
        """Underlying union-find (exposes operation counters)."""
        return self._uf

    def spawn_root(self) -> int:
        """Create the initial task of a program; return its thread id."""
        return self._new_thread()

    def on_root(self, root: int) -> None:
        """Interpreter-protocol alias for :meth:`spawn_root`.

        Checks that the externally assigned root id matches the dense id
        the detector allocates (both sides count tasks in creation
        order, root first).
        """
        tid = self._new_thread()
        if tid != root:
            raise DetectorError(
                f"root id mismatch: interpreter says {root}, detector "
                f"allocated {tid}"
            )

    def _new_thread(self) -> int:
        tid = self._uf.make()
        self._visited.append(False)
        self._halted.append(False)
        self._joined.append(False)
        return tid

    def _check_alive(self, t: int) -> None:
        if t >= len(self._halted) or t < 0:
            raise DetectorError(f"unknown thread id {t}")
        if self._halted[t]:
            raise DetectorError(f"thread {t} already halted")

    def on_fork(self, parent: int, child: Optional[int] = None) -> int:
        """``parent`` forks a new task; returns the child's thread id.

        Emits the fork arc ``(parent, child)``, which is never a last-arc,
        so no union-find work happens (Walk ignores non-last arcs).
        When ``child`` is supplied (interpreter protocol) it must match
        the dense id the detector allocates.
        """
        self._check_alive(parent)
        self.op_index += 1
        # The fork transition is itself a task-graph vertex of `parent`,
        # so its loop compresses to (parent, parent): mark visited.
        self._visited[parent] = True
        tid = self._new_thread()
        if child is not None and child != tid:
            raise DetectorError(
                f"fork id mismatch: interpreter says {child}, detector "
                f"allocated {tid}"
            )
        return tid

    def on_step(self, t: int) -> None:
        """``t`` performs a local step: the loop ``(t, t)`` -- mark visited."""
        self._check_alive(t)
        self.op_index += 1
        self._visited[t] = True

    def on_join(self, joiner: int, joined: int) -> None:
        """``joiner`` joins the halted task ``joined``.

        Emits the delayed last-arc ``(joined, joiner)``:
        ``Union(joiner, joined)`` merges the joined task's tree under the
        joiner's set label, so everything that happened-before the joined
        task's end is now ordered before the joiner's future operations.
        """
        self._check_alive(joiner)
        if not self._halted[joined]:
            raise DetectorError(f"joining running thread {joined}")
        if self._joined[joined]:
            raise DetectorError(f"thread {joined} joined twice")
        self._joined[joined] = True
        self.op_index += 1
        self._uf.union(joiner, joined)
        # The join transition is a vertex of `joiner` (visited right
        # after the delayed last-arc): everything now in the joiner's
        # set is ordered before the joiner's future operations.
        self._visited[joiner] = True

    def on_halt(self, t: int) -> None:
        """``t`` terminates: the stop-arc ``(t, ×)`` -- un-mark ``t``.

        From now on ``t`` (as a last-arc forest root) impersonates the
        still-unknown supremum that the future join arc will create.
        """
        self._check_alive(t)
        self.op_index += 1
        self._halted[t] = True
        self._visited[t] = False

    # -- the Sup query (Figure 8 right) ---------------------------------------

    def sup(self, x: int, t: int) -> int:
        """Relaxed supremum query: ``t`` iff ``x ⊑ t``, else a placeholder
        that behaves like ``sup{x, t}`` in all later queries."""
        r = self._uf.find(x)
        if self._visited[r]:
            return t
        return r

    def ordered(self, x: int, t: int) -> bool:
        """Whether ``x``'s tracked history is ordered before current ``t``."""
        return self.sup(x, t) == t

    # -- memory accesses (Figure 6) -------------------------------------------

    def _cell(self, loc: Location) -> List[Optional[int]]:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = [None, None]
            self.shadow.put(loc, cell)
        return cell

    def _report(
        self,
        loc: Location,
        t: int,
        kind: AccessKind,
        prior_kind: AccessKind,
        prior_repr: int,
        label: str,
    ) -> None:
        self.races.append(
            RaceReport(
                loc=loc,
                task=t,
                kind=kind,
                prior_kind=prior_kind,
                prior_repr=prior_repr,
                op_index=self.op_index,
                label=label,
            )
        )

    def on_read(self, t: int, loc: Location, label: str = "") -> None:
        """``t`` reads ``loc``: check against the write supremum, fold the
        read into the read supremum (``R[loc] <- Sup(R[loc], t)``)."""
        self._check_alive(t)
        self.op_index += 1
        self._visited[t] = True
        ep = self._epoch
        if ep:
            # Keep the batch kernel's epoch cache coherent when the two
            # driving styles are mixed on one detector instance.
            ep.pop(loc, None)
        cell = self._cell(loc)
        if self._literal:
            # Figure 6 exactly as printed: compare against R, update R.
            r = cell[0]
            if r is not None and self.sup(r, t) != t:
                self._report(loc, t, AccessKind.READ, AccessKind.READ, r, label)
            cell[0] = t if r is None else self.sup(r, t)
            self.shadow.touch(loc)
            return
        w = cell[1]
        if w is not None and self.sup(w, t) != t:
            self._report(loc, t, AccessKind.READ, AccessKind.WRITE, w, label)
        r = cell[0]
        cell[0] = t if r is None else self.sup(r, t)
        self.shadow.touch(loc)

    def on_write(self, t: int, loc: Location, label: str = "") -> None:
        """``t`` writes ``loc``: check against both suprema, fold the write
        into the write supremum (``W[loc] <- Sup(W[loc], t)``)."""
        self._check_alive(t)
        self.op_index += 1
        self._visited[t] = True
        ep = self._epoch
        if ep:
            ep.pop(loc, None)
        cell = self._cell(loc)
        r, w = cell
        if r is not None and self.sup(r, t) != t:
            self._report(loc, t, AccessKind.WRITE, AccessKind.READ, r, label)
        elif w is not None and self.sup(w, t) != t:
            self._report(loc, t, AccessKind.WRITE, AccessKind.WRITE, w, label)
        cell[1] = t if w is None else self.sup(w, t)
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def space_per_location(self) -> int:
        """Peak shadow entries used by any single location (always <= 2)."""
        return self.shadow.peak_entries_per_loc

    def space_per_thread(self) -> int:
        """Word entries per thread: parent + rank + label + visited +
        halted + joined = 6, independent of anything (Θ(1))."""
        return 6
