"""Race reports produced by the detectors.

A dynamic race detector flags the *current* operation when it conflicts
with some earlier, unordered operation.  Detectors that summarise access
history (this paper's suprema, SP-bags' bags, FastTrack's epochs) cannot
always name the exact earlier access -- the stored representative may even
be an operation on a different location (Section 2.3: ``sup K`` need not
access the same memory as ``K``).  Reports therefore carry the
*representative* of the conflicting history rather than a concrete prior
access, plus whatever labels the monitored program attached.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Optional

__all__ = ["AccessKind", "RaceReport"]


class AccessKind(enum.Enum):
    """Kind of a memory access."""

    READ = "read"
    WRITE = "write"

    def conflicts_with(self, other: "AccessKind") -> bool:
        """Two accesses conflict unless both are reads."""
        return self is AccessKind.WRITE or other is AccessKind.WRITE


@dataclass(frozen=True, slots=True)
class RaceReport:
    """One detected race.

    Attributes
    ----------
    loc:
        The memory location the race is on.
    task:
        The task performing the current (flagged) access.
    kind:
        Kind of the current access.
    prior_kind:
        Kind of the conflicting history (``READ`` when the current write
        races with earlier reads, ``WRITE`` otherwise).
    prior_repr:
        The representative of the conflicting history -- for the 2D
        detector the stored supremum thread; for vector clocks the thread
        owning the unordered clock entry.  ``None`` when the detector
        cannot name one.
    op_index:
        Global index of the flagged operation in the event stream, when
        driven by the interpreter (else -1).
    label:
        Source label of the flagged operation, when the program supplied
        one.
    """

    loc: Hashable
    task: int
    kind: AccessKind
    prior_kind: AccessKind
    prior_repr: Optional[Hashable] = None
    op_index: int = -1
    label: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = f" at {self.label}" if self.label else ""
        return (
            f"race on {self.loc!r}: task {self.task} {self.kind.value}s{where}, "
            f"unordered with prior {self.prior_kind.value} history "
            f"(representative {self.prior_repr!r})"
        )
