"""Shadow memory with space accounting.

Every detector keeps per-location metadata ("shadow cells").  The whole
point of the paper is the *size* of those cells: Θ(1) for the 2D detector
(two vertex names) versus Θ(n) for vector-clock detectors.  To make that
measurable rather than anecdotal, all detectors in this repository store
their per-location state in a :class:`ShadowMap`, which can report the
current and peak number of machine-word entries per location.

The accounting unit is "entries" -- conceptual machine words -- rather
than Python object bytes, because CPython object overhead would drown the
asymptotic signal the benchmarks are after (see DESIGN.md, experiment T5).
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Hashable, Iterator, Optional, Tuple, TypeVar

__all__ = ["ShadowMap"]

C = TypeVar("C")


class ShadowMap(Generic[C]):
    """A ``location -> cell`` map that tracks per-location entry counts.

    Parameters
    ----------
    cell_entries:
        Callable returning the number of word-sized entries a cell
        occupies.  It is re-evaluated on every update of that location so
        growth (e.g. a vector clock widening) is captured.
    """

    __slots__ = ("_cells", "_entries", "_cell_entries", "peak_entries_per_loc")

    def __init__(self, cell_entries: Callable[[C], int]) -> None:
        self._cells: Dict[Hashable, C] = {}
        self._entries: Dict[Hashable, int] = {}
        self._cell_entries = cell_entries
        #: the largest entry count ever observed for a single location
        self.peak_entries_per_loc = 0

    def __len__(self) -> int:
        return len(self._cells)

    def __contains__(self, loc: Hashable) -> bool:
        return loc in self._cells

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._cells)

    def get(self, loc: Hashable) -> Optional[C]:
        """Return the cell for ``loc`` or ``None``."""
        return self._cells.get(loc)

    def put(self, loc: Hashable, cell: C) -> None:
        """Store ``cell`` for ``loc`` and refresh its space accounting."""
        self._cells[loc] = cell
        n = self._cell_entries(cell)
        self._entries[loc] = n
        if n > self.peak_entries_per_loc:
            self.peak_entries_per_loc = n

    def touch(self, loc: Hashable) -> None:
        """Re-run the accounting for ``loc`` after an in-place cell update."""
        cell = self._cells[loc]
        n = self._cell_entries(cell)
        self._entries[loc] = n
        if n > self.peak_entries_per_loc:
            self.peak_entries_per_loc = n

    def items(self) -> Iterator[Tuple[Hashable, C]]:
        return iter(self._cells.items())

    # -- accounting ---------------------------------------------------------

    def total_entries(self) -> int:
        """Sum of entries across all locations (current, not peak)."""
        return sum(self._entries.values())

    def max_entries_per_loc(self) -> int:
        """Largest current per-location entry count (0 when empty)."""
        return max(self._entries.values(), default=0)

    def mean_entries_per_loc(self) -> float:
        """Average current per-location entry count (0.0 when empty)."""
        if not self._entries:
            return 0.0
        return self.total_entries() / len(self._entries)
