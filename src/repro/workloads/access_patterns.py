"""Memory-location patterns used by the workload generators.

A *pattern* is a callable ``pattern(task, op, rng) -> location`` that
decides which location an access touches.  Patterns control how much
sharing (and therefore how many potential races) a workload exhibits:

* :func:`private` -- every task touches only its own locations; always
  race-free regardless of structure;
* :func:`striped` -- locations partitioned round-robin over a fixed pool;
  races depend on which tasks share a stripe and how they synchronise;
* :func:`uniform_shared` -- every access picks uniformly from a shared
  pool; races are likely wherever structure permits;
* :func:`hot_spot` -- a biased mix of one hot location and a cold pool.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable

__all__ = ["Pattern", "private", "striped", "uniform_shared", "hot_spot"]

Pattern = Callable[[int, int, random.Random], Hashable]


def private() -> Pattern:
    """Each task uses its own location family ``("prv", task, slot)``."""

    def pattern(task: int, op: int, rng: random.Random) -> Hashable:
        return ("prv", task, op % 4)

    return pattern


def striped(n_locations: int) -> Pattern:
    """Tasks hash onto a fixed pool of ``n_locations`` stripes."""

    def pattern(task: int, op: int, rng: random.Random) -> Hashable:
        return ("stripe", (task * 31 + op) % n_locations)

    return pattern


def uniform_shared(n_locations: int) -> Pattern:
    """Every access draws uniformly from a shared pool."""

    def pattern(task: int, op: int, rng: random.Random) -> Hashable:
        return ("shared", rng.randrange(n_locations))

    return pattern


def hot_spot(n_locations: int, hot_probability: float = 0.5) -> Pattern:
    """A single hot location plus a uniform cold pool."""

    def pattern(task: int, op: int, rng: random.Random) -> Hashable:
        if rng.random() < hot_probability:
            return ("hot", 0)
        return ("cold", rng.randrange(n_locations))

    return pattern
