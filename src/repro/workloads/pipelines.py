"""Linear-pipeline workloads (the paper's motivating 2D application).

Builders return ``(items, stages)`` pairs for
:func:`repro.forkjoin.pipeline.run_pipeline`.  Three canonical shapes:

* :func:`clean_pipeline` -- each stage reads the previous stage's
  per-item buffer and writes its own; a shared accumulator is touched
  only at a single (serialised) stage.  Race-free.
* :func:`racy_pipeline` -- additionally, one configurable *early* stage
  writes a shared location that a *later* stage reads; stage ``i`` of
  item ``j+1`` runs concurrently with stage ``i+1`` of item ``j``, so
  this races.
* :func:`shared_counter_pipeline` -- every stage bumps one global
  counter (read+write).  Accesses from different stages of different
  items are unordered: heavily racy, and the worst case for vector-clock
  shadow growth (every task ends up in the location's read vector).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Sequence, Tuple

from repro.forkjoin.program import read as _read, step as _step, write as _write

__all__ = [
    "clean_pipeline",
    "racy_pipeline",
    "shared_counter_pipeline",
    "read_shared_pipeline",
]

Stage = Callable[[Any, int], Iterator]
Workload = Tuple[List[Any], List[Stage]]


def _buffer(stage: int, item_index: int) -> Tuple[str, int, int]:
    return ("buf", stage, item_index)


def clean_pipeline(
    n_items: int, n_stages: int, work_per_stage: int = 1
) -> Workload:
    """A race-free pipeline: per-item buffers plus a serialised reducer.

    Stage ``i`` reads ``buf[i-1][j]`` and writes ``buf[i][j]``; the last
    stage also folds into a single shared accumulator, which is safe
    because a serial stage is totally ordered across items.
    """
    last = n_stages - 1

    def make_stage(i: int) -> Stage:
        def stage(item: Any, j: int) -> Iterator:
            if i > 0:
                yield _read(_buffer(i - 1, j))
            for _ in range(work_per_stage):
                yield _step()
            yield _write(_buffer(i, j))
            if i == last:
                yield _read(("acc",))
                yield _write(("acc",))

        stage.__name__ = f"stage{i}"
        return stage

    return list(range(n_items)), [make_stage(i) for i in range(n_stages)]


def racy_pipeline(
    n_items: int,
    n_stages: int,
    writer_stage: int = 0,
    reader_stage: int = -1,
    work_per_stage: int = 1,
) -> Workload:
    """A clean pipeline plus one cross-stage shared cell.

    ``writer_stage`` writes ``("leak",)`` and ``reader_stage`` reads it.
    With ``writer_stage < reader_stage`` (in stage order) the write of
    item ``j+1`` is unordered with the read of item ``j`` -- a genuine
    race on every adjacent item pair.
    """
    if reader_stage < 0:
        reader_stage += n_stages
    items, stages = clean_pipeline(n_items, n_stages, work_per_stage)

    def wrap(i: int, inner: Stage) -> Stage:
        def stage(item: Any, j: int) -> Iterator:
            if i == writer_stage:
                yield _write(("leak",), label=f"leak-write@stage{i}")
            result = yield from inner(item, j)
            if i == reader_stage:
                yield _read(("leak",), label=f"leak-read@stage{i}")
            return result

        stage.__name__ = f"racy_stage{i}"
        return stage

    return items, [wrap(i, s) for i, s in enumerate(stages)]


def shared_counter_pipeline(n_items: int, n_stages: int) -> Workload:
    """Every cell increments one global counter -- maximal read sharing.

    This is the adversarial case for epoch-based detectors: the counter
    location becomes read-shared across *all* tasks, inflating
    FastTrack's read vector to Θ(n) while the 2D detector stays at two
    entries.
    """

    def make_stage(i: int) -> Stage:
        def stage(item: Any, j: int) -> Iterator:
            if i > 0:
                yield _read(_buffer(i - 1, j))
            yield _read(("counter",))
            yield _write(("counter",))
            yield _write(_buffer(i, j))

        stage.__name__ = f"counter_stage{i}"
        return stage

    return list(range(n_items)), [make_stage(i) for i in range(n_stages)]


def read_shared_pipeline(n_items: int, n_stages: int) -> Workload:
    """Race-free pipeline in which every cell reads one config location.

    The very first cell (stage 0 of item 0) writes ``("config",)``,
    which is ordered before every other cell in the grid, so all the
    subsequent reads are safe -- yet pairwise *concurrent* with each
    other.  This is the paper's headline space scenario: a vector-clock
    detector accumulates one read entry per task on the config location
    (Θ(n) per location), FastTrack inflates its read epoch to a full
    vector, while the 2D detector's ``R[config]`` stays a single vertex
    name.
    """

    def make_stage(i: int) -> Stage:
        def stage(item: Any, j: int) -> Iterator:
            if i == 0 and j == 0:
                yield _write(("config",), label="init-config")
            if i > 0:
                yield _read(_buffer(i - 1, j))
            yield _read(("config",))
            yield _write(_buffer(i, j))

        stage.__name__ = f"shared_read_stage{i}"
        return stage

    return list(range(n_items)), [make_stage(i) for i in range(n_stages)]
