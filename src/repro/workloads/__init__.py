"""Workload generators for tests and benchmarks.

* :mod:`repro.workloads.synthetic` -- random structured fork-join
  programs (the library's stand-in for "real parallel tasks to
  monitor"; see the substitution note in DESIGN.md);
* :mod:`repro.workloads.pipelines` -- linear-pipeline workloads with
  configurable stages, per-item buffers, shared state and seeded races;
* :mod:`repro.workloads.spworkloads` -- spawn-sync (divide-and-conquer,
  map-reduce) workloads for the SP-only baselines;
* :mod:`repro.workloads.access_patterns` -- memory-location pattern
  helpers shared by the generators.
"""

from repro.workloads.synthetic import SyntheticConfig, random_program, race_free_program
from repro.workloads.pipelines import (
    clean_pipeline,
    racy_pipeline,
    shared_counter_pipeline,
)
from repro.workloads.spworkloads import (
    divide_and_conquer,
    racy_divide_and_conquer,
    map_reduce,
)
from repro.workloads.racegen import (
    INJECTED_LOC,
    bulk_access_program,
    conflicting_pair_program,
    with_injected_race,
)
from repro.workloads.wavefront import (
    blocked_wavefront,
    wavefront,
    wavefront_with_bug,
)

__all__ = [
    "INJECTED_LOC",
    "bulk_access_program",
    "conflicting_pair_program",
    "with_injected_race",
    "wavefront",
    "wavefront_with_bug",
    "blocked_wavefront",
    "SyntheticConfig",
    "random_program",
    "race_free_program",
    "clean_pipeline",
    "racy_pipeline",
    "shared_counter_pipeline",
    "divide_and_conquer",
    "racy_divide_and_conquer",
    "map_reduce",
]
