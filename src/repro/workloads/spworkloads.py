"""Spawn-sync (series-parallel) workloads for the SP-only baselines.

These exercise the bracketed sub-discipline of Section 5's construction
(11): every task joins exactly its own spawned children, so the task
graphs are series-parallel and SP-bags applies.  The same programs also
run under the 2D detector, which must agree (experiment C3).
"""

from __future__ import annotations

from typing import Hashable, Tuple

from repro.forkjoin.program import read as _read, write as _write
from repro.forkjoin.spawn_sync import cilk

__all__ = [
    "divide_and_conquer",
    "racy_divide_and_conquer",
    "map_reduce",
]


def divide_and_conquer(depth: int, fanout: int = 2):
    """Race-free parallel divide-and-conquer (mergesort-shaped).

    Each node spawns ``fanout`` children over disjoint key ranges,
    syncs, then combines the children's outputs into its own -- reads of
    child cells happen strictly after the sync, so everything is
    ordered.  Creates ``(fanout^(depth+1) - 1) / (fanout - 1)`` tasks.
    """

    @cilk
    def node(ctx, path: Tuple[int, ...] = ()):
        if len(path) >= depth:
            yield _write(("cell", path))
            return
        for k in range(fanout):
            yield from ctx.spawn(node, path + (k,))
        yield from ctx.sync()
        for k in range(fanout):
            yield _read(("cell", path + (k,)))
        yield _write(("cell", path))

    return node


def racy_divide_and_conquer(depth: int, fanout: int = 2):
    """Divide-and-conquer with the sync moved *after* the combine.

    The parent reads its children's cells before syncing -- the classic
    forgotten-sync bug.  Every such read races with the corresponding
    child write.
    """

    @cilk
    def node(ctx, path: Tuple[int, ...] = ()):
        if len(path) >= depth:
            yield _write(("cell", path))
            return
        for k in range(fanout):
            yield from ctx.spawn(node, path + (k,))
        for k in range(fanout):  # BUG: reads before sync
            yield _read(("cell", path + (k,)), label=f"early-read{k}")
        yield from ctx.sync()
        yield _write(("cell", path))

    return node


def map_reduce(n_workers: int, items_per_worker: int = 4):
    """Flat map-reduce: spawn workers over disjoint slices, then reduce.

    Workers read a shared immutable input descriptor (read-shared
    location) and write private output slots; the parent reduces after
    the sync.  Race-free; the read sharing stresses vector-clock space.
    """

    def worker_loc(w: int, i: int) -> Hashable:
        return ("out", w, i)

    @cilk
    def worker(ctx, w: int):
        for i in range(items_per_worker):
            yield _read(("input",))
            yield _write(worker_loc(w, i))

    @cilk
    def driver(ctx):
        yield _write(("input",), label="publish-input")
        for w in range(n_workers):
            yield from ctx.spawn(worker, w)
        yield from ctx.sync()
        for w in range(n_workers):
            for i in range(items_per_worker):
                yield _read(worker_loc(w, i))
        yield _write(("result",))

    return driver
