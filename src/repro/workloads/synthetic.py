"""Random structured fork-join programs.

The paper's detector needs a stream of fork/join/access events from a
structured program; since no real parallel corpus is available offline,
these generators produce arbitrarily large *valid* programs under the
Figure 9 discipline, exercising the full generality of 2D lattices
(tasks may leave forked-but-unjoined children behind for their joiner to
consume -- the construct that takes task graphs beyond series-parallel).

Validity is maintained with a *credit* argument: a task may ``join_left``
only while it has credit, where credit counts the tasks currently to its
left that belong to it -- children it forked plus leftovers absorbed
from tasks it joined.  A task may halt with positive credit (leaving
leftovers) only when its joiner can absorb them; the root always drains
its credit so the execution ends fully joined (single-sink task graph).

All randomness flows through one seeded :class:`random.Random`, so a
``SyntheticConfig`` is a complete, reproducible description of a
workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, Optional

from repro.forkjoin.program import (
    fork as _fork,
    join_left as _join_left,
    read as _read,
    write as _write,
)
from repro.workloads.access_patterns import Pattern, uniform_shared

__all__ = ["SyntheticConfig", "random_program", "race_free_program"]


@dataclass
class SyntheticConfig:
    """Parameters of a random structured fork-join program.

    Attributes
    ----------
    seed: RNG seed; same config => same program => same event stream.
    max_tasks: hard cap on created tasks (the generator stops forking
        once reached).
    max_depth: cap on fork nesting depth.
    ops_per_task: accesses/forks/joins attempted per task body.
    fork_probability: chance an action slot tries to fork.
    join_probability: chance an action slot joins (when credit > 0).
    write_ratio: fraction of memory accesses that are writes.
    leftover_probability: chance a non-root task halts without joining
        its remaining credit (producing non-SP shapes).
    n_locations: size of the shared location pool.
    pattern: access pattern; defaults to a uniform shared pool.
    """

    seed: int = 0
    max_tasks: int = 64
    max_depth: int = 8
    ops_per_task: int = 6
    fork_probability: float = 0.3
    join_probability: float = 0.2
    write_ratio: float = 0.4
    leftover_probability: float = 0.3
    n_locations: int = 16
    pattern: Optional[Pattern] = None


class _State:
    """Mutable per-run bookkeeping shared by all task bodies."""

    __slots__ = ("rng", "tasks_created", "leftovers")

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.tasks_created = 1  # the root
        self.leftovers: Dict[int, int] = {}


def _task_body(self, cfg: SyntheticConfig, state: _State, depth: int):
    rng = state.rng
    pattern = cfg.pattern or uniform_shared(cfg.n_locations)
    credit = 0
    for op in range(cfg.ops_per_task):
        roll = rng.random()
        if (
            roll < cfg.fork_probability
            and state.tasks_created < cfg.max_tasks
            and depth < cfg.max_depth
        ):
            state.tasks_created += 1
            yield _fork(_task_body, cfg, state, depth + 1)
            credit += 1
        elif roll < cfg.fork_probability + cfg.join_probability and credit:
            joined = yield _join_left()
            credit += state.leftovers.pop(joined.tid, 0) - 1
        else:
            loc = pattern(self.tid, op, rng)
            if rng.random() < cfg.write_ratio:
                yield _write(loc)
            else:
                yield _read(loc)
    is_root = depth == 0
    leave = (
        not is_root
        and credit > 0
        and rng.random() < cfg.leftover_probability
    )
    if leave:
        state.leftovers[self.tid] = credit
    else:
        while credit:
            joined = yield _join_left()
            credit += state.leftovers.pop(joined.tid, 0) - 1


def random_program(cfg: SyntheticConfig):
    """A fresh root body for the configured random program.

    Each returned body owns its own RNG state, so running it twice (or
    under different detectors) replays the identical event stream.
    """

    def root(self):
        state = _State(cfg.seed)
        result = yield from _task_body(self, cfg, state, 0)
        return result

    root.__name__ = f"synthetic_{cfg.seed}"
    return root


def race_free_program(cfg: SyntheticConfig):
    """Like :func:`random_program` but provably race-free.

    Every task accesses only its private locations (the structure --
    forks, joins, leftovers -- is still random), so any detector report
    on these programs is a false positive.
    """
    from repro.workloads.access_patterns import private

    safe = SyntheticConfig(**{**cfg.__dict__, "pattern": private()})

    def root(self):
        state = _State(safe.seed)
        result = yield from _task_body(self, safe, state, 0)
        return result

    root.__name__ = f"racefree_{cfg.seed}"
    return root
