"""Wavefront (stencil) workloads over the pipeline construction.

Wavefront dynamic programming -- Smith-Waterman alignment, longest
common subsequence, 2D stencil sweeps -- fills a matrix where cell
``(i, j)`` depends on ``(i-1, j)`` and ``(i, j-1)``: exactly the grid
order of a linear pipeline with rows as items and columns as stages.
These builders produce monitored kernels with configurable neighbour
reads:

* :func:`wavefront` -- a correct kernel reading the up/left/diagonal
  neighbours (all covered by the wavefront order);
* :func:`wavefront_with_bug` -- additionally reads a neighbour *outside*
  the dependence cone (default: the anti-diagonal ``(i-1, j+1)``), a
  real race on every interior cell;
* :func:`blocked_wavefront` -- a tiled variant: each task computes a
  ``bh x bw`` block, cutting task count while keeping the dependence
  structure (what a real runtime would do for granularity).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Tuple

from repro.errors import WorkloadError
from repro.forkjoin.program import read as _read, step as _step, write as _write

__all__ = ["wavefront", "wavefront_with_bug", "blocked_wavefront"]

Stage = Callable[[Any, int], Iterator]
Workload = Tuple[List[Any], List[Stage]]


def _cell(i: int, j: int) -> Tuple[str, int, int]:
    return ("cell", i, j)


def wavefront(rows: int, cols: int, work: int = 0) -> Workload:
    """A correct wavefront kernel: reads up / left / diagonal, writes self.

    ``work`` adds that many local steps per cell to model compute cost.
    """
    if rows < 1 or cols < 1:
        raise WorkloadError("wavefront needs positive dimensions")

    def make_stage(j: int) -> Stage:
        def stage(row: Any, i: int) -> Iterator:
            if i > 0:
                yield _read(_cell(i - 1, j))
            if j > 0:
                yield _read(_cell(i, j - 1))
                if i > 0:
                    yield _read(_cell(i - 1, j - 1))
            for _ in range(work):
                yield _step()
            yield _write(_cell(i, j))

        stage.__name__ = f"wave_col{j}"
        return stage

    return list(range(rows)), [make_stage(j) for j in range(cols)]


def wavefront_with_bug(
    rows: int,
    cols: int,
    bad_offset: Tuple[int, int] = (-1, 1),
) -> Workload:
    """A wavefront kernel that also reads ``(i + di, j + dj)``.

    The default ``(-1, +1)`` is the classic anti-diagonal off-by-one:
    that cell is concurrent with ``(i, j)`` on the wavefront, so every
    interior cell races.  Racing offsets are exactly the *incomparable*
    ones (``di`` and ``dj`` of opposite signs): past-cone reads
    (``di, dj <= 0``) are ordered dependencies, and future-cone reads
    (``di, dj >= 0``) read a cell whose write is ordered *after* them --
    an initialisation bug, but not a happens-before race.
    """
    di, dj = bad_offset
    if di * dj >= 0:
        raise WorkloadError(
            f"offset {bad_offset} is comparable with (0, 0) in the grid "
            "order -- it cannot race"
        )
    items, stages = wavefront(rows, cols)

    def wrap(j: int, inner: Stage) -> Stage:
        def stage(row: Any, i: int) -> Iterator:
            ni, nj = i + di, j + dj
            if 0 <= ni < rows and 0 <= nj < cols and (ni, nj) != (i, j):
                yield _read(
                    _cell(ni, nj), label=f"bad-read({ni},{nj})@({i},{j})"
                )
            yield from inner(row, i)

        stage.__name__ = f"buggy_col{j}"
        return stage

    return items, [wrap(j, s) for j, s in enumerate(stages)]


def blocked_wavefront(
    rows: int, cols: int, bh: int, bw: int
) -> Workload:
    """A tiled wavefront: one task per ``bh x bw`` block of cells.

    Block ``(I, J)`` reads the boundary cells of blocks ``(I-1, J)`` and
    ``(I, J-1)`` and writes its own cells -- the block grid has the same
    2D dependence structure with ``(rows/bh) * (cols/bw)`` tasks.
    """
    if rows % bh or cols % bw:
        raise WorkloadError("block size must divide the matrix size")
    brows, bcols = rows // bh, cols // bw

    def make_stage(J: int) -> Stage:
        def stage(row: Any, I: int) -> Iterator:
            if I > 0:  # bottom boundary row of the block above
                for j in range(J * bw, (J + 1) * bw):
                    yield _read(_cell(I * bh - 1, j))
            if J > 0:  # right boundary column of the block on the left
                for i in range(I * bh, (I + 1) * bh):
                    yield _read(_cell(i, J * bw - 1))
            for i in range(I * bh, (I + 1) * bh):
                for j in range(J * bw, (J + 1) * bw):
                    yield _write(_cell(i, j))

        stage.__name__ = f"block_col{J}"
        return stage

    return list(range(brows)), [make_stage(J) for J in range(bcols)]
