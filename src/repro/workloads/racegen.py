"""Controlled race injection.

Benchmarks and soundness tests need workloads whose race status is
*known by construction*: exactly one injected racing pair on a fresh
location, everything else untouched.  :func:`with_injected_race` wraps
any root body so that, at the very end of the execution, the root forks
two sibling tasks that both write one fresh location and only then
joins them -- the writes are unordered by construction, so the wrapped
program races iff the original did, plus exactly the injected pair.

:func:`conflicting_pair_program` is the minimal two-task racer used for
microbenchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator

from repro.forkjoin.program import (
    Body,
    TaskHandle,
    fork as _fork,
    join as _join,
    read as _read,
    write as _write,
)

__all__ = [
    "with_injected_race",
    "conflicting_pair_program",
    "bulk_access_program",
    "loop_program",
    "INJECTED_LOC",
]

#: the location every injected race is on
INJECTED_LOC = ("__injected_race__",)


def _racer(self: TaskHandle, tag: str) -> Iterator:
    yield _write(INJECTED_LOC, label=f"injected-{tag}")


def with_injected_race(body: Body) -> Body:
    """Wrap ``body`` so the execution additionally contains exactly one
    guaranteed racing pair (two unordered sibling writes to
    :data:`INJECTED_LOC`), appended after the original body completes.

    The injected location is fresh, so the original program's verdicts
    are unaffected; a sound detector must now always report something.
    """

    def wrapped(self: TaskHandle, *args: Any):
        result = yield from body(self, *args)
        first = yield _fork(_racer, "first")
        # Fork-first: `first` has already run and halted; fork the
        # second racer, whose write is unordered with the first's.
        second = yield _fork(_racer, "second")
        yield _join(second)
        yield _join(first)
        return result

    wrapped.__name__ = f"{getattr(body, '__name__', 'body')}+race"
    return wrapped


def bulk_access_program(
    rounds: int = 10,
    fanout: int = 4,
    accesses_per_task: int = 25,
    *,
    racy_rounds: Iterable[int] = (),
    n_shared: int = 4,
) -> Body:
    """A heavy, SP-shaped access workload with race status known by
    construction -- the engine benchmarks' standard traffic generator.

    Each round forks ``fanout`` children and joins them back-to-back
    (fork-all-then-join-all, so the stream is legal spawn-sync and the
    SP-only baselines stay sound on it).  Every child performs
    ``accesses_per_task`` accesses: writes to its private locations
    interleaved with reads of a small shared read-only pool -- all
    race-free.  Rounds listed in ``racy_rounds`` additionally have their
    first two children write one common per-round location, seeding
    exactly one racing pair per listed round and nothing else.

    Total accesses: ``rounds * fanout * accesses_per_task`` plus two per
    racy round.
    """
    racy = frozenset(racy_rounds)

    def worker(self: TaskHandle, round_i: int, child_i: int) -> Iterator:
        for k in range(accesses_per_task):
            if k % 3 == 2:
                yield _read(("shared", (round_i + child_i + k) % n_shared))
            else:
                yield _write(("private", round_i, child_i, k))
        if round_i in racy and child_i < 2:
            yield _write(("racy", round_i), label=f"racer-{child_i}")

    def main(self: TaskHandle) -> Iterator:
        for round_i in range(rounds):
            handles = []
            for child_i in range(fanout):
                handles.append((yield _fork(worker, round_i, child_i)))
            # Fork-first semantics: children already ran; joins must
            # consume immediate left neighbours, i.e. reverse fork order.
            for handle in reversed(handles):
                yield _join(handle)

    main.__name__ = f"bulk_{rounds}x{fanout}x{accesses_per_task}"
    return main


def loop_program(
    fanout: int = 4,
    loops: int = 100,
    pattern: int = 64,
    *,
    n_shared: int = 4,
    racy: bool = False,
) -> Body:
    """A deliberately repetitive, block-structured workload -- the
    compressed-trace subsystem's standard traffic generator (the CLI
    ``--loops`` knob).

    The root forks ``fanout`` workers back-to-back and joins them in
    reverse.  Each worker runs ``loops`` iterations of one fixed
    ``pattern``-length access run whose locations depend only on the
    position *within* the pattern -- every iteration emits exactly the
    same ``(op, task, loc)`` columns, so a worker's whole run is a
    stream with period ``pattern``.  Whenever ``pattern`` divides the
    compressor's block width, the run's interior blocks are bit-identical
    and the trace collapses to a handful of unique blocks plus
    run-length rules (see :mod:`repro.compress`).

    The accesses are race-free by construction: each worker writes only
    its own private locations and reads a shared read-only pool.  With
    ``racy=True`` the first two workers additionally write one common
    location once, after their loops, seeding exactly one racing pair.

    Total accesses: ``fanout * loops * pattern`` (plus two if racy).
    """

    def worker(self: TaskHandle, wid: int) -> Iterator:
        for _ in range(loops):
            for k in range(pattern):
                if k % 4 == 3:
                    yield _read(("shared", k % n_shared))
                else:
                    yield _write(("private", wid, k))
        if racy and wid < 2:
            yield _write(("racy",), label=f"loop-racer-{wid}")

    def main(self: TaskHandle) -> Iterator:
        handles = []
        for wid in range(fanout):
            handles.append((yield _fork(worker, wid)))
        for handle in reversed(handles):
            yield _join(handle)

    main.__name__ = f"loops_{fanout}x{loops}x{pattern}"
    return main


def conflicting_pair_program(
    loc: Hashable = INJECTED_LOC, *, ordered: bool = False
) -> Body:
    """The minimal program with one write-write pair on ``loc``.

    ``ordered=True`` joins the child before the root's write (no race);
    ``ordered=False`` writes while the child is merely halted (race).
    """

    def child(self: TaskHandle):
        yield _write(loc, label="child-write")

    def main(self: TaskHandle):
        c = yield _fork(child)
        if ordered:
            yield _join(c)
            yield _write(loc, label="root-write")
        else:
            yield _write(loc, label="root-write")
            yield _join(c)

    return main
