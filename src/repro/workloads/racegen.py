"""Controlled race injection.

Benchmarks and soundness tests need workloads whose race status is
*known by construction*: exactly one injected racing pair on a fresh
location, everything else untouched.  :func:`with_injected_race` wraps
any root body so that, at the very end of the execution, the root forks
two sibling tasks that both write one fresh location and only then
joins them -- the writes are unordered by construction, so the wrapped
program races iff the original did, plus exactly the injected pair.

:func:`conflicting_pair_program` is the minimal two-task racer used for
microbenchmarks.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator

from repro.forkjoin.program import (
    Body,
    TaskHandle,
    fork as _fork,
    join as _join,
    write as _write,
)

__all__ = ["with_injected_race", "conflicting_pair_program", "INJECTED_LOC"]

#: the location every injected race is on
INJECTED_LOC = ("__injected_race__",)


def _racer(self: TaskHandle, tag: str) -> Iterator:
    yield _write(INJECTED_LOC, label=f"injected-{tag}")


def with_injected_race(body: Body) -> Body:
    """Wrap ``body`` so the execution additionally contains exactly one
    guaranteed racing pair (two unordered sibling writes to
    :data:`INJECTED_LOC`), appended after the original body completes.

    The injected location is fresh, so the original program's verdicts
    are unaffected; a sound detector must now always report something.
    """

    def wrapped(self: TaskHandle, *args: Any):
        result = yield from body(self, *args)
        first = yield _fork(_racer, "first")
        # Fork-first: `first` has already run and halted; fork the
        # second racer, whose write is unordered with the first's.
        second = yield _fork(_racer, "second")
        yield _join(second)
        yield _join(first)
        return result

    wrapped.__name__ = f"{getattr(body, '__name__', 'body')}+race"
    return wrapped


def conflicting_pair_program(
    loc: Hashable = INJECTED_LOC, *, ordered: bool = False
) -> Body:
    """The minimal program with one write-write pair on ``loc``.

    ``ordered=True`` joins the child before the root's write (no race);
    ``ordered=False`` writes while the child is merely halted (race).
    """

    def child(self: TaskHandle):
        yield _write(loc, label="child-write")

    def main(self: TaskHandle):
        c = yield _fork(child)
        if ordered:
            yield _join(c)
            yield _write(loc, label="root-write")
        else:
            yield _write(loc, label="root-write")
            yield _join(c)

    return main
