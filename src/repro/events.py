"""Event and traversal-item model shared by the whole library.

Two closely related vocabularies appear in the paper:

* **Program events** — what a monitored execution emits: a task forks
  another, performs a memory access, joins a task, or halts.  The serial
  fork-first interpreter (:mod:`repro.forkjoin.interpreter`) produces a
  stream of these, and every detector in :mod:`repro.detectors` consumes
  the same stream.

* **Traversal items** — the alphabet of (delayed) non-separating
  traversals from Sections 3-4: arcs ``(s, t)``, loops ``(x, x)``
  standing for vertex visits, and stop-arcs ``(s, x)`` marking the
  original position of a delayed arc.  The core suprema algorithms
  (:mod:`repro.core.suprema`, :mod:`repro.core.delayed`) consume
  sequences of these.

Section 5 of the paper connects the two: ``x forks y`` emits the arc
``(x, y)``, ``x steps`` emits the loop ``(x, x)``, ``x joins y`` emits the
(delayed last-) arc ``(y, x)``, and ``x halts`` emits the stop-arc
``(x, ×)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Union

__all__ = [
    "TaskId",
    "Location",
    "ForkEvent",
    "StepEvent",
    "ReadEvent",
    "WriteEvent",
    "JoinEvent",
    "HaltEvent",
    "Event",
    "Arc",
    "Loop",
    "StopArc",
    "TraversalItem",
    "iter_vertices",
    "format_traversal",
]

#: Tasks (threads) are identified by small dense integers assigned by the
#: interpreter; lattice vertices may be arbitrary hashables.
TaskId = int

#: A monitored memory location.  Any hashable is accepted -- strings for
#: named variables, ``(array, index)`` tuples for element accesses, etc.
Location = Hashable


# ---------------------------------------------------------------------------
# Program events
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ForkEvent:
    """Task ``parent`` forked task ``child`` (child goes to its left)."""

    parent: TaskId
    child: TaskId
    label: str = ""


@dataclass(frozen=True, slots=True)
class StepEvent:
    """Task ``task`` performed a local computation step (no memory access)."""

    task: TaskId
    label: str = ""


@dataclass(frozen=True, slots=True)
class ReadEvent:
    """Task ``task`` read from memory location ``loc``."""

    task: TaskId
    loc: Location = None
    label: str = ""


@dataclass(frozen=True, slots=True)
class WriteEvent:
    """Task ``task`` wrote to memory location ``loc``."""

    task: TaskId
    loc: Location = None
    label: str = ""


@dataclass(frozen=True, slots=True)
class JoinEvent:
    """Task ``joiner`` joined (and removed) its left neighbour ``joined``."""

    joiner: TaskId
    joined: TaskId
    label: str = ""


@dataclass(frozen=True, slots=True)
class HaltEvent:
    """Task ``task`` terminated (its final transition)."""

    task: TaskId
    label: str = ""


Event = Union[ForkEvent, StepEvent, ReadEvent, WriteEvent, JoinEvent, HaltEvent]


# ---------------------------------------------------------------------------
# Traversal items
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Arc:
    """A directed arc ``(src, dst)`` of the lattice diagram.

    ``last`` marks *last-arcs*: the right-most (equivalently the last
    visited) arc exiting ``src``.  Last-arcs are the only arcs that mutate
    the union-find state in the Walk routine (Figures 5 and 8).
    """

    src: Hashable
    dst: Hashable
    last: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mark = "!" if self.last else ""
        return f"({self.src}->{self.dst}{mark})"


@dataclass(frozen=True, slots=True)
class Loop:
    """The loop ``(v, v)`` representing the visit of vertex ``v``."""

    vertex: Hashable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.vertex})"


@dataclass(frozen=True, slots=True)
class StopArc:
    """The marker ``(src, ×)`` left at the original place of a delayed arc.

    Visiting a stop-arc un-marks ``src`` so that, with respect to the
    relaxed query semantics (6)-(7), ``src`` becomes observationally
    equivalent to the not-yet-visited supremum it stands for (Section 4).
    """

    src: Hashable

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.src}->x)"


TraversalItem = Union[Arc, Loop, StopArc]


def iter_vertices(items: Iterable[TraversalItem]) -> Iterator[Hashable]:
    """Yield the vertices of a traversal in visit (loop) order."""
    for item in items:
        if isinstance(item, Loop):
            yield item.vertex


def format_traversal(items: Iterable[TraversalItem]) -> str:
    """Render a traversal the way the paper prints them.

    Loops become ``(v, v)``, arcs ``(s, t)`` and stop-arcs ``(s, ×)`` --
    e.g. the caption of Figure 4 renders as
    ``(1, 1)(1, 2)(2, 2)...``.
    """
    parts = []
    for item in items:
        if isinstance(item, Loop):
            parts.append(f"({item.vertex}, {item.vertex})")
        elif isinstance(item, Arc):
            parts.append(f"({item.src}, {item.dst})")
        elif isinstance(item, StopArc):
            parts.append(f"({item.src}, \N{MULTIPLICATION SIGN})")
        else:  # pragma: no cover - defensive
            raise TypeError(f"not a traversal item: {item!r}")
    return "".join(parts)
