"""Command-line interface: run monitored programs, compare detectors.

Usage examples::

    repro-race demo                       # the paper's Figure 2 program
    repro-race run prog.py --entry main --detector lattice2d
    repro-race run prog.py --compare      # all applicable detectors
    repro-race run prog.py --dot out.dot  # export the task graph
    repro-race record prog.py --compact -o t.rtrc   # engine trace format
    repro-race replay t.rtrc --shards 4   # batched/sharded fast path
    repro-race replay t.rtrc --jobs 4     # multi-process shard workers
    repro-race compress t.rtrc -o t.rpr2trz         # block-dedup container
    repro-race replay t.rpr2trz           # memoized, never decompresses
    repro-race decompress t.rpr2trz -o back.rtrc    # byte-identical
    repro-race diff t.rtrc                # differential detector check
    repro-race bench-engine --accesses 100000       # ingestion throughput
    repro-race stats t.rtrc --format prom # metrics + phase timings
    repro-race --metrics m.json replay t.rtrc       # dump counters after
    repro-race serve --port 7521 --metrics-port 9100  # streaming ingest
    repro-race serve --port 7521 --checkpoint-dir ck  # durable sessions
    repro-race submit t.rtrc --port 7521 --sessions 4 # replay over TCP
    repro-race submit t.rtrc --port 7521 --session s1 # resumable stream
    repro-race checkpoint t.rtrc -o state.ckpt        # snapshot detector
    repro-race restore state.ckpt --trace more.rtrc   # resume ingestion

A program file is ordinary Python defining a task body (generator
function) named by ``--entry`` (default ``main``); see
:mod:`repro.forkjoin.program` for the effect vocabulary.

Every invocation runs against a fresh metrics registry
(:mod:`repro.obs`); the global ``--metrics PATH`` flag dumps its
snapshot when the command finishes (``.prom``/``.txt`` for the
Prometheus text format, anything else JSON).
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from typing import Callable, List, Optional

from repro.bench.harness import DETECTOR_FACTORIES, compare_detectors
from repro.bench.tables import format_table
from repro.errors import ReproError
from repro.forkjoin.interpreter import run

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-race",
        description=(
            "Online race detection for structured fork-join programs "
            "(2D-lattice task graphs), after Dimitrov, Vechev & Sarkar, "
            "SPAA 2015."
        ),
    )
    from repro import __version__

    parser.add_argument(
        "--version", action="version", version=f"repro-race {__version__}"
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        help="after the command finishes, dump the metrics registry "
        "snapshot to PATH (.prom/.txt: Prometheus text format, "
        "otherwise JSON)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a program file under a detector")
    p_run.add_argument("file", help="Python file defining the task body")
    p_run.add_argument(
        "--entry", default="main", help="body function name (default: main)"
    )
    p_run.add_argument(
        "--detector",
        default="lattice2d",
        choices=sorted(DETECTOR_FACTORIES),
        help="which detector to attach",
    )
    p_run.add_argument(
        "--compare",
        action="store_true",
        help="run under lattice2d, vectorclock and fasttrack; print a table",
    )
    p_run.add_argument(
        "--dot", metavar="PATH", help="write the task graph as Graphviz DOT"
    )
    p_run.add_argument(
        "--max-races", type=int, default=20, help="reports to print"
    )

    p_rec = sub.add_parser(
        "record", help="run a program file and save its event trace"
    )
    p_rec.add_argument("file", help="Python file defining the task body")
    p_rec.add_argument("--entry", default="main")
    p_rec.add_argument(
        "-o", "--output", required=True, metavar="TRACE",
        help="trace file to write (JSON lines)",
    )
    p_rec.add_argument(
        "--compact",
        action="store_true",
        help="write the engine's compact binary trace format instead of "
        "JSON lines (columnar batch + location table; labels dropped)",
    )

    p_rep = sub.add_parser(
        "replay", help="replay a recorded trace under a detector"
    )
    p_rep.add_argument(
        "trace",
        help="trace file from `record` (JSONL or compact; auto-detected)",
    )
    p_rep.add_argument(
        "--detector",
        default="lattice2d",
        choices=sorted(DETECTOR_FACTORIES),
    )
    from repro.engine.ingest import BACKENDS

    p_rep.add_argument(
        "--backend",
        choices=BACKENDS,
        help="compact traces only: let the batch engine pick the "
        "detector for a named ingest backend (lattice2d: inlined "
        "union-find kernel; depa: array-native vectorized kernel); "
        "mutually exclusive with a non-default --detector",
    )
    p_rep.add_argument(
        "--predict",
        action="store_true",
        help="sound race prediction: replay under the shb engine and "
        "report every racing pair feasible in some reordering of the "
        "trace, not just the observed interleaving (see "
        "docs/PREDICTION.md); mutually exclusive with --backend, a "
        "non-default --detector, and --jobs",
    )
    p_rep.add_argument("--max-races", type=int, default=20)
    p_rep.add_argument(
        "--shards",
        type=int,
        default=1,
        help="compact traces only: partition the shadow map across this "
        "many detector instances (default: 1, unsharded)",
    )
    p_rep.add_argument(
        "--batch-size",
        type=int,
        default=8192,
        help="compact traces only: events per ingested batch",
    )
    p_rep.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="compact traces only: detect with this many shard worker "
        "processes; workers mmap the trace directly (lattice2d kernel; "
        "default: 1, in-process)",
    )

    p_cz = sub.add_parser(
        "compress",
        help="compress a trace into the block-dedup RPR2TRZ container "
        "(replay/stats/diff/submit all accept it directly)",
    )
    p_cz.add_argument(
        "trace", nargs="?",
        help="trace file from `record` (JSONL or compact; auto-"
        "detected); omit when using --racegen-loops",
    )
    p_cz.add_argument(
        "-o", "--output", required=True, metavar="TRACEZ",
        help="compressed trace file to write",
    )
    from repro.compress import DEFAULT_BLOCK_WIDTH

    p_cz.add_argument(
        "--block-width", type=int, default=DEFAULT_BLOCK_WIDTH,
        help="events per dedup block (default: "
        f"{DEFAULT_BLOCK_WIDTH}; loop bodies whose period divides "
        "this dedup perfectly)",
    )
    p_cz.add_argument(
        "--racegen-loops", type=int, metavar="ACCESSES",
        help="generate a repetitive racegen loop workload of roughly "
        "this many accesses and compress it, instead of reading a "
        "trace file",
    )

    p_dz = sub.add_parser(
        "decompress",
        help="expand an RPR2TRZ container back to the compact trace "
        "format, byte-identically",
    )
    p_dz.add_argument("trace", help="compressed trace file from `compress`")
    p_dz.add_argument(
        "-o", "--output", required=True, metavar="TRACE",
        help="compact trace file to write",
    )

    p_diff = sub.add_parser(
        "diff",
        help="replay one trace through several detectors in lockstep and "
        "report any per-access verdict disagreement",
    )
    p_diff.add_argument("trace", help="trace file (JSONL or compact)")
    p_diff.add_argument(
        "--detectors",
        default="lattice2d,fasttrack,spbags",
        help="comma-separated detector names (default: "
        "lattice2d,fasttrack,spbags; spbags needs spawn-sync traces)",
    )
    p_diff.add_argument(
        "--max-divergences", type=int, default=20, help="divergences to print"
    )

    p_be = sub.add_parser(
        "bench-engine",
        help="measure the ingestion paths (replay / per-event / batched / "
        "sharded / parallel) on a racegen bulk workload",
    )
    p_be.add_argument("--accesses", type=int, default=100_000)
    p_be.add_argument("--fanout", type=int, default=8)
    p_be.add_argument("--accesses-per-task", type=int, default=250)
    p_be.add_argument(
        "--race-free",
        action="store_true",
        help="do not seed racing rounds into the workload",
    )
    p_be.add_argument("--shards", type=int, default=4)
    p_be.add_argument("--batch-size", type=int, default=8192)
    p_be.add_argument("--repeats", type=int, default=3)
    p_be.add_argument(
        "--jobs",
        type=int,
        default=4,
        help="worker processes for the parallel contender (default: 4)",
    )
    p_be.add_argument(
        "--loop-fanout", type=int, default=4,
        help="workers in the repetitive loops workload the compressed "
        "contender runs on (default: 4)",
    )
    p_be.add_argument(
        "--loop-pattern", type=int, default=64,
        help="access-pattern period of the loops workload; keep it a "
        "divisor of the block width for perfect dedup (default: 64)",
    )
    p_be.add_argument(
        "--json", metavar="PATH", help="also write the full record as JSON"
    )

    p_st = sub.add_parser(
        "stats",
        help="replay a trace through the batch engine with metrics and "
        "phase tracing enabled; print the registry snapshot",
    )
    p_st.add_argument(
        "trace",
        help="trace file from `record` (JSONL or compact; auto-detected)",
    )
    p_st.add_argument(
        "--detector",
        default="lattice2d",
        choices=sorted(DETECTOR_FACTORIES),
    )
    p_st.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the shadow map across this many detector "
        "instances (default: 1, unsharded)",
    )
    p_st.add_argument("--batch-size", type=int, default=8192)
    p_st.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="detect with this many shard worker processes; their "
        "per-worker counters are merged into the printed snapshot "
        "(lattice2d kernel; default: 1, in-process)",
    )
    p_st.add_argument(
        "--format",
        choices=("table", "json", "prom"),
        default="table",
        help="how to print the snapshot (default: table)",
    )

    p_sv = sub.add_parser(
        "serve",
        help="run the streaming trace-ingest server (RPRSERVE over TCP); "
        "SIGTERM drains live sessions before exiting",
    )
    p_sv.add_argument(
        "--host", default="127.0.0.1", help="listen address"
    )
    p_sv.add_argument(
        "--port", type=int, default=7521,
        help="listen port (default: 7521; 0 picks a free one)",
    )
    p_sv.add_argument(
        "--credit-window", type=int, default=8,
        help="BATCH frames a session may have outstanding (default: 8)",
    )
    p_sv.add_argument(
        "--queue-high-water", type=int, default=6,
        help="queued batches per session above which credit grants are "
        "withheld (default: 6)",
    )
    p_sv.add_argument(
        "--max-frame", type=int, default=8 * 1024 * 1024,
        help="largest frame payload accepted, in bytes (default: 8 MiB)",
    )
    p_sv.add_argument(
        "--idle-timeout", type=float, default=30.0,
        help="seconds of session silence before disconnect (default: 30)",
    )
    p_sv.add_argument(
        "--jobs", type=int, default=1,
        help="serve all sessions from one shared multi-process engine "
        "with this many shard workers instead of one isolated engine "
        "per session (default: 1, isolated)",
    )
    p_sv.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="enable durable sessions: clients that RESUME with a "
        "token get periodic background checkpoints here and can "
        "reconnect after a crash without losing detection state "
        "(incompatible with --jobs > 1)",
    )
    p_sv.add_argument(
        "--checkpoint-interval", type=int, default=32, metavar="N",
        help="applied batches between background checkpoints of a "
        "durable session (default: 32)",
    )
    p_sv.add_argument(
        "--predict",
        action="store_true",
        help="serve sessions in sound race-prediction mode (shb): "
        "stream one report per feasibly-reorderable racing pair "
        "instead of observed-order races (incompatible with --jobs > 1 "
        "and --checkpoint-dir; see docs/PREDICTION.md)",
    )
    p_sv.add_argument(
        "--backend", default="lattice2d", metavar="NAME",
        help="default engine backend for sessions (lattice2d or depa; "
        "default: lattice2d); v3 clients may request a different one "
        "per session in their HELLO",
    )
    p_sv.add_argument(
        "--metrics-port", type=int, metavar="PORT",
        help="also serve the live Prometheus snapshot on "
        "http://HOST:PORT/metrics (stdlib http.server thread)",
    )
    p_sv.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="serve as a location-sharded gateway over N engine worker "
        "processes (multi-node scale-out; accesses route to worker "
        "lid %% N and a killed worker is respawned with its sessions "
        "migrated -- see docs/SCALE_OUT.md); incompatible with --jobs, "
        "--predict, and a non-default --backend (default: 1, single "
        "node)",
    )
    p_sv.add_argument(
        "--log-dir", metavar="DIR",
        help="with --workers: capture each worker's stdout/stderr as "
        "DIR/worker-K.log (CI uploads these on failure)",
    )

    p_sub2 = sub.add_parser(
        "submit",
        help="replay a trace (or a generated racegen workload) against "
        "a running serve instance over TCP",
    )
    p_sub2.add_argument(
        "trace", nargs="?",
        help="trace file from `record` (JSONL or compact; auto-"
        "detected); omit when using --racegen",
    )
    p_sub2.add_argument(
        "--racegen", type=int, metavar="ACCESSES",
        help="generate a racegen bulk workload of roughly this many "
        "accesses instead of reading a trace file",
    )
    p_sub2.add_argument(
        "--racegen-loops", type=int, metavar="ACCESSES",
        help="generate a repetitive racegen loop workload of roughly "
        "this many accesses instead of reading a trace file",
    )
    p_sub2.add_argument(
        "--compress", action="store_true",
        help="negotiate the v4 CBATCH frame and ship the trace in "
        "block-dedup compressed form (the server detects over it "
        "without decompressing); the connection fails with a typed "
        "error if the server cannot honour it",
    )
    p_sub2.add_argument("--host", default="127.0.0.1")
    p_sub2.add_argument("--port", type=int, default=7521)
    p_sub2.add_argument(
        "--sessions", type=int, default=1,
        help="concurrent connections for load generation (default: 1)",
    )
    p_sub2.add_argument(
        "--batch-size", type=int, default=8192,
        help="events per BATCH frame (default: 8192)",
    )
    p_sub2.add_argument(
        "--ship-locations", action="store_true",
        help="ship the location table over the wire so the server's "
        "race reports use original locations (slower; default keeps "
        "the table client-side and decodes locally)",
    )
    p_sub2.add_argument("--max-races", type=int, default=20)
    p_sub2.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-socket-operation timeout in seconds (default: 60)",
    )
    p_sub2.add_argument(
        "--backend", metavar="NAME",
        help="request this engine backend for the session(s) via the "
        "v3 HELLO (lattice2d or depa); the server refuses names it "
        "cannot honour with a typed error",
    )
    p_sub2.add_argument(
        "--session", metavar="TOKEN",
        help="durable session token: sequence batches, survive server "
        "restarts by resuming from its checkpoint, and replay "
        "idempotently (needs a serve instance running with "
        "--checkpoint-dir; incompatible with --sessions > 1)",
    )

    p_ck = sub.add_parser(
        "checkpoint",
        help="replay a trace through the batch engine and save the "
        "detector state as a CRC-checked checkpoint file",
    )
    p_ck.add_argument(
        "trace",
        help="trace file from `record` (JSONL or compact; auto-detected)",
    )
    p_ck.add_argument(
        "-o", "--output", required=True, metavar="CKPT",
        help="checkpoint file to write",
    )
    p_ck.add_argument("--batch-size", type=int, default=8192)

    p_rs = sub.add_parser(
        "restore",
        help="load a checkpoint file back into a batch engine, "
        "optionally continue ingesting another trace, and report races",
    )
    p_rs.add_argument("checkpoint", help="checkpoint file from `checkpoint`")
    p_rs.add_argument(
        "--trace", metavar="TRACE",
        help="also ingest this trace on top of the restored state",
    )
    p_rs.add_argument("--batch-size", type=int, default=8192)
    p_rs.add_argument("--max-races", type=int, default=20)

    p_tl = sub.add_parser(
        "timeline",
        help="run a program and print its task-line evolution "
        "(Figure 10-style)",
    )
    p_tl.add_argument("file", help="Python file defining the task body")
    p_tl.add_argument("--entry", default="main")

    sub.add_parser("demo", help="run the paper's Figure 2 example")
    sub.add_parser("detectors", help="list available detectors")
    return parser


def _load_body(path: str, entry: str) -> Callable:
    spec = importlib.util.spec_from_file_location("monitored_program", path)
    if spec is None or spec.loader is None:
        raise ReproError(f"cannot load {path}")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except OSError as exc:
        raise ReproError(f"cannot load {path}: {exc}") from exc
    body = getattr(module, entry, None)
    if body is None:
        raise ReproError(f"{path} does not define {entry!r}")
    return body


def _figure2_body():
    from repro.forkjoin.program import fork, join, read, step, write

    def task_a(self):
        yield read("l", label="A")

    def task_c(self, a):
        yield join(a)
        yield step(label="C")

    def main(self):
        a = yield fork(task_a)
        yield read("l", label="B")
        c = yield fork(task_c, a)
        yield write("l", label="D")
        yield join(c)

    return main


def _run_single(body: Callable, detector_name: str, max_races: int,
                dot_path: Optional[str]) -> int:
    detector = DETECTOR_FACTORIES[detector_name]()
    ex = run(body, observers=[detector], record_events=dot_path is not None)
    print(
        f"{detector.name}: {ex.task_count} tasks, {ex.op_count} operations, "
        f"{len(detector.races)} race(s)"
    )
    for report in detector.races[:max_races]:
        print(f"  {report}")
    if len(detector.races) > max_races:
        print(f"  ... and {len(detector.races) - max_races} more")
    if dot_path is not None:
        from repro.forkjoin.taskgraph import build_task_graph
        from repro.viz.dot import task_graph_to_dot

        assert ex.events is not None
        with open(dot_path, "w", encoding="utf-8") as handle:
            handle.write(task_graph_to_dot(build_task_graph(ex.events)))
        print(f"task graph written to {dot_path}")
    return 1 if detector.races else 0


def _load_batch(path: str):
    """Load any trace file as ``(batch, interner)``: compact traces
    directly, JSONL traces via the event decoder."""
    from repro.engine.batch import batch_from_events
    from repro.engine.tracefile import is_tracefile, read_trace

    if is_tracefile(path):
        return read_trace(path)
    from repro.trace import load_events

    return batch_from_events(load_events(path))


def _check_jobs(args) -> None:
    """Shared validation for the ``--jobs`` flag on replay/stats."""
    if args.jobs < 1:
        raise ReproError(f"need at least one worker, got {args.jobs}")
    if args.jobs > 1 and args.shards > 1:
        raise ReproError(
            "--shards and --jobs are mutually exclusive: --jobs already "
            "partitions the shadow map across its worker processes"
        )
    if args.jobs > 1 and args.detector != "lattice2d":
        raise ReproError(
            "--jobs runs the fixed lattice2d worker kernel; drop "
            f"--detector {args.detector} or use --jobs 1"
        )
    if args.jobs > 1 and getattr(args, "backend", None) not in (
        None, "lattice2d",
    ):
        raise ReproError(
            "--jobs runs the fixed lattice2d worker kernel; drop "
            f"--backend {args.backend} or use --jobs 1"
        )


def _replay_parallel(args) -> int:
    from repro.engine.parallel import ParallelShardedEngine
    from repro.engine.tracefile import is_compressed_tracefile

    with ParallelShardedEngine(args.jobs) as engine:
        if is_compressed_tracefile(args.trace):
            # The workers mmap raw column files; a compressed trace is
            # expanded once in the parent and shipped whole.
            from repro.engine.tracefile import read_trace

            batch, _interner = read_trace(args.trace)
            engine.ingest(batch)
            feed = "decompressed, multi-process"
        else:
            engine.ingest_trace(args.trace)
            feed = "mmap, multi-process"
        races = engine.races()
        events = engine.events_ingested
    print(
        f"lattice2d x{args.jobs} workers: replayed {events} events "
        f"({feed}), {len(races)} race(s)"
    )
    for report in races[: args.max_races]:
        print(f"  {report}")
    return 1 if races else 0


def _replay_compact(args) -> int:
    from repro.engine.ingest import BatchEngine, ShardedBatchEngine
    from repro.engine.tracefile import is_compressed_tracefile, read_trace

    if args.shards < 1:
        raise ReproError(f"need at least one shard, got {args.shards}")
    if args.predict:
        if args.backend is not None:
            raise ReproError(
                "--predict runs the engine's own shb prediction "
                f"detector; drop --backend {args.backend} or drop "
                "--predict"
            )
        if args.detector != "lattice2d":
            raise ReproError(
                "--predict runs the engine's own shb prediction "
                f"detector; drop --detector {args.detector} or drop "
                "--predict"
            )
        if args.jobs > 1:
            raise ReproError(
                "--jobs runs the fixed lattice2d worker kernel; drop "
                "--predict (or use --shards to partition prediction "
                "in-process)"
            )
    _check_jobs(args)
    if args.jobs > 1:
        return _replay_parallel(args)
    if args.backend is not None and args.detector != "lattice2d":
        raise ReproError(
            "--backend picks the engine's own detector; drop "
            f"--detector {args.detector} or drop --backend"
        )
    ctrace = None
    if is_compressed_tracefile(args.trace):
        from repro.compress import read_tracez

        ctrace, interner = read_tracez(args.trace)
        batch = None
    else:
        batch, interner = read_trace(args.trace)
    if args.predict:
        if args.shards > 1:
            engine = ShardedBatchEngine(
                args.shards, predict=True, interner=interner
            )
            name = f"shb predict x{args.shards} shards"
        else:
            engine = BatchEngine(predict=True, interner=interner)
            name = "shb predict"
    elif args.backend is not None:
        if args.shards > 1:
            engine = ShardedBatchEngine(
                args.shards, backend=args.backend, interner=interner
            )
            name = f"{args.backend} backend x{args.shards} shards"
        else:
            engine = BatchEngine(backend=args.backend, interner=interner)
            name = f"{args.backend} backend"
    elif args.shards > 1:
        engine = ShardedBatchEngine(
            args.shards,
            detector_factory=DETECTOR_FACTORIES[args.detector],
            interner=interner,
        )
        name = f"{engine.shards[0].name} x{args.shards} shards"
    else:
        detector = DETECTOR_FACTORIES[args.detector]()
        detector.on_root(0)
        engine = BatchEngine(detector, interner=interner)
        name = detector.name
    if ctrace is not None:
        engine.ingest_compressed(ctrace)
        feed = "compressed, memoized"
    else:
        engine.ingest_all(batch.slices(args.batch_size))
        feed = "batched"
    races = engine.races()
    print(
        f"{name}: replayed {engine.events_ingested} events ({feed}), "
        f"{len(races)} race(s)"
    )
    for report in races[: args.max_races]:
        print(f"  {report}")
    return 1 if races else 0


def _compress_cmd(args) -> int:
    import io

    from repro.compress import compress, write_tracez
    from repro.engine.tracefile import write_trace

    if args.block_width < 1:
        raise ReproError(
            f"block width must be positive, got {args.block_width}"
        )
    if args.racegen_loops is not None:
        if args.trace:
            raise ReproError(
                "pass a trace file or --racegen-loops, not both"
            )
        from repro.engine.benchlib import build_loop_workload, capture

        _events, batch, interner = capture(
            build_loop_workload(args.racegen_loops)
        )
        source = f"racegen-loops[{args.racegen_loops}]"
    elif args.trace:
        batch, interner = _load_batch(args.trace)
        source = args.trace
    else:
        raise ReproError("compress needs a trace file or --racegen-loops N")
    ctrace = compress(batch, args.block_width)
    write_tracez(args.output, ctrace, interner)
    raw_buf = io.BytesIO()
    write_trace(raw_buf, batch, interner)
    raw_bytes = len(raw_buf.getvalue())
    import os

    z_bytes = os.path.getsize(args.output)
    print(
        f"compressed {len(batch)} events from {source} to {args.output}: "
        f"{len(ctrace.blocks)} unique block(s) covering "
        f"{ctrace.block_count()} (width {ctrace.block_width}), "
        f"{z_bytes} bytes vs {raw_bytes} compact "
        f"({raw_bytes / z_bytes:.2f}x)"
    )
    return 0


def _decompress_cmd(args) -> int:
    from repro.compress import read_tracez
    from repro.engine.tracefile import write_trace

    ctrace, interner = read_tracez(args.trace)
    count = write_trace(args.output, ctrace.decompress(), interner)
    print(
        f"decompressed {count} events from {args.trace} to {args.output}"
    )
    return 0


def _diff_trace(args) -> int:
    from repro.engine.differential import replay_differential

    names = [n.strip() for n in args.detectors.split(",") if n.strip()]
    batch, interner = _load_batch(args.trace)
    report = replay_differential(batch, interner, names)
    print(report.summary())
    for div in report.divergences[: args.max_divergences]:
        print(f"  {div}")
    if len(report.divergences) > args.max_divergences:
        remaining = len(report.divergences) - args.max_divergences
        print(f"  ... and {remaining} more")
    return 0 if report.agreed else 1


def _stats(args) -> int:
    from repro.engine.ingest import BatchEngine, ShardedBatchEngine
    from repro.obs import (
        PhaseTracer,
        bind_detector,
        get_registry,
        set_tracer,
        to_json,
        to_prometheus,
    )

    from repro.engine.tracefile import is_compressed_tracefile

    registry = get_registry()
    ctrace = None
    if is_compressed_tracefile(args.trace):
        from repro.compress import read_tracez

        ctrace, interner = read_tracez(args.trace)
        batch = ctrace.decompress() if args.jobs > 1 else None
    else:
        batch, interner = _load_batch(args.trace)
    factory = DETECTOR_FACTORIES[args.detector]
    if args.shards < 1:
        raise ReproError(f"need at least one shard, got {args.shards}")
    _check_jobs(args)
    tracer = PhaseTracer(enabled=True, registry=registry)
    previous_tracer = set_tracer(tracer)
    parallel_engine = None
    try:
        if args.jobs > 1:
            from repro.engine.parallel import ParallelShardedEngine

            # Whole-batch feed: one shared-memory publish, then collect
            # merges each worker's counters into this registry.
            engine = parallel_engine = ParallelShardedEngine(
                args.jobs, interner=interner, registry=registry
            )
            engine.ingest(batch)
        elif args.shards > 1:
            engine = ShardedBatchEngine(
                args.shards, detector_factory=factory, interner=interner,
                registry=registry,
            )
            for k, det in enumerate(engine.shards):
                bind_detector(
                    registry, det,
                    {"detector": det.name, "shard": str(k)},
                )
            if ctrace is not None:
                engine.ingest_compressed(ctrace)
            else:
                engine.ingest_all(batch.slices(args.batch_size))
        else:
            detector = factory()
            detector.on_root(0)
            engine = BatchEngine(
                detector, interner=interner, registry=registry
            )
            bind_detector(registry, detector, {"detector": detector.name})
            if ctrace is not None:
                engine.ingest_compressed(ctrace)
            else:
                engine.ingest_all(batch.slices(args.batch_size))
        races = engine.races()
    finally:
        set_tracer(previous_tracer)
        if parallel_engine is not None:
            parallel_engine.close()
    if args.format == "json":
        print(to_json(registry, tracer=tracer))
    elif args.format == "prom":
        print(to_prometheus(registry), end="")
    else:
        snapshot = registry.snapshot()
        rows = [
            {"metric": series, "value": value}
            for section in ("counters", "gauges")
            for series, value in snapshot[section].items()
        ]
        print(format_table(rows, title=f"metrics for {args.trace}"))
        phase_rows = [
            {"phase": path, "calls": agg["calls"],
             "seconds": round(agg["seconds"], 6)}
            for path, agg in tracer.totals().items()
        ]
        if phase_rows:
            print(format_table(phase_rows, title="phase timings"))
    print(
        f"replayed {engine.events_ingested} events, {len(races)} race(s)"
    )
    return 1 if races else 0


def _bench_engine(args) -> int:
    from repro.engine.benchlib import format_record, run_engine_benchmark

    if args.jobs < 1:
        raise ReproError(f"need at least one worker, got {args.jobs}")
    record = run_engine_benchmark(
        accesses=args.accesses,
        fanout=args.fanout,
        accesses_per_task=args.accesses_per_task,
        racy=not args.race_free,
        shards=args.shards,
        batch_size=args.batch_size,
        repeats=args.repeats,
        jobs=args.jobs,
        loop_fanout=args.loop_fanout,
        loop_pattern=args.loop_pattern,
    )
    title = (
        f"engine ingestion ({record['workload']['accesses']} accesses, "
        f"{record['workload']['events']} events)"
    )
    print(format_table(format_record(record), title=title))
    diff = record["differential"]
    print(
        f"batched vs per-event: {record['speedup_batched_vs_per_event']}x; "
        f"parallel({record['jobs']} workers) vs batched: "
        f"{record['speedup_parallel_vs_batched']}x; "
        f"differential: {diff['divergences']} divergence(s) across "
        f"{', '.join(diff['detectors'])}; sharded agrees: "
        f"{diff['sharded_agrees']}; parallel agrees: "
        f"{diff['parallel_agrees']}; predict sound: "
        f"{diff['predict_sound']}; compressed agrees: "
        f"{diff['compressed_agrees']} "
        f"({record['compression_ratio']}x smaller, "
        f"{record['speedup_compressed_vs_batched']}x faster than "
        f"batched on loops)"
    )
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"record written to {args.json}")
    return 0


def _serve(args) -> int:
    import asyncio

    from repro.serve import (
        EXIT_BIND_FAILURE,
        RaceServer,
        ServeConfig,
        start_metrics_http,
    )

    if args.workers > 1:
        return _serve_cluster(args)
    if args.log_dir is not None:
        raise ReproError("--log-dir only applies with --workers > 1")

    config = ServeConfig(
        host=args.host,
        port=args.port,
        credit_window=args.credit_window,
        queue_high_water=args.queue_high_water,
        max_frame=args.max_frame,
        idle_timeout=args.idle_timeout,
        jobs=args.jobs,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        predict=args.predict,
        backend=args.backend,
    )

    async def _run() -> int:
        server = RaceServer(config)
        try:
            port = await server.start()
        except OSError as exc:
            print(
                f"error: cannot bind {config.host}:{config.port}: {exc}",
                file=sys.stderr,
            )
            return EXIT_BIND_FAILURE
        server.install_signal_handlers()
        httpd = None
        try:
            if args.metrics_port is not None:
                try:
                    httpd = start_metrics_http(
                        args.metrics_port, server.registry, host=config.host
                    )
                except OSError as exc:
                    print(
                        f"error: cannot bind metrics port "
                        f"{args.metrics_port}: {exc}",
                        file=sys.stderr,
                    )
                    await server.shutdown()
                    return EXIT_BIND_FAILURE
                print(
                    f"metrics on http://{config.host}:"
                    f"{httpd.server_port}/metrics"
                )
            durability = (
                f", checkpoints in {config.checkpoint_dir} every "
                f"{config.checkpoint_interval} batches"
                if config.checkpoint_dir is not None
                else ""
            )
            mode = ", predict mode (shb)" if config.predict else ""
            print(
                f"serving RPRSERVE on {config.host}:{port} "
                f"(credit window {config.credit_window}, "
                f"jobs {config.jobs}, backend {config.backend}"
                f"{durability}{mode}); SIGTERM drains"
            )
            await server.serve_forever()
        finally:
            if httpd is not None:
                httpd.shutdown()
        return 0

    return asyncio.run(_run())


def _serve_cluster(args) -> int:
    import asyncio

    from repro.serve import (
        EXIT_BIND_FAILURE,
        ClusterConfig,
        RaceCluster,
        start_metrics_http,
    )

    if args.jobs > 1:
        raise ReproError(
            "--workers shards across processes already; it cannot be "
            "combined with --jobs > 1"
        )
    if args.predict:
        raise ReproError(
            "the gateway serves observed-order detection only: "
            "--predict cannot be combined with --workers > 1"
        )
    if args.backend != "lattice2d":
        raise ReproError(
            f"the gateway's workers default to lattice2d (clients may "
            f"still request {args.backend!r} per session in their "
            f"HELLO); drop --backend or --workers"
        )

    config = ClusterConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        credit_window=args.credit_window,
        queue_high_water=args.queue_high_water,
        max_frame=args.max_frame,
        idle_timeout=args.idle_timeout,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        log_dir=args.log_dir,
    )

    async def _run() -> int:
        cluster = RaceCluster(config)
        try:
            port = await cluster.start()
        except OSError as exc:
            print(
                f"error: cannot bind {config.host}:{config.port}: {exc}",
                file=sys.stderr,
            )
            return EXIT_BIND_FAILURE
        cluster.install_signal_handlers()
        httpd = None
        try:
            if args.metrics_port is not None:
                try:
                    httpd = start_metrics_http(
                        args.metrics_port, cluster.registry,
                        host=config.host,
                    )
                except OSError as exc:
                    print(
                        f"error: cannot bind metrics port "
                        f"{args.metrics_port}: {exc}",
                        file=sys.stderr,
                    )
                    await cluster.shutdown()
                    return EXIT_BIND_FAILURE
                print(
                    f"metrics on http://{config.host}:"
                    f"{httpd.server_port}/metrics"
                )
            ports = ", ".join(str(w.port) for w in cluster.workers)
            print(
                f"serving RPRSERVE on {config.host}:{port} as a "
                f"gateway over {config.workers} engine workers "
                f"(ports {ports}; credit window {config.credit_window}); "
                f"SIGTERM drains"
            )
            await cluster.serve_forever()
        finally:
            if httpd is not None:
                httpd.shutdown()
        return 0

    return asyncio.run(_run())


def _submit(args) -> int:
    from dataclasses import replace

    from repro.errors import ProtocolError
    from repro.serve import (
        EXIT_CONNECT_FAILURE,
        EXIT_PROTOCOL_FAILURE,
        ConnectError,
        RaceClient,
        RemoteError,
        run_load,
        submit_batch,
    )

    if args.session is not None and args.sessions > 1:
        raise ReproError(
            "--session tags one durable stream; it cannot be combined "
            "with --sessions load generation"
        )
    if args.racegen is not None and args.racegen_loops is not None:
        raise ReproError("pass --racegen or --racegen-loops, not both")
    if args.racegen is not None:
        from repro.engine.benchlib import build_workload, capture

        _events, batch, interner = capture(build_workload(args.racegen))
        source = f"racegen[{args.racegen}]"
    elif args.racegen_loops is not None:
        from repro.engine.benchlib import build_loop_workload, capture

        _events, batch, interner = capture(
            build_loop_workload(args.racegen_loops)
        )
        source = f"racegen-loops[{args.racegen_loops}]"
    elif args.trace:
        batch, interner = _load_batch(args.trace)
        source = args.trace
    else:
        raise ReproError(
            "submit needs a trace file, --racegen N or --racegen-loops N"
        )
    target = f"{args.host}:{args.port}"
    try:
        if args.sessions > 1:
            result = run_load(
                args.host, args.port, batch,
                sessions=args.sessions, batch_size=args.batch_size,
                timeout=args.timeout, backend=args.backend,
                compress=args.compress,
            )
            print(
                f"{args.sessions} sessions x {len(batch)} events from "
                f"{source} to {target}: {result.events} events in "
                f"{result.seconds:.3f}s "
                f"({result.events_per_sec:,.0f} events/sec), "
                f"{result.races} race report(s)"
            )
            return 1 if result.races else 0
        if args.session is not None:
            with RaceClient(
                args.host, args.port, timeout=args.timeout,
                interner=interner, ship_locations=args.ship_locations,
                session=args.session, backend=args.backend,
                compress=args.compress,
            ) as client:
                if args.compress:
                    client.send_batches_compressed(batch)
                else:
                    client.send_batches(batch, args.batch_size)
                summary = client.finish()
        else:
            summary = submit_batch(
                args.host, args.port, batch, interner=interner,
                batch_size=args.batch_size,
                ship_locations=args.ship_locations, timeout=args.timeout,
                backend=args.backend, compress=args.compress,
            )
        reports = summary.reports
        if not args.ship_locations and interner is not None:
            reports = [
                replace(r, loc=interner.location(r.loc)) for r in reports
            ]
        print(
            f"submitted {summary.events} events from {source} to "
            f"{target}: {summary.races} race report(s)"
        )
        for report in reports[: args.max_races]:
            print(f"  {report}")
        if len(reports) > args.max_races:
            print(f"  ... and {len(reports) - args.max_races} more")
        return 1 if summary.races else 0
    except ConnectError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_CONNECT_FAILURE
    except (RemoteError, ProtocolError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_PROTOCOL_FAILURE


def _checkpoint_cmd(args) -> int:
    from repro.engine.ingest import BatchEngine
    from repro.engine.snapshot import save_checkpoint

    batch, interner = _load_batch(args.trace)
    engine = BatchEngine(interner=interner)
    engine.ingest_all(batch.slices(args.batch_size))
    nbytes = save_checkpoint(
        engine, args.output, meta={"source": args.trace}
    )
    print(
        f"checkpointed {engine.events_ingested} events "
        f"({len(engine.detector.races)} race(s), {nbytes} bytes) "
        f"to {args.output}"
    )
    return 0


def _restore_cmd(args) -> int:
    from repro.engine.snapshot import load_checkpoint

    engine, meta = load_checkpoint(args.checkpoint)
    restored_events = engine.events_ingested
    print(
        f"restored {restored_events} events "
        f"({len(engine.detector.races)} race(s)) from {args.checkpoint}"
    )
    if meta:
        import json

        print(f"meta: {json.dumps(meta, sort_keys=True)}")
    if args.trace:
        batch, _interner = _load_batch(args.trace)
        engine.ingest_all(batch.slices(args.batch_size))
        print(
            f"continued with {engine.events_ingested - restored_events} "
            f"events from {args.trace}"
        )
    races = engine.races()
    print(f"total: {engine.events_ingested} events, {len(races)} race(s)")
    for report in races[: args.max_races]:
        print(f"  {report}")
    if len(races) > args.max_races:
        print(f"  ... and {len(races) - args.max_races} more")
    return 1 if races else 0


def main(argv: Optional[List[str]] = None) -> int:
    from repro.obs import MetricsRegistry, set_registry, write_metrics

    args = build_parser().parse_args(argv)
    # One fresh registry per invocation: engine counters land here and
    # `--metrics` dumps exactly this command's activity.
    registry = MetricsRegistry()
    previous_registry = set_registry(registry)
    try:
        code = _dispatch(args)
        if args.metrics:
            fmt = write_metrics(args.metrics, registry)
            print(f"metrics ({fmt}) written to {args.metrics}")
        return code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        set_registry(previous_registry)


def _dispatch(args) -> int:
    if args.command == "detectors":
        for name in sorted(DETECTOR_FACTORIES):
            print(name)
        return 0
    if args.command == "demo":
        print("Figure 2 of the paper: race between A and D expected.\n")
        return _run_single(_figure2_body(), "lattice2d", 20, None)
    if args.command == "record":
        body = _load_body(args.file, args.entry)
        if args.compact:
            from repro.engine.tracefile import record_trace

            count = record_trace(body, path=args.output)
            print(
                f"recorded {count} events (compact) to {args.output}"
            )
            return 0
        from repro.trace import dump_events

        ex = run(body, record_events=True)
        assert ex.events is not None
        count = dump_events(ex.events, args.output)
        print(
            f"recorded {count} events ({ex.task_count} tasks) "
            f"to {args.output}"
        )
        return 0
    if args.command == "replay":
        from repro.engine.tracefile import is_tracefile

        if is_tracefile(args.trace):
            return _replay_compact(args)
        if args.jobs > 1:
            raise ReproError(
                "--jobs needs a compact trace (record with --compact); "
                f"{args.trace} is a JSONL trace"
            )
        from repro.forkjoin.replay import replay_events
        from repro.trace import load_events

        if args.predict and args.detector != "lattice2d":
            raise ReproError(
                "--predict runs the shb prediction detector; drop "
                f"--detector {args.detector} or drop --predict"
            )
        detector = DETECTOR_FACTORIES[
            "shb" if args.predict else args.detector
        ]()
        events = load_events(args.trace)
        ex2 = replay_events(events, observers=[detector])
        print(
            f"{detector.name}: replayed {ex2.op_count} events, "
            f"{len(detector.races)} race(s)"
        )
        for report in detector.races[: args.max_races]:
            print(f"  {report}")
        return 1 if detector.races else 0
    if args.command == "compress":
        return _compress_cmd(args)
    if args.command == "decompress":
        return _decompress_cmd(args)
    if args.command == "diff":
        return _diff_trace(args)
    if args.command == "stats":
        return _stats(args)
    if args.command == "bench-engine":
        return _bench_engine(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "submit":
        return _submit(args)
    if args.command == "checkpoint":
        return _checkpoint_cmd(args)
    if args.command == "restore":
        return _restore_cmd(args)
    if args.command == "timeline":
        from repro.viz.timeline import LineTracker, render_timeline

        body = _load_body(args.file, args.entry)
        tracker = LineTracker()
        run(body, observers=[tracker])
        print(render_timeline(tracker))
        return 0
    body = _load_body(args.file, args.entry)
    if args.compare:
        stats = compare_detectors(body)
        print(format_table([s.row() for s in stats], title=args.file))
        return 1 if any(s.races for s in stats) else 0
    return _run_single(body, args.detector, args.max_races, args.dot)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
