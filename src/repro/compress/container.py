"""The RPR2TRZ container: CRC-checked persistence for compressed traces.

Layout (all header integers little-endian)::

    offset  size        field
    0       8           magic  b"RPR2TRZ\\x01"
    8       1           endianness of the array payload (0=little, 1=big)
    9       3           reserved (zero)
    12      4           version (currently 1)
    16      4           block width W
    20      8           n_events (what the rules expand to)
    28      8           n_blocks (unique blocks)
    36      8           n_rules
    44      8           byte length L of the location table
    52      4           CRC-32 of header bytes [0, 52)
    56      L           location table (same tagged JSON codec as RPR2TRC)
    56+L    4           CRC-32 of the table
    ...     4*n_blocks  block lengths, u32 each, 0 < len <= W
    ...     4           CRC-32 of the lengths section
    ...     S           opcode columns of all blocks, concatenated (u8)
    ...     4*S         primary columns, concatenated (i32)
    ...     4*S         secondary columns, concatenated (i32)
    ...     4           CRC-32 of the three concatenated columns
    ...     8*n_rules   rules: (block_id u32, repeat u32) pairs
    ...     4           CRC-32 of the rules section

where ``S`` is the sum of the block lengths.  This mirrors RPR2TRC's
crash-safety posture and hardens it: every length is validated against
the bytes actually present *before* it sizes an allocation, and every
section (header included) carries a CRC, so any single-bit flip
anywhere in the file is refused with a typed
:class:`~repro.errors.TraceError` -- RPR2TRZ is a dedup format, where
one flipped payload byte would otherwise silently corrupt every
occurrence of a shared block.

The column payload is written native-endian like RPR2TRC (CRCs are
computed over the stored bytes, so they are checked *before* any
byteswap).
"""

from __future__ import annotations

import struct
import sys
import zlib
from array import array
from typing import IO, List, Optional, Tuple, Union

from repro.engine.batch import EventBatch, LocationInterner
from repro.engine.tracefile import (
    MAGIC_COMPRESSED,
    _decode_table,
    _encode_table,
    _native_flag,
)
from repro.errors import TraceError

from repro.compress.blocks import CompressedTrace

__all__ = [
    "ZVERSION",
    "write_tracez",
    "read_tracez",
    "MappedCompressedTrace",
]

ZVERSION = 1

_ZHEADER = struct.Struct("<8sB3xIIQQQQ")
_CRC = struct.Struct("<I")
_RULE = struct.Struct("<II")
_U32_MAX = 2**32 - 1

#: sanity ceiling for the block width field: wide enough for any real
#: compressor setting, small enough that ``width * u32`` arithmetic on a
#: hostile header cannot approach overflow territory
_MAX_BLOCK_WIDTH = 2**20


def _crc(payload: bytes) -> bytes:
    return _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)


def write_tracez(
    fp: Union[str, IO[bytes]],
    ctrace: CompressedTrace,
    interner: LocationInterner,
) -> int:
    """Write one compressed trace + location table; returns the total
    (expanded) event count it represents."""
    if isinstance(fp, str):
        with open(fp, "wb") as handle:
            return write_tracez(handle, ctrace, interner)
    blocks = ctrace.blocks
    if len(blocks) > _U32_MAX or len(ctrace.rules) > _U32_MAX:
        raise TraceError(
            "compressed trace too large for the container "
            f"({len(blocks)} blocks, {len(ctrace.rules)} rules)"
        )
    table = _encode_table(interner)
    head = _ZHEADER.pack(
        MAGIC_COMPRESSED,
        _native_flag(),
        ZVERSION,
        ctrace.block_width,
        ctrace.n_events,
        len(blocks),
        len(ctrace.rules),
        len(table),
    )
    fp.write(head)
    fp.write(_crc(head))
    fp.write(table)
    fp.write(_crc(table))
    lengths = array("I", [len(block) for block in blocks]).tobytes()
    fp.write(lengths)
    fp.write(_crc(lengths))
    payload = b"".join(
        [block.ops.tobytes() for block in blocks]
        + [block.a.tobytes() for block in blocks]
        + [block.b.tobytes() for block in blocks]
    )
    fp.write(payload)
    fp.write(_crc(payload))
    rules = b"".join(_RULE.pack(bid, rep) for bid, rep in ctrace.rules)
    fp.write(rules)
    fp.write(_crc(rules))
    return ctrace.n_events


def _bytes_remaining(fp: IO[bytes]) -> Optional[int]:
    try:
        pos = fp.tell()
        end = fp.seek(0, 2)
        fp.seek(pos)
    except (AttributeError, OSError, ValueError):
        return None
    return end - pos


def _read_section(fp: IO[bytes], size: int, what: str) -> bytes:
    """Read ``size`` bytes plus the section CRC; refuse truncation and
    corruption with the section named."""
    raw = fp.read(size + _CRC.size)
    if len(raw) != size + _CRC.size:
        raise TraceError(f"truncated compressed trace {what}")
    data, crc = raw[:size], raw[size:]
    if _crc(data) != crc:
        raise TraceError(f"compressed trace {what} failed its CRC check")
    return data


def read_tracez(
    fp: Union[str, IO[bytes]], *, head: bytes = b""
) -> Tuple[CompressedTrace, LocationInterner]:
    """Read an RPR2TRZ container back into ``(ctrace, interner)``.

    ``head`` is an already-consumed prefix when the caller sniffed the
    magic off an unseekable stream.  Every corruption mode -- unknown
    magic, bad version, truncation anywhere, a header or section that
    lies about lengths, a rule referencing a block that does not exist
    or expanding to a different event count, any flipped bit -- raises
    :class:`~repro.errors.TraceError` before any header-sized
    allocation happens.
    """
    if isinstance(fp, str):
        with open(fp, "rb") as handle:
            return read_tracez(handle)
    raw_head = head + fp.read(_ZHEADER.size + _CRC.size - len(head))
    if len(raw_head) < _ZHEADER.size + _CRC.size:
        raise TraceError("truncated compressed trace header")
    head_bytes, head_crc = raw_head[: _ZHEADER.size], raw_head[_ZHEADER.size:]
    (
        magic, endian, version, block_width, n_events, n_blocks,
        n_rules, table_len,
    ) = _ZHEADER.unpack(head_bytes)
    if magic != MAGIC_COMPRESSED:
        raise TraceError(f"not a compressed engine trace (magic {magic!r})")
    if _crc(head_bytes) != head_crc:
        raise TraceError("compressed trace header failed its CRC check")
    if version != ZVERSION:
        raise TraceError(
            f"unsupported compressed trace version {version}"
        )
    if endian not in (0, 1):
        raise TraceError(
            f"bad endianness flag {endian} in compressed trace"
        )
    if not 0 < block_width <= _MAX_BLOCK_WIDTH:
        raise TraceError(
            f"implausible compressed trace block width {block_width}"
        )
    remaining = _bytes_remaining(fp)
    fixed_need = (
        table_len + 4 * n_blocks + 8 * n_rules + 3 * _CRC.size
    )
    if remaining is not None and fixed_need > remaining:
        raise TraceError(
            f"truncated or lying compressed trace: header claims at "
            f"least {fixed_need} section bytes but only {remaining} "
            f"remain"
        )
    interner = _decode_table(_read_section(fp, table_len, "location table"))
    lengths = array("I")
    lengths.frombytes(_read_section(fp, 4 * n_blocks, "length section"))
    if sys.byteorder != "little":
        lengths.byteswap()
    for i, length in enumerate(lengths):
        if not 0 < length <= block_width:
            raise TraceError(
                f"compressed trace block {i} claims {length} events "
                f"(width {block_width})"
            )
    total = sum(lengths)
    payload_need = 9 * total
    remaining = _bytes_remaining(fp)
    if remaining is not None and payload_need + _CRC.size > remaining:
        raise TraceError(
            f"truncated or lying compressed trace: blocks claim "
            f"{payload_need} payload bytes but only {remaining} remain"
        )
    payload = _read_section(fp, payload_need, "block payload")
    raw_rules = _read_section(fp, 8 * n_rules, "rule section")
    blocks: List[EventBatch] = []
    foreign = endian != _native_flag()
    ops_off, a_off, b_off = 0, total, 5 * total
    for length in lengths:
        ops = array("B", payload[ops_off: ops_off + length])
        av = array("i", payload[a_off: a_off + 4 * length])
        bv = array("i", payload[b_off: b_off + 4 * length])
        if foreign:
            av.byteswap()
            bv.byteswap()
        blocks.append(EventBatch(ops, av, bv))
        ops_off += length
        a_off += 4 * length
        b_off += 4 * length
    rules: List[Tuple[int, int]] = []
    expanded = 0
    for i in range(n_rules):
        bid, rep = _RULE.unpack_from(raw_rules, 8 * i)
        if bid >= n_blocks:
            raise TraceError(
                f"compressed trace rule {i} references block {bid} of "
                f"{n_blocks}"
            )
        if rep < 1:
            raise TraceError(
                f"compressed trace rule {i} has zero repeat count"
            )
        if rules and rules[-1][0] == bid:
            rules[-1] = (bid, rules[-1][1] + rep)
        else:
            rules.append((bid, rep))
        expanded += rep * lengths[bid]
    if expanded != n_events:
        raise TraceError(
            f"compressed trace rules expand to {expanded} events but "
            f"the header claims {n_events}"
        )
    ctrace = CompressedTrace(block_width, blocks, rules)
    return ctrace, interner


class MappedCompressedTrace:
    """A compressed trace file opened for detection, with the same
    surface as :class:`~repro.engine.tracefile.MappedTrace` where that
    makes sense: ``n_events``/``len``, ``interner``, ``batch()``, and
    context-manager close.

    Compressed containers are small by construction (that is the
    point), so unlike the raw format there is nothing to be gained by
    keeping the file mapped -- the container is fully validated and
    materialized into its unique blocks eagerly, and ``ctrace`` exposes
    the compressed form for the memoized ingest path.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        with open(path, "rb") as handle:
            self.ctrace, self.interner = read_tracez(handle)
        self.n_events = self.ctrace.n_events
        self.block_width = self.ctrace.block_width
        self._closed = False

    def __len__(self) -> int:
        return self.n_events

    @property
    def closed(self) -> bool:
        return self._closed

    def batch(
        self, start: int = 0, stop: Optional[int] = None
    ) -> EventBatch:
        """Materialize events ``[start, stop)`` as an
        :class:`EventBatch` (decompresses; bounds-checked)."""
        if stop is None:
            stop = self.n_events
        if not 0 <= start <= stop <= self.n_events:
            raise TraceError(
                f"bad trace slice [{start}:{stop}) of "
                f"{self.n_events} events"
            )
        if self._closed:
            raise TraceError(f"mapped trace {self.path!r} is closed")
        full = self.ctrace.decompress()
        return EventBatch(
            full.ops[start:stop], full.a[start:stop], full.b[start:stop]
        )

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "MappedCompressedTrace":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (
            f"MappedCompressedTrace({self.path!r}, "
            f"n_events={self.n_events}, {state})"
        )
