"""Detection over compressed traces without decompression.

:class:`BlockMemo` drives a detector through a
:class:`~repro.compress.blocks.CompressedTrace` block by block.  The
first time a memoizable block is seen in a given detector state it is
scanned once with the engine's ordinary kernel and the *state
transition* is recorded; every later occurrence whose entry state
matches replays the recorded transition -- shadow-cell writes, epoch
updates, race reports re-based to the current stream position -- in
O(locations) instead of O(events).  A block repeated via a run-length
rule collapses further: once a replay's exit digest equals its entry
digest the state is a fixpoint, and the remaining repeats reduce to an
``op_index`` advance plus race-template replication.

Soundness
---------
A block is *memo-eligible* (:meth:`CompressedTrace.block_info`) when it
is access-only and single-task.  During such a block no structural
event runs, so the happens-before state (union-find / interval columns)
is frozen; the access kernels then read only

* the raw per-location shadow cells,
* the *resolution* of each cell value against the acting task
  (``label[find(x)]`` + effective visited flag for the 2D kernel,
  ``ordered(x)`` for depa), and
* the per-location access epoch (2D kernel, when enabled),

all of which the entry digest captures exactly -- including raw cell
values, because race reports carry them as ``prior_repr`` and folds
write them back when the prior accessor is unordered.  Values a block
writes into cells are drawn from ``{t}`` |cup| the digested entry
values, and the acting task ``t`` resolves to itself while live, so
every read the kernel performs during the block is a function of
(block content, digest).  Equal content + equal digest therefore imply
an identical transition: same exit cells, same epochs, same races at
the same relative offsets.  Racing blocks memoize as well -- their
reports are part of the transition.

What is *not* replayed, deliberately: union-find ``find``/hop counters
and path-compression pointer moves.  The batch kernel's same-epoch fast
path already lets those diverge from the per-event run (see
:func:`repro.engine.ingest._ingest_fast`); the memo extends that
precedent from repeated accesses to repeated blocks.

Anything else -- structural blocks, multi-task blocks, foreign
detectors, entry states the digest cannot capture (wrong depa stack
top, unknown/halted task) -- falls back to the ordinary batch kernels
via :func:`repro.engine.ingest._ingest_batch`, preserving exact typed
errors at the exact ``op_index``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.detector import RaceDetector2D
from repro.core.reports import RaceReport
from repro.detectors.depa import DePaDetector
from repro.engine.batch import EventBatch

from repro.compress.blocks import CompressedTrace

__all__ = ["BlockMemo"]


class _Summary:
    """One recorded block transition: apply-able exit state."""

    __slots__ = ("n", "races", "cells", "epochs", "exit_digest")

    def __init__(
        self,
        n: int,
        races: Tuple[Tuple[Any, Any, Any, Any, int], ...],
        cells: Tuple[Tuple[int, Any, Any], ...],
        epochs: Tuple[Tuple[int, Optional[int]], ...],
        exit_digest: Any,
    ) -> None:
        self.n = n
        self.races = races
        self.cells = cells
        self.epochs = epochs
        self.exit_digest = exit_digest


class BlockMemo:
    """Per-detector cache of block state transitions.

    Summaries are keyed by ``(block content, entry-state digest)`` --
    content, not block id, so identical blocks arriving in different
    containers (successive serve CBATCH frames, re-read files) share
    cached transitions.  ``hits`` / ``misses`` / ``fallbacks`` count
    expanded blocks replayed from cache, scanned-and-recorded, and
    routed to the ordinary kernels respectively.
    """

    __slots__ = (
        "detector", "hits", "misses", "fallbacks", "_mode", "_slots",
        "_entries",
    )

    def __init__(self, detector: Any) -> None:
        self.detector = detector
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0
        if type(detector) is RaceDetector2D and not detector._literal:
            self._mode: Optional[str] = "kernel"
        elif isinstance(detector, DePaDetector):
            self._mode = "depa"
        else:
            self._mode = None
        # content triple -> dense slot id; (slot, digest) -> _Summary
        self._slots: Dict[Tuple[bytes, bytes, bytes], int] = {}
        self._entries: Dict[Tuple[int, Any], _Summary] = {}

    # -- entry state digests -------------------------------------------------

    def _digest(self, t: int, locs: Tuple[int, ...]) -> Any:
        if self._mode == "kernel":
            return self._digest_kernel(t, locs)
        return self._digest_depa(t, locs)

    def _digest_kernel(self, t: int, locs: Tuple[int, ...]) -> Any:
        """Entry state of the 2D kernel over ``locs`` for acting task
        ``t``, or None when the block must fall back (bad/halted task).

        Per location: the raw cell values plus, for each present value,
        its set label and that label's *effective* visited flag -- the
        flag the scan will see, i.e. forced True for ``t`` itself
        because the kernel marks the acting task visited before its
        first supremum query.  The ``find`` walks here never compress,
        so digesting is observation-only.
        """
        det = self.detector
        visited = det._visited
        if t < 0 or t >= len(visited) or det._halted[t]:
            return None
        uf = det._uf
        parent = uf._parent
        label = uf._label
        cells = det.shadow._cells
        epoch = det._epoch
        parts: List[Any] = []
        for k in locs:
            cell = cells.get(k)
            if cell is None:
                parts.append(None)
                continue
            r, w = cell
            if r is None:
                rr = None
            else:
                x = r
                while parent[x] != x:
                    x = parent[x]
                lbl = label[x]
                rr = (r, lbl, lbl == t or visited[lbl])
            if w is None:
                ww = None
            else:
                x = w
                while parent[x] != x:
                    x = parent[x]
                lbl = label[x]
                ww = (w, lbl, lbl == t or visited[lbl])
            parts.append(
                (rr, ww, epoch.get(k) if epoch is not None else None)
            )
        return tuple(parts)

    def _digest_depa(self, t: int, locs: Tuple[int, ...]) -> Any:
        """Entry state of the depa kernel: raw cells + ordered bits.

        Digestable only when ``t`` is already the stack top (the
        per-access precondition) and every location is a dense interned
        id living in the flat cell column.
        """
        det = self.detector
        stack = det._stack
        if not stack or stack[-1] != t:
            return None
        cells = det._cells
        n2 = len(cells)
        ordered = det.ordered
        parts: List[Any] = []
        for k in locs:
            if k < 0:
                return None
            i = k + k
            if i < n2:
                r, w = cells[i], cells[i + 1]
            else:
                r, w = -1, -1
            parts.append(
                (
                    r, w,
                    ordered(r) if r >= 0 else None,
                    ordered(w) if w >= 0 else None,
                )
            )
        return tuple(parts)

    # -- scan (miss) and replay (hit) ----------------------------------------

    def _scan(
        self, block: EventBatch, t: int, locs: Tuple[int, ...]
    ) -> _Summary:
        """Run ``block`` through the ordinary kernel and record the
        transition.  A raised error propagates with nothing recorded
        (the kernels reconcile partial state themselves)."""
        from repro.engine.ingest import _ingest_batch

        det = self.detector
        base = det.op_index
        nr = len(det.races)
        _ingest_batch(det, block)
        races = tuple(
            (r.loc, r.kind, r.prior_kind, r.prior_repr, r.op_index - base)
            for r in det.races[nr:]
        )
        if self._mode == "kernel":
            cells = det.shadow._cells
            exit_cells = tuple(
                (k, cells[k][0], cells[k][1]) for k in locs
            )
            epoch = det._epoch
            epochs: Tuple[Tuple[int, Optional[int]], ...] = (
                tuple((k, epoch.get(k)) for k in locs)
                if epoch is not None
                else ()
            )
        else:
            cell = det._cell
            exit_cells = tuple((k,) + tuple(cell(k)) for k in locs)
            epochs = ()
        return _Summary(
            len(block), races, exit_cells, epochs, self._digest(t, locs)
        )

    def _apply(self, summary: _Summary, t: int) -> None:
        det = self.detector
        base = det.op_index
        det.op_index = base + summary.n
        if self._mode == "kernel":
            det._visited[t] = True
            shadow = det.shadow
            cells = shadow._cells
            entries = shadow._entries
            peak = shadow.peak_entries_per_loc
            for k, r, w in summary.cells:
                cells[k] = [r, w]
                n = (r is not None) + (w is not None)
                entries[k] = n
                if n > peak:
                    peak = n
            shadow.peak_entries_per_loc = peak
            epoch = det._epoch
            if epoch is not None:
                for k, v in summary.epochs:
                    if v is not None:
                        epoch[k] = v
        else:
            cells = det._cells
            for k, r, w in summary.cells:
                det._ensure_loc(k)
                cells[k + k] = r
                cells[k + k + 1] = w
        if summary.races:
            races = det.races
            for loc, kind, pkind, prepr, rel in summary.races:
                races.append(
                    RaceReport(
                        loc=loc, task=t, kind=kind, prior_kind=pkind,
                        prior_repr=prepr, op_index=base + rel,
                    )
                )

    def _apply_fixpoint(self, summary: _Summary, t: int, reps: int) -> None:
        """Replay ``reps`` further occurrences whose entry state equals
        the summary's exit state: the transition is idempotent on
        cells/epochs, so only the stream position moves and the races
        replicate."""
        det = self.detector
        n = summary.n
        base = det.op_index
        det.op_index = base + reps * n
        if summary.races:
            races = det.races
            for i in range(reps):
                off = base + i * n
                for loc, kind, pkind, prepr, rel in summary.races:
                    races.append(
                        RaceReport(
                            loc=loc, task=t, kind=kind, prior_kind=pkind,
                            prior_repr=prepr, op_index=off + rel,
                        )
                    )

    # -- the drive loop ------------------------------------------------------

    def run(self, ctrace: CompressedTrace) -> int:
        """Ingest one compressed trace; returns expanded event count."""
        from repro.engine.ingest import _ingest_batch

        det = self.detector
        blocks = ctrace.blocks
        if self._mode is None:
            for bid, rep in ctrace.rules:
                block = blocks[bid]
                for _ in range(rep):
                    _ingest_batch(det, block)
                self.fallbacks += rep
            return ctrace.n_events
        slots: List[Optional[int]] = [None] * len(blocks)
        for bid, rep in ctrace.rules:
            block = blocks[bid]
            info = ctrace.block_info(bid)
            if info is None:
                for _ in range(rep):
                    _ingest_batch(det, block)
                self.fallbacks += rep
                continue
            t, locs = info
            slot = slots[bid]
            if slot is None:
                key = ctrace.block_key(bid)
                slot = self._slots.setdefault(key, len(self._slots))
                slots[bid] = slot
            done = 0
            while done < rep:
                digest = self._digest(t, locs)
                if digest is None:
                    _ingest_batch(det, block)
                    self.fallbacks += 1
                    done += 1
                    continue
                entry = self._entries.get((slot, digest))
                if entry is None:
                    entry = self._scan(block, t, locs)
                    self._entries[(slot, digest)] = entry
                    self.misses += 1
                    done += 1
                    continue
                self._apply(entry, t)
                self.hits += 1
                done += 1
                if done < rep and entry.exit_digest == digest:
                    rest = rep - done
                    self._apply_fixpoint(entry, t, rest)
                    self.hits += rest
                    done = rep
        return ctrace.n_events
