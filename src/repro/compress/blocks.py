"""Block-dedup grammar compression over the columnar batch layout.

The compressor is deliberately simple: slice the event stream into
fixed-width blocks, intern each distinct ``(ops, a, b)`` column triple
once, and represent the stream as run-length rules over block ids.
Depth-one grammars are all the loop-heavy streams need -- a worker that
repeats a fixed access pattern whose period divides the block width
produces *identical* aligned blocks, so its whole run collapses to one
interned block plus one ``(id, repeat)`` rule.

The interned blocks stay ordinary :class:`~repro.engine.batch.
EventBatch` columns, which is what lets the detection side
(:mod:`repro.compress.memo`) scan a block once and replay it as a
summary, and lets every fallback path reuse the engine's existing
kernels on the cached per-block batches unchanged.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.engine.batch import OP_READ, OP_WRITE, EventBatch
from repro.errors import ProgramError
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["DEFAULT_BLOCK_WIDTH", "CompressedTrace", "compress"]

#: default events per block.  Loop bodies whose period divides this
#: width dedup perfectly; 256 keeps even unique blocks cache-friendly
#: and bounds the memo's per-summary state.
DEFAULT_BLOCK_WIDTH = 256

#: per-block eligibility info for the memoized kernel:
#: ``(acting_task, locations in first-touch order)`` for single-task
#: access-only blocks, None for everything else
BlockInfo = Optional[Tuple[int, Tuple[int, ...]]]


class CompressedTrace:
    """A batch in block-dedup compressed form.

    Attributes
    ----------
    block_width:
        The fixed slicing width the stream was cut at (the last block
        of the stream may be shorter).
    blocks:
        The interned distinct blocks, each an
        :class:`~repro.engine.batch.EventBatch`; a block id is an index
        into this list.  Consumers must not mutate these -- rules may
        reference one block many times.
    rules:
        The run-length rule stream: ``(block_id, repeat)`` pairs whose
        expansion, in order, is the original stream.
    n_events:
        Total events the rules expand to (``len(self)``).
    """

    __slots__ = ("block_width", "blocks", "rules", "n_events", "_info")

    def __init__(
        self,
        block_width: int,
        blocks: List[EventBatch],
        rules: List[Tuple[int, int]],
    ) -> None:
        if block_width < 1:
            raise ProgramError(
                f"block width must be positive, got {block_width}"
            )
        self.block_width = block_width
        self.blocks = blocks
        self.rules = rules
        self.n_events = sum(len(blocks[bid]) * rep for bid, rep in rules)
        self._info: Dict[int, BlockInfo] = {}

    def __len__(self) -> int:
        return self.n_events

    def block_count(self) -> int:
        """Blocks in the *expanded* stream (sum of rule repeats)."""
        return sum(rep for _, rep in self.rules)

    def decompress(self) -> EventBatch:
        """Expand back to the original batch, bit-exactly."""
        out = EventBatch()
        blocks = self.blocks
        for bid, rep in self.rules:
            block = blocks[bid]
            for _ in range(rep):
                out.extend(block)
        return out

    def block_key(self, bid: int) -> Tuple[bytes, bytes, bytes]:
        """Content identity of block ``bid`` (column bytes); the memo
        keys its summaries by this, so identical blocks arriving in
        different containers (e.g. successive CBATCH frames) share
        cached transitions."""
        block = self.blocks[bid]
        return (
            block.ops.tobytes(), block.a.tobytes(), block.b.tobytes()
        )

    def block_info(self, bid: int) -> BlockInfo:
        """Memo eligibility of block ``bid`` (cached).

        A block is memoizable when it is *access-only* (every opcode is
        a read or write) and *single-task* (one acting task, the shape
        every maximal access run of a serial fork-first stream has):
        during such a block no structural event can change the
        happens-before state, which is what makes a cached state
        transition sound.  Returns ``(task, locations)`` with the
        locations in first-touch order, or None.
        """
        info = self._info.get(bid)
        if info is None and bid not in self._info:
            info = self._info[bid] = _block_info(self.blocks[bid])
        return info

    def payload_bytes(self) -> int:
        """Bytes of unique-block column payload plus rules -- the size
        the compressed form moves/stores, excluding fixed headers."""
        per_block = sum(
            len(block.ops) * (block.ops.itemsize + 2 * block.a.itemsize)
            for block in self.blocks
        )
        return per_block + 8 * len(self.rules)

    def __repr__(self) -> str:
        return (
            f"CompressedTrace(width={self.block_width}, "
            f"{len(self.blocks)} unique blocks, {len(self.rules)} rules, "
            f"{self.n_events} events)"
        )


def _block_info(block: EventBatch) -> BlockInfo:
    task = -1
    locs: List[int] = []
    seen = set()
    for op, a, b in zip(block.ops, block.a, block.b):
        if op != OP_READ and op != OP_WRITE:
            return None
        if task < 0:
            task = a
        elif a != task:
            return None
        if b not in seen:
            seen.add(b)
            locs.append(b)
    if task < 0:
        return None
    return task, tuple(locs)


def compress(
    batch: EventBatch,
    block_width: int = DEFAULT_BLOCK_WIDTH,
    *,
    registry: Optional[MetricsRegistry] = None,
) -> CompressedTrace:
    """Compress one batch into block-dedup form.

    Slices ``batch`` into ``block_width``-event blocks (the final block
    may be shorter), interns repeated blocks by column-byte identity,
    and run-length encodes consecutive repeats of the same block id.
    ``compress(batch).decompress()`` is column-byte identical to
    ``batch`` for every input.

    Dedup activity is counted on ``registry`` (default: the process
    registry) as ``compress_blocks_total`` / ``compress_blocks_deduped_
    total``, labelled ``component="compress"``.
    """
    if block_width < 1:
        raise ProgramError(f"block width must be positive, got {block_width}")
    reg = registry if registry is not None else get_registry()
    labels = {"component": "compress"}
    c_total = reg.counter(
        "compress_blocks_total", "blocks sliced by the compressor",
        labels=labels,
    )
    c_deduped = reg.counter(
        "compress_blocks_deduped_total",
        "repeated blocks folded onto an interned one", labels=labels,
    )
    ops, a, b = batch.ops, batch.a, batch.b
    n = len(batch)
    ids: Dict[Tuple[bytes, bytes, bytes], int] = {}
    blocks: List[EventBatch] = []
    rules: List[Tuple[int, int]] = []
    total = deduped = 0
    w = block_width
    for start in range(0, n, w):
        stop = min(start + w, n)
        key = (
            ops[start:stop].tobytes(),
            a[start:stop].tobytes(),
            b[start:stop].tobytes(),
        )
        bid = ids.get(key)
        if bid is None:
            bid = ids[key] = len(blocks)
            blocks.append(
                EventBatch(
                    array("B", key[0]), array("i", key[1]),
                    array("i", key[2]),
                )
            )
        else:
            deduped += 1
        total += 1
        if rules and rules[-1][0] == bid:
            rules[-1] = (bid, rules[-1][1] + 1)
        else:
            rules.append((bid, 1))
    c_total.inc(total)
    c_deduped.inc(deduped)
    return CompressedTrace(block_width, blocks, rules)
