"""Grammar-compressed traces: block dedup, RPR2TRZ, memoized detection.

The loop-heavy streams :mod:`repro.workloads.racegen` emits are
massively repetitive, yet every layer built before this one -- RPR2TRC
files, serve BATCH frames, the depa kernel -- moves and scans raw
columnar events.  Following "Data Race Detection on Compressed Traces"
(Kini/Mathur/Viswanathan, PAPERS.md), this package makes repetition pay
three times over:

* :mod:`repro.compress.blocks` splits a columnar
  :class:`~repro.engine.batch.EventBatch` into fixed-width blocks,
  interns repeated blocks, and emits a run-length rule stream over
  block ids -- a straight-line-program restricted to depth one, which
  is exactly what block-periodic loops compress to;
* :mod:`repro.compress.container` persists that form as the versioned,
  CRC-checked **RPR2TRZ** container (RPR2TRC's crash-safety posture:
  every corruption mode answers with a typed
  :class:`~repro.errors.TraceError`, never an allocation blow-up);
* :mod:`repro.compress.memo` runs detection over the compressed form
  *without decompressing*: repeated access-only blocks are scanned
  once and replayed as cached state-transition summaries, keyed by
  ``(block content, entry-state digest)``.

See ``docs/COMPRESSION.md`` for the container layout and the
memoization soundness argument.
"""

from repro.compress.blocks import (
    DEFAULT_BLOCK_WIDTH,
    CompressedTrace,
    compress,
)
from repro.compress.container import (
    MappedCompressedTrace,
    read_tracez,
    write_tracez,
)
from repro.compress.memo import BlockMemo

__all__ = [
    "DEFAULT_BLOCK_WIDTH",
    "CompressedTrace",
    "compress",
    "read_tracez",
    "write_tracez",
    "MappedCompressedTrace",
    "BlockMemo",
]
