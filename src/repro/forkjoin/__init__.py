"""Structured fork-join programs and their serial fork-first execution.

Section 5 of the paper restricts fork-join so that the produced task
graphs are exactly the two-dimensional lattices:

* all live tasks form a line ``L . x . R`` (:mod:`repro.forkjoin.line`);
* ``fork`` inserts the child immediately left of the parent;
* a task may ``join`` only its immediate left neighbour, removing it.

Programs are written as generator functions yielding effects
(:mod:`repro.forkjoin.program`), executed serially fork-first by
:mod:`repro.forkjoin.interpreter`, which streams events to race
detectors and can reconstruct the full operation-level task graph
(:mod:`repro.forkjoin.taskgraph`).

Classical structured-parallel constructs are provided as sugar on top:
Cilk-style spawn-sync (:mod:`repro.forkjoin.spawn_sync`), X10-style
async-finish (:mod:`repro.forkjoin.async_finish`) and Cilk-P style
linear pipelines (:mod:`repro.forkjoin.pipeline`).
"""

from repro.forkjoin.program import (
    TaskHandle,
    fork,
    join,
    join_left,
    read,
    write,
    step,
)
from repro.forkjoin.interpreter import Execution, run
from repro.forkjoin.replay import replay_events
from repro.forkjoin.schedules import is_serial_fork_first, random_schedule
from repro.forkjoin.synthesis import SynthesizedExecution, synthesize_events
from repro.forkjoin.taskgraph import TaskGraph, build_task_graph

__all__ = [
    "TaskHandle",
    "fork",
    "join",
    "join_left",
    "read",
    "write",
    "step",
    "Execution",
    "run",
    "replay_events",
    "random_schedule",
    "is_serial_fork_first",
    "SynthesizedExecution",
    "synthesize_events",
    "TaskGraph",
    "build_task_graph",
]
