"""One-shot futures over structured fork-join.

Section 2.2 of the paper motivates fork and join as primitives "general
enough [to] naturally capture a variety of other constructs such as
futures".  In this restricted setting a future is a task created with
``ctx.future(body, ...)`` and consumed exactly once with
``ctx.force(handle)``, which yields the body's return value.

The structural restriction carries over: forcing must target the current
immediate left neighbour.  That admits precisely the 2D-lattice shapes
-- e.g. Figure 2 is the future pattern "main creates future ``a``;
*another* task ``c`` forces it" -- while rejecting exchanges that would
require crossing the task line.  To make common linear patterns
ergonomic, :meth:`FutureTask.force` also accepts any *unforced* future
whose still-pending predecessors in the line all belong to the forcing
task; those are forced (and their values cached) along the way, since
each becomes the left neighbour in turn.

Usage::

    @futures
    def main(ctx):
        a = yield from ctx.future(expensive, 1)
        b = yield from ctx.future(expensive, 2)
        total = (yield from ctx.force(b)) + (yield from ctx.force(a))
        return total

Unforced futures at the end of a task body are drained automatically
(their values discarded), keeping the task graph single-sink.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict, Iterator, List

from repro.errors import StructureError
from repro.forkjoin.program import (
    Body,
    TaskHandle,
    fork as _fork,
    join as _join,
)

__all__ = ["FutureTask", "futures"]


class FutureTask:
    """Per-task future context: create with ``future``, consume with
    ``force``.

    Tracks this task's outstanding futures as a stack (they sit to the
    task's left in creation order) and caches values of futures forced
    early while reaching a deeper one.
    """

    __slots__ = ("handle", "_pending", "_cache")

    def __init__(self, handle: TaskHandle) -> None:
        self.handle = handle
        self._pending: List[TaskHandle] = []
        self._cache: Dict[int, Any] = {}

    def future(self, body: Callable, *args: Any) -> Iterator:
        """Create a future running ``body(ctx, *args)``; yields its handle.

        ``body`` may be a plain fork-join generator or another
        :func:`futures`-decorated function.
        """
        wrapped = body if getattr(body, "_repro_futures", False) else futures(body)
        h = yield _fork(wrapped, *args, name=getattr(body, "__name__", ""))
        self._pending.append(h)
        return h

    def force(self, handle: TaskHandle) -> Iterator:
        """Force a future created by *this* task; yields its value.

        Futures created after ``handle`` (and not yet forced) are
        forced first -- they are the intervening left neighbours --
        and their values are cached for later ``force`` calls.
        """
        if handle.tid in self._cache:
            return self._cache.pop(handle.tid)
        if handle not in self._pending:
            raise StructureError(
                f"{handle} is not an outstanding future of task "
                f"{self.handle.tid}"
            )
        while self._pending:
            top = self._pending.pop()
            value = yield _join(top)
            if top == handle:
                return value
            self._cache[top.tid] = value
        raise AssertionError("unreachable: handle was in _pending")

    @property
    def outstanding(self) -> int:
        """Futures created but not yet forced."""
        return len(self._pending)

    def drain(self) -> Iterator:
        """Force all outstanding futures, discarding their values."""
        while self._pending:
            yield _join(self._pending.pop())
        self._cache.clear()


def futures(fn: Callable) -> Body:
    """Decorator giving a task body a :class:`FutureTask` context.

    The wrapped body drains unforced futures on exit, mirroring the
    implicit sync of spawn-sync.
    """

    @functools.wraps(fn)
    def body(handle: TaskHandle, *args: Any):
        ctx = FutureTask(handle)
        result = yield from fn(ctx, *args)
        yield from ctx.drain()
        return result

    body._repro_futures = True  # type: ignore[attr-defined]
    return body
