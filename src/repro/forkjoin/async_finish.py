"""X10/Habanero-style async-finish as sugar over structured fork-join.

``async`` activates a task; ``finish { block }`` waits for every task
transitively created inside the block -- including *escaped* asyncs
launched by descendants -- before continuing (Section 2.1).

The translation exploits a line invariant: every task created during a
finish block's dynamic extent lives (if still unjoined) contiguously to
the left of the finish's owner, because forks insert immediately left
and joins only remove.  So the owner simply counts the block's
outstanding tasks on a shared *finish frame* and pops its left neighbour
that many times -- each pop is a legal ``join_left``.  An async created
by a descendant registers with the innermost finish frame inherited at
its own fork point, which is exactly X10's escape semantics.

Usage::

    @x10
    def main(ctx):
        def block():
            yield from ctx.async_(producer, queue)
            yield from ctx.async_(consumer, queue)
            yield read("config")
        yield from ctx.finish(block)

The whole program body runs inside an implicit top-level finish, as in
X10's ``main``.  Since async-finish is a sub-discipline of bracketed
fork-join, the resulting task graphs are series-parallel.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterator

from repro.forkjoin.program import (
    Body,
    TaskHandle,
    annotate as _annotate,
    fork as _fork,
    join_left as _join_left,
)

__all__ = ["FinishFrame", "X10Task", "x10"]


class FinishFrame:
    """Counts outstanding tasks registered to one ``finish`` scope."""

    __slots__ = ("pending",)

    def __init__(self) -> None:
        self.pending = 0


class X10Task:
    """Per-task async-finish context.

    ``_frame`` is the innermost enclosing finish frame -- inherited from
    the forking task at creation, then shadowed by the task's own
    ``finish`` blocks.
    """

    __slots__ = ("handle", "_frame")

    def __init__(self, handle: TaskHandle, frame: FinishFrame) -> None:
        self.handle = handle
        self._frame = frame

    def async_(self, fn: Callable, *args: Any) -> Iterator:
        """``async fn(...)``: activate a task governed by the innermost
        enclosing finish.  Returns the child's handle via ``yield from``."""
        frame = self._frame
        frame.pending += 1

        @functools.wraps(fn)
        def child_body(handle: TaskHandle, *a: Any):
            ctx = X10Task(handle, frame)
            result = yield from fn(ctx, *a)
            return result

        child = yield _fork(child_body, *args, name=getattr(fn, "__name__", ""))
        yield _annotate("async", child.tid)
        return child

    def finish(self, block: Callable[[], Iterator]) -> Iterator:
        """``finish { block }``: run the block, then join every task it
        (transitively) created, by repeatedly joining the left neighbour."""
        outer = self._frame
        frame = FinishFrame()
        self._frame = frame
        yield _annotate("finish_start")
        try:
            result = yield from block()
        finally:
            self._frame = outer
        while frame.pending:
            yield _join_left()
            frame.pending -= 1
        yield _annotate("finish_end")
        return result


def x10(fn: Callable) -> Body:
    """Decorator turning an async-finish generator into a fork-join body.

    The body runs inside an implicit top-level finish.
    """

    @functools.wraps(fn)
    def body(handle: TaskHandle, *args: Any):
        root_frame = FinishFrame()
        ctx = X10Task(handle, root_frame)
        yield _annotate("finish_start")
        result = yield from fn(ctx, *args)
        while root_frame.pending:
            yield _join_left()
            root_frame.pending -= 1
        yield _annotate("finish_end")
        return result

    return body
