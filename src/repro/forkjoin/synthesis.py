"""Synthesizing structured fork-join executions from 2D lattices.

Theorem 6 says the Figure 9 rules generate only 2D-lattice task graphs;
the paper adds that "an extension of the rules with forking and joining
any number of tasks would capture **all possible** 2D lattices".  This
module realises that converse constructively: given any planar monotone
diagram, it synthesizes a valid structured fork-join **event stream**
whose task graph is order-isomorphic to the input lattice.

Construction (all pieces are the paper's own):

1. compute the non-separating traversal and its delayed variant;
2. decompose the vertices into threads -- maximal paths of non-delayed
   last-arcs (Section 4);
3. walk the delayed traversal, emitting

   * ``fork``  at every non-delayed cross-thread arc (exactly one per
     non-root thread, entering its first vertex),
   * ``join``  at every delayed arc (they always run thread-last vertex
     -> join vertex),
   * ``halt``  at every stop-arc (the thread's last transition),
   * a ``step`` -- or the caller-supplied read/write accesses -- at
     every vertex visit.

Because the walk order *is* a delayed non-separating traversal, the
synthesized stream replays serially fork-first and passes the full line
discipline (checked by :func:`repro.forkjoin.replay.replay_events`).
Combined with per-vertex access annotations this turns the *online*
detector loose on arbitrary annotated 2D lattices -- no program needed.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.reports import AccessKind
from repro.core.traversal import delay_traversal, threads_of_delayed
from repro.errors import GraphError
from repro.events import (
    Arc,
    Event,
    ForkEvent,
    HaltEvent,
    JoinEvent,
    Loop,
    ReadEvent,
    StepEvent,
    StopArc,
    WriteEvent,
)
from repro.lattice.dominance import Diagram
from repro.lattice.nonseparating import nonseparating_traversal
from repro.lattice.poset import Poset

__all__ = ["SynthesizedExecution", "synthesize_events"]

#: optional per-vertex accesses, as in the offline detector
AccessMap = Mapping[Hashable, Sequence[Tuple[Hashable, AccessKind]]]


class SynthesizedExecution:
    """The synthesized stream plus the vertex <-> event correspondence.

    ``step_event_of[v]`` is the stream index of the event representing
    input vertex ``v`` (its step, or its first access when annotated);
    ``thread_of[v]`` is the task id executing it.
    """

    def __init__(
        self,
        events: List[Event],
        step_event_of: Dict[Hashable, int],
        thread_of: Dict[Hashable, int],
    ) -> None:
        self.events = events
        self.step_event_of = step_event_of
        self.thread_of = thread_of

    @property
    def task_count(self) -> int:
        return 1 + sum(isinstance(e, ForkEvent) for e in self.events)


def synthesize_events(
    diagram: Diagram,
    accesses: Optional[AccessMap] = None,
) -> SynthesizedExecution:
    """Synthesize a fork-join execution realising ``diagram``'s lattice.

    The diagram must be single-source and single-sink (a bounded
    lattice); otherwise no fork-join execution can realise it and
    :class:`GraphError` is raised.
    """
    graph = diagram.graph
    if len(graph.sources()) != 1 or len(graph.sinks()) != 1:
        raise GraphError(
            "synthesis needs a single-source, single-sink diagram"
        )
    accesses = accesses or {}
    poset = Poset(graph)
    delayed = delay_traversal(nonseparating_traversal(diagram), poset.leq)

    thread_index: Dict[Hashable, int] = {}
    for k, chain in enumerate(threads_of_delayed(delayed)):
        for v in chain:
            thread_index[v] = k

    # Thread indices are traversal-discovery order; task ids must be
    # dense in *fork* order.  The root thread (containing the source)
    # gets id 0; the rest are assigned when their fork arc is walked.
    tid_of: Dict[int, int] = {}
    next_tid = 1
    events: List[Event] = []
    step_event_of: Dict[Hashable, int] = {}
    thread_of: Dict[Hashable, int] = {}
    stopped: set = set()  # vertices whose stop-arc has passed

    source = graph.sources()[0]
    sink = graph.sinks()[0]
    if thread_index[source] != thread_index[sink]:
        # The initial task is always rightmost in the line, so nobody
        # can join it: the source's thread must run through to the sink.
        # This holds for every diagram traversed right-boundary-last
        # (the source's chain of non-delayed last-arcs is the diagram's
        # right boundary, which ends at the sink).
        raise GraphError(
            "source and sink fall into different threads; the diagram "
            "is not realisable as a fork-join execution"
        )
    tid_of[thread_index[source]] = 0

    # Delayed (join) arcs precede the fork arc of their target's thread
    # in the traversal (the paper's T -> T' placement), but the fork
    # must assign the task id first -- buffer joins until the visit.
    pending_joins: Dict[Hashable, List[int]] = {}

    for item in delayed:
        if isinstance(item, Loop):
            v = item.vertex
            t = tid_of[thread_index[v]]
            thread_of[v] = t
            # Delayed arcs arrive in the diagram's left-to-right order;
            # the line discipline consumes neighbours right-to-left
            # (nearest first), so join in reverse.
            for joined_thread in reversed(pending_joins.pop(v, ())):
                events.append(JoinEvent(t, tid_of[joined_thread]))
            step_event_of[v] = len(events)
            vertex_accesses = accesses.get(v, ())
            if vertex_accesses:
                for loc, kind in vertex_accesses:
                    if kind is AccessKind.READ:
                        events.append(ReadEvent(t, loc, label=str(v)))
                    else:
                        events.append(WriteEvent(t, loc, label=str(v)))
            else:
                events.append(StepEvent(t, label=str(v)))
        elif isinstance(item, StopArc):
            stopped.add(item.src)
            events.append(HaltEvent(tid_of[thread_index[item.src]]))
        elif isinstance(item, Arc):
            ks, kv = thread_index[item.src], thread_index[item.dst]
            if ks == kv:
                continue  # intra-thread step chaining: no event
            if item.src in stopped:
                # A delayed last-arc: thread(dst) joins thread(src),
                # emitted at dst's visit (after dst's thread exists).
                pending_joins.setdefault(item.dst, []).append(ks)
            else:
                # The unique non-delayed cross-thread arc into the
                # child's first vertex: a fork.
                if kv in tid_of:
                    raise GraphError(
                        f"thread of {item.dst!r} forked twice; the "
                        "diagram is not a lattice cover digraph"
                    )
                tid_of[kv] = next_tid
                next_tid += 1
                events.append(ForkEvent(tid_of[ks], tid_of[kv]))
        else:  # pragma: no cover - defensive
            raise GraphError(f"unexpected traversal item {item!r}")

    # The sink's thread never halts via a stop-arc (it has no delayed
    # last-arc); it is the execution's final, root-side task.
    sink_thread = tid_of[thread_index[graph.sinks()[0]]]
    events.append(HaltEvent(sink_thread))
    return SynthesizedExecution(events, step_event_of, thread_of)
