"""Reconstructing the operation-level task graph of an execution.

The interpreter's event stream is thread-compressed; this module expands
it back to the paper's task graphs, where every transition (fork, join,
memory access, step, halt) is a vertex and arcs are the immediate
happened-before dependencies:

* consecutive transitions of one task are chained;
* ``fork`` adds an arc from the fork vertex to the child's first vertex;
* ``join`` adds an arc from the joined task's halt vertex to the join
  vertex.

Theorem 6 states these graphs are two-dimensional lattices; the tests
reconstruct graphs of random programs and check exactly that, and the
exact race oracle (:mod:`repro.detectors.oracle`) evaluates races on the
reconstruction by brute force.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.reports import AccessKind
from repro.errors import ProgramError
from repro.events import (
    Event,
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)
from repro.lattice.digraph import Digraph
from repro.lattice.poset import Poset

__all__ = ["OpVertex", "TaskGraph", "build_task_graph"]


@dataclass(frozen=True, slots=True)
class OpVertex:
    """Metadata of one task-graph vertex (one executed transition)."""

    index: int
    task: int
    kind: str  # "fork" | "join" | "read" | "write" | "step" | "halt"
    loc: Hashable = None
    label: str = ""


class TaskGraph:
    """An operation-level task graph plus its access metadata.

    Vertices are the event indices (0-based positions in the recorded
    stream); :attr:`ops` maps each to its :class:`OpVertex`.
    """

    def __init__(self, graph: Digraph, ops: Dict[int, OpVertex]) -> None:
        self.graph = graph
        self.ops = ops
        self._poset: Optional[Poset] = None

    @property
    def poset(self) -> Poset:
        """Reachability oracle over the operations (built lazily)."""
        if self._poset is None:
            self._poset = Poset(self.graph)
        return self._poset

    def accesses(self) -> List[Tuple[int, Hashable, AccessKind]]:
        """All memory accesses as ``(vertex, loc, kind)`` in program order."""
        out = []
        for i in sorted(self.ops):
            op = self.ops[i]
            if op.kind == "read":
                out.append((i, op.loc, AccessKind.READ))
            elif op.kind == "write":
                out.append((i, op.loc, AccessKind.WRITE))
        return out

    def ordered(self, x: int, y: int) -> bool:
        """Happened-before: is ``x`` ordered before ``y``?"""
        return self.poset.leq(x, y)

    def threads(self) -> Dict[int, List[int]]:
        """Vertices of each task, in execution order."""
        out: Dict[int, List[int]] = {}
        for i in sorted(self.ops):
            out.setdefault(self.ops[i].task, []).append(i)
        return out


def build_task_graph(events: Sequence[Event]) -> TaskGraph:
    """Expand a recorded event stream into the operation-level task graph.

    The stream must come from ``run(..., record_events=True)``.
    """
    g = Digraph()
    ops: Dict[int, OpVertex] = {}
    last_vertex: Dict[int, Optional[int]] = {0: None}
    fork_vertex_for: Dict[int, int] = {}
    halt_vertex: Dict[int, int] = {}

    def new_vertex(i: int, task: int, kind: str, loc=None, label="") -> int:
        ops[i] = OpVertex(i, task, kind, loc, label)
        g.add_vertex(i)
        prev = last_vertex.get(task)
        if prev is not None:
            g.add_arc(prev, i)
        elif task in fork_vertex_for:
            g.add_arc(fork_vertex_for[task], i)
        last_vertex[task] = i
        return i

    for i, ev in enumerate(events):
        if isinstance(ev, ForkEvent):
            v = new_vertex(i, ev.parent, "fork", label=ev.label)
            fork_vertex_for[ev.child] = v
            last_vertex.setdefault(ev.child, None)
        elif isinstance(ev, JoinEvent):
            v = new_vertex(i, ev.joiner, "join", label=ev.label)
            hv = halt_vertex.get(ev.joined)
            if hv is None:
                raise ProgramError(
                    f"join of task {ev.joined} before its halt event"
                )
            g.add_arc(hv, v)
        elif isinstance(ev, ReadEvent):
            new_vertex(i, ev.task, "read", ev.loc, ev.label)
        elif isinstance(ev, WriteEvent):
            new_vertex(i, ev.task, "write", ev.loc, ev.label)
        elif isinstance(ev, StepEvent):
            new_vertex(i, ev.task, "step", label=ev.label)
        elif isinstance(ev, HaltEvent):
            halt_vertex[ev.task] = new_vertex(i, ev.task, "halt", label=ev.label)
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unknown event {ev!r}")
    return TaskGraph(g, ops)
