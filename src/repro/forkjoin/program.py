"""Writing structured fork-join programs as effect generators.

A *task body* is a Python generator function.  Its first parameter is
the task's :class:`TaskHandle`; further parameters are whatever the
forking site passed.  The body performs operations by ``yield``-ing
effect values built with the helpers below::

    def worker(self, data):
        yield read(data)
        yield write("out")

    def main(self):
        w = yield fork(worker, "in")     # child handle comes back
        yield read("out")                 # races with worker's write!
        yield join(w)

Effects:

``fork(body, *args)``
    Activate a new task to run ``body(handle, *args)``; the new task is
    placed immediately left of the forker (Figure 9).  The ``yield``
    evaluates to the child's :class:`TaskHandle`.  Execution is serial
    fork-first: the child (and, recursively, everything it forks) runs
    to completion before the forker resumes -- this is the execution
    order that makes the emitted traversal delayed non-separating.

``join(handle)``
    Suspend until the task terminates.  The structured restriction
    requires ``handle`` to be the forker's immediate left neighbour in
    the task line; anything else raises
    :class:`~repro.errors.StructureError`.  The ``yield`` evaluates to
    the joined task's return value, so ``fork``/``join`` double as
    future-create/future-force (the paper: fork and join "naturally
    capture a variety of other constructs such as futures").

``read(loc)`` / ``write(loc)``
    A monitored memory access.  ``loc`` is any hashable.

``step()``
    A local computation step (no memory access); useful to model cost.

All effect helpers accept a ``label=`` keyword recorded in race reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Tuple

__all__ = [
    "TaskHandle",
    "ForkEffect",
    "JoinEffect",
    "JoinLeftEffect",
    "ReadEffect",
    "WriteEffect",
    "StepEffect",
    "AnnotateEffect",
    "fork",
    "join",
    "join_left",
    "read",
    "write",
    "step",
    "annotate",
    "Body",
]

#: A task body: generator function taking (handle, *args).
Body = Callable[..., Any]


@dataclass(frozen=True, slots=True)
class TaskHandle:
    """Identifies a running or finished task.

    ``tid`` is the dense integer id assigned at fork time (creation
    order, root = 0); ``name`` defaults to the body function's name.
    """

    tid: int
    name: str = ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<task {self.tid}:{self.name}>" if self.name else f"<task {self.tid}>"


@dataclass(frozen=True, slots=True)
class ForkEffect:
    body: Body
    args: Tuple[Any, ...] = ()
    label: str = ""
    name: str = ""


@dataclass(frozen=True, slots=True)
class JoinEffect:
    handle: TaskHandle
    label: str = ""


@dataclass(frozen=True, slots=True)
class JoinLeftEffect:
    """Join whatever task is currently the immediate left neighbour.

    This is the paper's join in its purest form (a task may *only* join
    its left neighbour, so naming it is redundant).  The ``yield``
    evaluates to the joined task's :class:`TaskHandle`.  Used by the
    async-finish and pipeline sugars, where the joining task cannot know
    the target's identity statically.
    """

    label: str = ""


@dataclass(frozen=True, slots=True)
class ReadEffect:
    loc: Hashable
    label: str = ""


@dataclass(frozen=True, slots=True)
class WriteEffect:
    loc: Hashable
    label: str = ""


@dataclass(frozen=True, slots=True)
class StepEffect:
    label: str = ""


@dataclass(frozen=True, slots=True)
class AnnotateEffect:
    """A zero-cost marker forwarded to observers, not an operation.

    Creates no task-graph vertex and no traversal item; observers that
    implement ``on_annotation(task, tag, data)`` receive it (used by the
    async-finish sugar to expose finish-scope boundaries to the
    ESP-bags baseline, which is scope-based rather than join-based).
    """

    tag: str
    data: Any = None


def fork(body: Body, *args: Any, label: str = "", name: str = "") -> ForkEffect:
    """Fork a child running ``body(child_handle, *args)``."""
    return ForkEffect(body, args, label, name or getattr(body, "__name__", ""))


def join(handle: TaskHandle, *, label: str = "") -> JoinEffect:
    """Join the given task (must be the immediate left neighbour)."""
    return JoinEffect(handle, label)


def join_left(*, label: str = "") -> JoinLeftEffect:
    """Join the current immediate left neighbour, whoever it is."""
    return JoinLeftEffect(label)


def read(loc: Hashable, *, label: str = "") -> ReadEffect:
    """Read the monitored location ``loc``."""
    return ReadEffect(loc, label)


def write(loc: Hashable, *, label: str = "") -> WriteEffect:
    """Write the monitored location ``loc``."""
    return WriteEffect(loc, label)


def step(*, label: str = "") -> StepEffect:
    """A local computation step."""
    return StepEffect(label)


def annotate(tag: str, data: Any = None) -> AnnotateEffect:
    """Emit an observer-only marker (no operation, no graph vertex)."""
    return AnnotateEffect(tag, data)
