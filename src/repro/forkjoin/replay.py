"""Replaying recorded event streams through observers, with validation.

A recorded (or synthesized -- :mod:`repro.forkjoin.synthesis`) event
stream can be re-driven through any detector without re-running the
program.  The replayer enforces the same structural rules as the live
interpreter: dense task ids in creation order, the task-line discipline
(forks insert left, joins take the immediate left neighbour), no
operations on halted tasks, and -- optionally -- no leaked tasks at the
end.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from repro.errors import ProgramError, StructureError
from repro.events import (
    Event,
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)
from repro.forkjoin.interpreter import Execution
from repro.forkjoin.line import TaskLine

__all__ = ["replay_events"]


def replay_events(
    events: Iterable[Event],
    observers: Sequence[Any] = (),
    *,
    require_all_joined: bool = True,
) -> Execution:
    """Drive ``events`` through ``observers``, validating the discipline.

    Returns an :class:`~repro.forkjoin.interpreter.Execution` whose
    counters describe the replayed stream.  Raises
    :class:`StructureError` or :class:`ProgramError` when the stream
    could not have come from a structured fork-join execution.
    """
    out = Execution(task_count=1)
    line = TaskLine(0)
    halted: set = set()
    next_tid = 1
    for ob in observers:
        ob.on_root(0)

    def check_running(t: int) -> None:
        if t in halted:
            raise StructureError(f"event on halted task {t}")
        if t not in line:
            raise StructureError(f"event on unknown task {t}")

    for ev in events:
        out.op_count += 1
        if isinstance(ev, ForkEvent):
            check_running(ev.parent)
            if ev.child != next_tid:
                raise StructureError(
                    f"fork assigns id {ev.child}, expected dense id "
                    f"{next_tid}"
                )
            next_tid += 1
            out.task_count += 1
            line.fork(ev.parent, ev.child)
            for ob in observers:
                ob.on_fork(ev.parent, ev.child)
        elif isinstance(ev, JoinEvent):
            check_running(ev.joiner)
            if ev.joined not in halted:
                raise StructureError(
                    f"join of running task {ev.joined}"
                )
            line.join(ev.joiner, ev.joined)  # left-neighbour check
            for ob in observers:
                ob.on_join(ev.joiner, ev.joined)
        elif isinstance(ev, HaltEvent):
            check_running(ev.task)
            halted.add(ev.task)
            for ob in observers:
                ob.on_halt(ev.task)
        elif isinstance(ev, ReadEvent):
            check_running(ev.task)
            for ob in observers:
                ob.on_read(ev.task, ev.loc, ev.label)
        elif isinstance(ev, WriteEvent):
            check_running(ev.task)
            for ob in observers:
                ob.on_write(ev.task, ev.loc, ev.label)
        elif isinstance(ev, StepEvent):
            check_running(ev.task)
            for ob in observers:
                ob.on_step(ev.task)
        else:
            raise ProgramError(f"not an event: {ev!r}")

    if require_all_joined:
        # A complete execution halts every task and joins all but the
        # final one (the line's sole survivor, which must be halted).
        remaining = line.snapshot()
        if len(remaining) != 1:
            raise StructureError(
                f"stream ended with unjoined tasks {remaining[:-1]}"
            )
        if remaining[0] not in halted:
            raise StructureError(
                f"stream ended with running task {remaining[0]}"
            )
    return out
