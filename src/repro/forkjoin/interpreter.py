"""Serial fork-first execution of structured fork-join programs.

Section 5: "to traverse the diagram from left to right, we can simply
execute the program serially, fork-first".  The interpreter does exactly
that -- when a task forks, the child (and transitively everything it
forks) runs to completion before the parent resumes.  Because forked
tasks sit immediately left of their parents and joins consume left
neighbours, this serial order *is* a left-to-right depth-first traversal
of the task graph, and the emitted event stream is its delayed
non-separating traversal (thread-compressed per transformation (8)):

=====================  ==========================
program transition      emitted traversal item
=====================  ==========================
``x`` forks ``y``       arc ``(x, y)``
``x`` steps             loop ``(x, x)``
``x`` joins ``y``       last-arc ``(y, x)``
``x`` halts             stop-arc ``(x, ×)``
=====================  ==========================

Observers (race detectors, tracers) receive the stream via the protocol
``on_root/on_fork/on_read/on_write/on_step/on_join/on_halt``.

The scheduler keeps an explicit stack of suspended generators, so fork
depth is bounded by memory, not the interpreter recursion limit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Tuple

from repro.errors import ProgramError, StructureError
from repro.events import (
    Event,
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)
from repro.forkjoin.line import TaskLine
from repro.forkjoin.program import (
    AnnotateEffect,
    Body,
    ForkEffect,
    JoinEffect,
    JoinLeftEffect,
    ReadEffect,
    StepEffect,
    TaskHandle,
    WriteEffect,
)

__all__ = ["Execution", "run"]


@dataclass
class Execution:
    """The outcome of one serial fork-first run.

    Attributes
    ----------
    task_count: total number of tasks created (threads, in the paper's
        thread-compression sense).
    op_count: total number of emitted transitions.
    result: the value returned by the root task body.
    events: the full event stream when ``record_events=True``
        (otherwise ``None``); feeds task-graph reconstruction.
    """

    task_count: int = 0
    op_count: int = 0
    result: Any = None
    events: Optional[List[Event]] = None


def run(
    body: Body,
    *args: Any,
    observers: Sequence[Any] = (),
    record_events: bool = False,
    require_all_joined: bool = True,
    max_ops: Optional[int] = None,
) -> Execution:
    """Execute a structured fork-join program serially, fork-first.

    Parameters
    ----------
    body:
        The root task body -- a generator function ``body(self, *args)``
        yielding effects from :mod:`repro.forkjoin.program`.
    observers:
        Objects receiving the event stream (typically race detectors).
    record_events:
        Keep the full event list on the returned :class:`Execution`
        (needed for task-graph reconstruction; off by default to keep
        big benchmark runs at O(tasks) memory).
    require_all_joined:
        When true (default), the program must join every forked task
        before the root halts -- this is what guarantees a single-sink
        task graph, hence a 2D *lattice*.  Violation raises
        :class:`StructureError`.
    max_ops:
        Optional budget on emitted transitions; exceeding it raises
        :class:`ProgramError`.  A guard for monitoring possibly
        non-terminating programs.

    Raises
    ------
    StructureError
        On any violation of the Figure 9 discipline (joining a task
        that is not the immediate left neighbour, leaking unjoined
        tasks...).
    ProgramError
        When a body is not a generator function or yields a non-effect.
    """
    events: Optional[List[Event]] = [] if record_events else None
    exec_out = Execution(events=events)

    def emit(ev: Event) -> None:
        exec_out.op_count += 1
        if max_ops is not None and exec_out.op_count > max_ops:
            raise ProgramError(
                f"operation budget of {max_ops} exceeded; the monitored "
                "program may not terminate"
            )
        if events is not None:
            events.append(ev)

    root_handle = TaskHandle(0, getattr(body, "__name__", "root"))
    root_gen = body(root_handle, *args)
    if not _is_generator(root_gen):
        raise ProgramError(
            f"task body {body!r} must be a generator function (use yield)"
        )
    for ob in observers:
        ob.on_root(0)

    line = TaskLine(0)
    halted = set()
    handles = {0: root_handle}
    results: dict = {}
    next_tid = 1
    exec_out.task_count = 1

    def do_join(joiner: int, target: int, label: str) -> None:
        if target not in halted:
            # Unreachable under serial fork-first for *valid* joins;
            # reached when the program names a running task (e.g. an
            # ancestor), which the line check reports precisely.
            line.join(joiner, target)  # raises StructureError
            raise StructureError(  # pragma: no cover - line.join raised
                f"task {joiner} joins running task {target}"
            )
        line.join(joiner, target)
        emit(JoinEvent(joiner, target, label))
        for ob in observers:
            ob.on_join(joiner, target)

    # Each frame: [generator, handle, value_to_send].
    stack: List[List[Any]] = [[root_gen, root_handle, None]]

    while stack:
        frame = stack[-1]
        gen, handle, send_value = frame
        frame[2] = None
        try:
            eff = gen.send(send_value)
        except StopIteration as fin:
            # The task halts: stop-arc (x, ×).
            t = handle.tid
            halted.add(t)
            results[t] = fin.value
            emit(HaltEvent(t))
            for ob in observers:
                ob.on_halt(t)
            stack.pop()
            if not stack:
                exec_out.result = fin.value
                if require_all_joined and len(line) != 1:
                    leaked = [x for x in line.snapshot() if x != t]
                    raise StructureError(
                        f"program ended with unjoined tasks {leaked}; "
                        "join them or pass require_all_joined=False"
                    )
            else:
                # Fork-first: the parent resumes only now, receiving the
                # child's handle as the value of its `yield fork(...)`.
                stack[-1][2] = handle
            continue

        t = handle.tid
        if isinstance(eff, ForkEffect):
            child_tid = next_tid
            next_tid += 1
            exec_out.task_count += 1
            child_handle = TaskHandle(child_tid, eff.name)
            handles[child_tid] = child_handle
            line.fork(t, child_tid)
            emit(ForkEvent(t, child_tid, eff.label))
            for ob in observers:
                ob.on_fork(t, child_tid)
            child_gen = eff.body(child_handle, *eff.args)
            if not _is_generator(child_gen):
                raise ProgramError(
                    f"task body {eff.body!r} must be a generator function"
                )
            stack.append([child_gen, child_handle, None])
        elif isinstance(eff, JoinEffect):
            target = eff.handle.tid
            do_join(t, target, eff.label)
            # A join doubles as a future force: the joined task's return
            # value becomes the value of the `yield join(...)`.
            frame[2] = results.pop(target, None)
        elif isinstance(eff, JoinLeftEffect):
            target = line.left_neighbor(t)
            if target is None:
                raise StructureError(
                    f"task {t} has no left neighbour to join"
                )
            do_join(t, target, eff.label)
            frame[2] = handles[target]
        elif isinstance(eff, ReadEffect):
            emit(ReadEvent(t, eff.loc, eff.label))
            for ob in observers:
                ob.on_read(t, eff.loc, eff.label)
        elif isinstance(eff, WriteEffect):
            emit(WriteEvent(t, eff.loc, eff.label))
            for ob in observers:
                ob.on_write(t, eff.loc, eff.label)
        elif isinstance(eff, StepEffect):
            emit(StepEvent(t, eff.label))
            for ob in observers:
                ob.on_step(t)
        elif isinstance(eff, AnnotateEffect):
            # Observer-only marker: no operation count, no event record.
            for ob in observers:
                handler = getattr(ob, "on_annotation", None)
                if handler is not None:
                    handler(t, eff.tag, eff.data)
        else:
            raise ProgramError(
                f"task {t} yielded {eff!r}, which is not an effect; "
                "use fork/join/read/write/step from repro.forkjoin"
            )

    return exec_out


def _is_generator(obj: Any) -> bool:
    return hasattr(obj, "send") and hasattr(obj, "throw")
