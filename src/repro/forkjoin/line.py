"""The task line ``L . x . R`` of Figure 9.

All live tasks are kept in a line.  The two rewrite rules are:

* ``L . {x | fork y β; α} . R  ->  L . {y | β} . {x | α} . R``
  -- a forked task becomes the left neighbour of its parent;
* ``L . {y |} . {x | join y; α} . R  ->  L . {x | α} . R``
  -- a task may join (only) its immediate left neighbour, which must
  have finished, and doing so removes it from the line.

:class:`TaskLine` enforces exactly these rules and raises
:class:`StructureError` on any violation.  It is implemented as a
doubly-linked list over integer task ids so fork, join and neighbour
queries are all O(1); benchmark programs create millions of tasks.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import StructureError

__all__ = ["TaskLine"]


class TaskLine:
    """The line of live tasks, with O(1) fork/join/neighbour operations."""

    __slots__ = ("_left", "_right", "_present", "_count")

    def __init__(self, root: int) -> None:
        self._left: Dict[int, Optional[int]] = {root: None}
        self._right: Dict[int, Optional[int]] = {root: None}
        self._present = {root}
        self._count = 1

    def __len__(self) -> int:
        return self._count

    def __contains__(self, task: int) -> bool:
        return task in self._present

    def left_neighbor(self, task: int) -> Optional[int]:
        """The task immediately left of ``task`` (or ``None``)."""
        self._require(task)
        return self._left[task]

    def right_neighbor(self, task: int) -> Optional[int]:
        """The task immediately right of ``task`` (or ``None``)."""
        self._require(task)
        return self._right[task]

    def _require(self, task: int) -> None:
        if task not in self._present:
            raise StructureError(f"task {task} is not in the line")

    def fork(self, parent: int, child: int) -> None:
        """Insert ``child`` immediately left of ``parent``."""
        self._require(parent)
        if child in self._present:
            raise StructureError(f"task {child} already in the line")
        lt = self._left[parent]
        self._left[child] = lt
        self._right[child] = parent
        self._left[parent] = child
        if lt is not None:
            self._right[lt] = child
        self._present.add(child)
        self._count += 1

    def join(self, joiner: int, target: int) -> None:
        """Remove ``target``, which must be ``joiner``'s left neighbour.

        This is the paper's structural restriction: joining anything
        else raises :class:`StructureError`.
        """
        self._require(joiner)
        self._require(target)
        if self._left[joiner] != target:
            raise StructureError(
                f"task {joiner} may only join its immediate left "
                f"neighbour {self._left[joiner]}, not {target}"
            )
        lt = self._left[target]
        self._left[joiner] = lt
        if lt is not None:
            self._right[lt] = joiner
        self._present.remove(target)
        del self._left[target], self._right[target]
        self._count -= 1

    def snapshot(self) -> List[int]:
        """The line left-to-right (O(n); for tests and diagnostics)."""
        # Find the leftmost element by walking from any member.
        if not self._present:
            return []
        cur = next(iter(self._present))
        while self._left[cur] is not None:
            cur = self._left[cur]
        out = [cur]
        while self._right[cur] is not None:
            cur = self._right[cur]
            out.append(cur)
        return out
