"""Cilk-style spawn-sync as sugar over structured fork-join.

Section 5 (construction (11)): spawn-sync is the *bracketed* discipline
in which a task may only join its own descendants -- ``sync`` joins all
of the task's outstanding children, most recent first.  Because forked
children pile up immediately left of their parent like a stack, and each
child (having synced implicitly before halting) leaves nothing behind,
LIFO joining always targets the immediate left neighbour, so the
structural restriction is satisfied by construction and the produced
task graphs are exactly the series-parallel ones.

Write Cilk tasks as generator functions decorated with :func:`cilk`;
the first parameter is a :class:`CilkTask` context::

    @cilk
    def fib(ctx, n):
        if n < 2:
            yield write(("fib", n))
            return n
        x = yield from ctx.spawn(fib, n - 1)
        y = yield from ctx.spawn(fib, n - 2)
        yield from ctx.sync()
        return 0  # values flow through memory, as in real Cilk

    run(fib, 10, observers=[detector])

``ctx.spawn`` returns the child's handle; an implicit ``sync`` runs at
the end of every task body (Cilk semantics: "each task has an implicit
sync at its end").
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Iterator, List

from repro.forkjoin.program import (
    Body,
    TaskHandle,
    fork as _fork,
    join as _join,
)

__all__ = ["CilkTask", "cilk"]


class CilkTask:
    """Per-task spawn-sync context.

    Tracks the task's outstanding (spawned, not yet synced) children so
    ``sync`` can join them LIFO.  Use with ``yield from``.
    """

    __slots__ = ("handle", "_children")

    def __init__(self, handle: TaskHandle) -> None:
        self.handle = handle
        self._children: List[TaskHandle] = []

    def spawn(self, body: Callable, *args: Any) -> Iterator:
        """``spawn body(...)``: fork a child and remember it for sync.

        ``body`` must itself be a :func:`cilk`-decorated task.  Returns
        (via ``yield from``) the child's handle.
        """
        child = yield _fork(body, *args, name=getattr(body, "__name__", ""))
        self._children.append(child)
        return child

    def sync(self) -> Iterator:
        """``sync``: join all outstanding children, most recent first."""
        while self._children:
            yield _join(self._children.pop())

    @property
    def outstanding(self) -> int:
        """Number of spawned children not yet synced."""
        return len(self._children)


def cilk(fn: Callable) -> Body:
    """Decorator turning a spawn-sync generator into a fork-join body.

    The wrapped body creates the :class:`CilkTask` context and appends
    the implicit terminal ``sync``.
    """

    @functools.wraps(fn)
    def body(handle: TaskHandle, *args: Any):
        ctx = CilkTask(handle)
        result = yield from fn(ctx, *args)
        yield from ctx.sync()
        return result

    return body
