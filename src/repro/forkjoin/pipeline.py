"""Linear pipeline parallelism over structured fork-join (Section 5).

A linear pipeline feeds items ``x_1 .. x_n`` through stages
``S_1 .. S_m``; ``S_i(x_j)`` may depend on any ``S_k(x_l)`` with
``k < i`` or ``l < j``, so the task graph embeds in a two-dimensional
grid -- a 2D lattice.  The paper observes that Cilk-P's on-the-fly
pipelines (Lee et al. [15]) are expressible in its restricted fork-join;
this module is that translation:

* each (item, stage) cell runs in its own task segment ``T[j][i]``;
* after its stage work, ``T[j][i]`` forks the item's continuation
  ``T[j][i+1]`` (stage order within the item) and halts;
* before its stage work, a **serial** stage's segment (for ``j > 0``)
  joins its left neighbours -- the previous item's segment at the same
  stage, plus that item's unjoined segments from any *parallel* stages
  immediately preceding it (the absorbed joins add only orderings that
  are already implied transitively, so parallel stages stay parallel);
* a driver task forks each item's first segment in order and finally
  drains every remaining unjoined segment.

Cilk-P distinguishes **serial** stages (iteration ``j`` waits for
iteration ``j-1`` at that stage -- the default here) from **parallel**
stages (no cross-item ordering).  Pass the parallel stages' indices in
``PipelineSpec.parallel``.  The resulting happened-before relation is
exactly

    ``(i, j) <= (i', j')``  iff  ``i <= i'`` and (``j == j'`` or
    (``j < j'`` and some serial stage ``s`` has ``i <= s <= i'``)),

which the tests check verbatim.  By Theorem 6 the task graph is a 2D
lattice either way, so the detector monitors both kinds online.

``stages`` are generator functions ``stage(item, j)`` yielding
read/write/step effects; ``j`` is the item index.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, FrozenSet, Iterator, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.forkjoin.interpreter import Execution, run
from repro.forkjoin.program import (
    TaskHandle,
    fork as _fork,
    join_left as _join_left,
)

__all__ = ["PipelineSpec", "pipeline_body", "run_pipeline"]

#: A pipeline stage: generator function ``stage(item, item_index)``.
Stage = Callable[[Any, int], Iterator]


@dataclass(frozen=True)
class PipelineSpec:
    """A linear pipeline: items, ordered stages, and which are parallel.

    ``parallel`` holds the indices of stages with *no* cross-item
    serialisation (Cilk-P parallel stages); all other stages are serial.
    """

    items: Tuple[Any, ...]
    stages: Tuple[Stage, ...]
    parallel: FrozenSet[int] = frozenset()

    def __post_init__(self) -> None:
        if not self.stages:
            raise WorkloadError("pipeline needs at least one stage")
        bad = [i for i in self.parallel
               if not 0 <= i < len(self.stages)]
        if bad:
            raise WorkloadError(f"parallel stage indices out of range: {bad}")

    def joins_before(self, i: int) -> int:
        """Left-neighbour joins a serial stage-``i`` segment performs
        (for items after the first): the previous item's segment at
        stage ``i`` plus its leftovers from the maximal run of parallel
        stages immediately before ``i``."""
        count = 1
        k = i - 1
        while k >= 0 and k in self.parallel:
            count += 1
            k -= 1
        return count


class _RunState:
    """Per-execution bookkeeping: segments forked but not yet joined."""

    __slots__ = ("outstanding",)

    def __init__(self) -> None:
        self.outstanding = 0


def _segment(
    self: TaskHandle, spec: PipelineSpec, state: _RunState, j: int, i: int
):
    """Task body of cell (item ``j``, stage ``i``)."""
    if j > 0 and i not in spec.parallel:
        # Stage-serialisation: wait for item j-1 to clear this stage,
        # absorbing its unjoined parallel-stage segments on the way
        # (each is the immediate left neighbour in turn).
        for _ in range(spec.joins_before(i)):
            yield _join_left(label=f"stage{i}@item{j}")
            state.outstanding -= 1
    yield from spec.stages[i](spec.items[j], j)
    if i + 1 < len(spec.stages):
        state.outstanding += 1
        yield _fork(_segment, spec, state, j, i + 1,
                    name=f"item{j}.stage{i+1}")


def pipeline_body(spec: PipelineSpec):
    """The driver task body for a :class:`PipelineSpec`.

    Suitable for :func:`repro.forkjoin.run` directly; use
    :func:`run_pipeline` for the one-call version.
    """

    def driver(self: TaskHandle):
        state = _RunState()
        for j in range(len(spec.items)):
            state.outstanding += 1
            yield _fork(_segment, spec, state, j, 0,
                        name=f"item{j}.stage0")
        # Drain everything still unjoined: the last item's segments and
        # any parallel-stage leftovers with no serial stage after them.
        while state.outstanding:
            yield _join_left(label="drain")
            state.outstanding -= 1

    return driver


def run_pipeline(
    items: Sequence[Any],
    stages: Sequence[Stage],
    *,
    parallel: Sequence[int] = (),
    observers: Sequence[Any] = (),
    record_events: bool = False,
) -> Execution:
    """Build and execute a linear pipeline program.

    Creates ``len(items) * len(stages) + 1`` tasks.  ``parallel`` names
    the stage indices without cross-item serialisation.  See the module
    docstring for the task-graph shape.
    """
    spec = PipelineSpec(tuple(items), tuple(stages), frozenset(parallel))
    return run(
        pipeline_body(spec),
        observers=observers,
        record_events=record_events,
    )
