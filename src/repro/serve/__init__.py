"""Network serving layer: stream event batches to a detector over TCP.

The subsystem has three parts -- see ``docs/SERVING.md`` for the
protocol walk-through and deployment guidance:

* :mod:`repro.serve.protocol` -- the sans-IO RPRSERVE wire format
  (length-prefixed CRC-checked frames of ``tracefile``-layout column
  batches);
* :mod:`repro.serve.server` -- the asyncio multi-session server with
  credit-based backpressure (:class:`RaceServer`, plus
  :class:`ServerThread` for loopback serving from synchronous code);
* :mod:`repro.serve.client` -- the blocking client
  (:class:`RaceClient`), trace/program replay helpers, and the
  multi-connection load generator (:func:`run_load`);
* :mod:`repro.serve.cluster` -- the multi-node tier: a
  location-sharded gateway (:class:`RaceCluster`) routing column
  slices across N engine worker processes, with migration under
  worker kill (see ``docs/SCALE_OUT.md``).

The ``repro-race serve`` / ``submit`` CLI subcommands front these; the
distinct exit codes they use live here so tests and scripts can name
them.
"""

from repro.serve.cluster import (
    ClusterConfig,
    ClusterThread,
    RaceCluster,
    WorkerProcess,
)
from repro.serve.client import (
    ClientSummary,
    ConnectError,
    LoadResult,
    RaceClient,
    RemoteError,
    TransportError,
    run_load,
    submit_batch,
    submit_program,
    submit_trace,
)
from repro.serve.protocol import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
)
from repro.serve.server import (
    RaceServer,
    ServeConfig,
    ServerThread,
    start_metrics_http,
)

__all__ = [
    "PROTOCOL_VERSION",
    "DEFAULT_MAX_FRAME",
    "ServeConfig",
    "RaceServer",
    "ServerThread",
    "start_metrics_http",
    "ClusterConfig",
    "RaceCluster",
    "ClusterThread",
    "WorkerProcess",
    "RaceClient",
    "ConnectError",
    "TransportError",
    "RemoteError",
    "ClientSummary",
    "submit_batch",
    "submit_trace",
    "submit_program",
    "LoadResult",
    "run_load",
    "EXIT_BIND_FAILURE",
    "EXIT_CONNECT_FAILURE",
    "EXIT_PROTOCOL_FAILURE",
]

#: ``repro-race serve`` could not bind its listen address.
EXIT_BIND_FAILURE = 3
#: ``repro-race submit`` could not reach the server.
EXIT_CONNECT_FAILURE = 4
#: the session died on a wire-protocol violation or server ERROR.
EXIT_PROTOCOL_FAILURE = 5
