"""The RPRSERVE wire protocol: length-prefixed frames of column batches.

The serving layer moves the engine's columnar event batches
(:class:`~repro.engine.batch.EventBatch`) over a TCP stream.  The unit
is a *frame*::

    offset  size  field
    0       4     u32  payload length L (little-endian)
    4       1     u8   frame type (FRAME_* below)
    5       4     u32  CRC32 of the payload (zlib.crc32)
    9       L     payload

Frame types and their payloads:

========  =========  =============================================
type      direction  payload
========  =========  =============================================
HELLO     client->   magic ``RPRSERVE`` + u32 version + u32 max
                     frame size the client is willing to receive;
                     v3 appends a 16-byte NUL-padded requested
                     engine backend name (all-NUL = server default);
                     v4 additionally appends u32 feature flags
                     (bit 0 = the client wants to send CBATCH)
HELLO     server->   magic + u32 version + u32 initial credit +
                     u32 effective max frame size + u32 flags (0);
                     v3 appends the 16-byte *negotiated* backend;
                     v4 additionally appends u32 feature flags
                     (bit 0 = CBATCH granted for this session);
                     v5 additionally appends u32 engine worker count
                     (1 on a single-node server, N behind a gateway)
BATCH     client->   the ``tracefile`` column layout, minus magic:
                     u8 endian flag, u64 n_events, u64 table byte
                     length, the (optional) location-table JSON,
                     then ``ops`` (u8[n]), ``a`` (i32[n]), ``b``
                     (i32[n]) -- byte-identical to the columns an
                     RPR2TRC file stores, so server-side decode is
                     bulk column copies (and, with numpy, zero-copy
                     views for validation), never per-event parsing
CBATCH    client->   a grammar-compressed batch (v4, only after the
                     HELLO exchange granted the CBATCH feature bit):
                     u8 endian flag, u32 block width, u64 expanded
                     event count, u64 unique block count, u64 rule
                     count, u64 table byte length, u64 seq, the
                     (optional) location-table JSON, u32 per-block
                     lengths, then the unique blocks' ``ops``/``a``/
                     ``b`` columns concatenated block-major, and the
                     ``(u32 block id, u32 repeat)`` rule pairs --
                     the :class:`repro.compress.CompressedTrace`
                     shape on the wire, ingested server-side by the
                     memoized kernel without ever expanding
CREDIT    server->   u32 additional BATCH frames the client may send
                     (CBATCH frames spend the same credit)
RACES     server->   UTF-8 JSON object ``{"seq": n, "reports": [...]}``
                     with interned location ids; ``seq`` names the
                     BATCH the reports were found in, so a resuming
                     client that replays a batch replaces (never
                     double-counts) its reports.  A bare JSON list
                     (the v1 shape) is still decoded, with no seq
ERROR     both       u16 error code + UTF-8 message; sender closes
BYE       client->   empty (end of stream, drain and summarise)
BYE       server->   u64 events ingested + u64 races reported
RESUME    client->   UTF-8 session token (durable session handshake,
                     sent once, directly after HELLO)
RESUME    server->   u64 durable sequence number: the highest BATCH
                     seq captured by a checkpoint (0 = fresh session)
ACK       server->   u64 durable sequence number, sent after every
                     background checkpoint; the client drops its
                     replay buffer up to and including it
========  =========  =============================================

Backend negotiation (v3): the client HELLO may append a 16-byte
NUL-padded ASCII engine backend name (``lattice2d``, ``depa``, or
all-NUL for the server default); the server's reply appends the
backend the session actually got.  The reply always mirrors the
*client's* version and payload shape, so a v2 client talking to a v3
server sees a byte-identical v2 exchange -- negotiation is purely
additive.  A backend the server cannot honour (unknown, or
incompatible with its configuration) is refused with a typed
``ERR_BACKEND`` ERROR frame before the session starts.

Compression negotiation (v4): a v4 client HELLO carries u32 feature
flags; :data:`FLAG_CBATCH` requests permission to send CBATCH frames.
The server's v4 reply echoes the bit only if it can honour it (a
shared multi-process pool or a prediction server cannot ingest
compressed traces and answers with a typed ``ERR_COMPRESS`` ERROR
frame instead -- a requested feature is negotiated exactly like a
requested backend, never silently dropped).  A v2/v3 HELLO has no
flags field and a v4 reply to it carries none, so the exchange stays
byte-identical for older clients.

Scale-out (v5): a v5 client HELLO is byte-identical to a v4 one (only
the version field says 5); the server's v5 reply appends a u32 engine
**worker count** -- the fan-out of the multi-node gateway tier
(:mod:`repro.serve.cluster`), or 1 on a single-node server.  Like v3
and v4, the reply mirrors the client's version: a v4 client talking
to a gateway sees a byte-identical v4 exchange and simply doesn't
learn the topology.  See ``docs/SCALE_OUT.md``.

Durability (v2): every BATCH carries a u64 sequence number, assigned
1, 2, 3... by the client.  The server requires contiguous sequencing;
on a durable session (one that sent RESUME) an already-applied seq is
*skipped idempotently* (its credit refunded), which is what makes a
reconnect replay safe, while a gap is an ERR_PROTOCOL.

Like the trace format, the BATCH columns travel in the *sender's*
byte order with an explicit flag, so the common same-order case is
bulk copies and a foreign-order peer pays one in-place ``byteswap``.
Locations are interned client-side; the table field ships only the
locations *new* since the previous BATCH (ids are allocated densely
in first-seen order, exactly like
:class:`~repro.engine.batch.LocationInterner`), and may be empty when
the client keeps its table private -- the hot path then carries no
JSON at all and race reports name interned ids.

Every decoding function here validates **before it allocates**: frame
lengths are bounded by the negotiated maximum before the payload is
read, and a BATCH header whose declared column lengths disagree with
the actual payload size is rejected before any column is materialized
(mirroring :func:`repro.engine.tracefile.read_trace`'s
header-vs-file-size bound check).  All violations raise
:class:`~repro.errors.ProtocolError`.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

try:  # numpy vectorizes column validation; everything degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.core.reports import AccessKind, RaceReport
from repro.engine.batch import OP_READ, OP_WRITE, EventBatch
from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL_MAGIC",
    "PROTOCOL_VERSION",
    "MIN_PROTOCOL_VERSION",
    "BACKEND_NAME_SIZE",
    "DEFAULT_MAX_FRAME",
    "FRAME_HEADER_SIZE",
    "FLAG_CBATCH",
    "FRAME_HELLO",
    "FRAME_BATCH",
    "FRAME_CBATCH",
    "FRAME_CREDIT",
    "FRAME_RACES",
    "FRAME_ERROR",
    "FRAME_BYE",
    "FRAME_RESUME",
    "FRAME_ACK",
    "FRAME_NAMES",
    "ERR_PROTOCOL",
    "ERR_VERSION",
    "ERR_FRAME_TOO_LARGE",
    "ERR_BAD_CRC",
    "ERR_MALFORMED_BATCH",
    "ERR_DETECTOR",
    "ERR_IDLE_TIMEOUT",
    "ERR_CREDIT_OVERRUN",
    "ERR_SHUTTING_DOWN",
    "ERR_CHECKPOINT",
    "ERR_BACKEND",
    "ERR_COMPRESS",
    "ERROR_NAMES",
    "MAX_SESSION_TOKEN",
    "valid_session_token",
    "encode_frame",
    "parse_frame_header",
    "check_frame_length",
    "check_payload_crc",
    "encode_hello",
    "decode_hello",
    "encode_hello_reply",
    "decode_hello_reply",
    "encode_batch_payload",
    "decode_batch_payload",
    "encode_cbatch_payload",
    "decode_cbatch_payload",
    "validate_batch_columns",
    "encode_credit",
    "decode_credit",
    "encode_races",
    "decode_races",
    "encode_error",
    "decode_error",
    "encode_bye_summary",
    "decode_bye_summary",
    "encode_resume",
    "decode_resume",
    "encode_resume_reply",
    "decode_resume_reply",
    "encode_ack",
    "decode_ack",
]

PROTOCOL_MAGIC = b"RPRSERVE"
#: v2 added the BATCH sequence number and the RESUME/ACK frames;
#: v3 added engine-backend negotiation in HELLO; v4 added HELLO
#: feature flags and the CBATCH compressed-batch frame; v5 added the
#: worker-count field to the server HELLO reply (the multi-node
#: gateway tier advertises its fan-out; a single-node server says 1)
PROTOCOL_VERSION = 5
#: oldest client version the server still speaks (v2 HELLOs get a
#: v2-shaped reply, so pre-negotiation clients run unchanged)
MIN_PROTOCOL_VERSION = 2

#: fixed width of the NUL-padded backend name field in v3 HELLO frames
BACKEND_NAME_SIZE = 16

#: v4 HELLO feature bit: the client wants to send CBATCH frames (and
#: the server, echoing it, commits to ingesting them)
FLAG_CBATCH = 1

#: default cap on one frame's payload (negotiated down in HELLO)
DEFAULT_MAX_FRAME = 8 * 1024 * 1024

_FRAME = struct.Struct("<IBI")
FRAME_HEADER_SIZE = _FRAME.size

FRAME_HELLO, FRAME_BATCH, FRAME_CREDIT, FRAME_RACES, FRAME_ERROR, \
    FRAME_BYE, FRAME_RESUME, FRAME_ACK, FRAME_CBATCH = range(1, 10)

FRAME_NAMES = {
    FRAME_HELLO: "HELLO",
    FRAME_BATCH: "BATCH",
    FRAME_CREDIT: "CREDIT",
    FRAME_RACES: "RACES",
    FRAME_ERROR: "ERROR",
    FRAME_BYE: "BYE",
    FRAME_RESUME: "RESUME",
    FRAME_ACK: "ACK",
    FRAME_CBATCH: "CBATCH",
}

# -- error codes (carried in ERROR frames) ------------------------------------

ERR_PROTOCOL = 1  #: generic framing violation
ERR_VERSION = 2  #: HELLO version mismatch
ERR_FRAME_TOO_LARGE = 3  #: frame exceeds the negotiated maximum
ERR_BAD_CRC = 4  #: payload CRC32 disagrees with the header
ERR_MALFORMED_BATCH = 5  #: BATCH header lies about its column lengths
ERR_DETECTOR = 6  #: the event stream violated detector preconditions
ERR_IDLE_TIMEOUT = 7  #: session produced no frame within the idle window
ERR_CREDIT_OVERRUN = 8  #: client sent a BATCH with no credit outstanding
ERR_SHUTTING_DOWN = 9  #: server is draining (SIGTERM)
ERR_CHECKPOINT = 10  #: RESUME hit a corrupt/unloadable checkpoint
ERR_BACKEND = 11  #: requested engine backend refused (v3 negotiation)
ERR_COMPRESS = 12  #: CBATCH feature refused, or a malformed CBATCH frame

ERROR_NAMES = {
    ERR_PROTOCOL: "protocol",
    ERR_VERSION: "version",
    ERR_FRAME_TOO_LARGE: "frame-too-large",
    ERR_BAD_CRC: "bad-crc",
    ERR_MALFORMED_BATCH: "malformed-batch",
    ERR_DETECTOR: "detector",
    ERR_IDLE_TIMEOUT: "idle-timeout",
    ERR_CREDIT_OVERRUN: "credit-overrun",
    ERR_SHUTTING_DOWN: "shutting-down",
    ERR_CHECKPOINT: "checkpoint",
    ERR_BACKEND: "backend",
    ERR_COMPRESS: "compress",
}

_HELLO_C = struct.Struct("<8sII")  # magic, version, client max frame
_HELLO_S = struct.Struct("<8sIIII")  # magic, version, credit, max frame, flags
#: the v3 shapes append a 16-byte NUL-padded backend name; v2 and v3
#: HELLOs are told apart by payload length alone
_HELLO_C3 = struct.Struct("<8sII16s")
_HELLO_S3 = struct.Struct("<8sIIII16s")
#: the v4 shapes append u32 feature flags after the backend name;
#: like v3, the shape is told apart by payload length alone
_HELLO_C4 = struct.Struct("<8sII16sI")
_HELLO_S4 = struct.Struct("<8sIIII16sI")
#: the v5 *server* shape appends a u32 worker count after the feature
#: flags (the gateway tier's engine-worker fan-out; 1 on a single-node
#: server).  The v5 client HELLO reuses the v4 shape byte for byte --
#: only the version field says 5 -- so a v5 request decodes everywhere
#: a v4 one does and the reply shape is, as always, the server's call.
_HELLO_S5 = struct.Struct("<8sIIII16sII")
#: endian flag, n_events, table_len, seq -- the sequence number is
#: appended (v2) so the v1 field offsets are unchanged
_BATCH_HEADER = struct.Struct("<B7xQQQ")
#: endian flag, block width, expanded n_events, n_blocks, n_rules,
#: table_len, seq -- the CBATCH (v4) header
_CBATCH_HEADER = struct.Struct("<B3xIQQQQQ")
_CBATCH_LEN = struct.Struct("<I")  # one per-block length entry
_CBATCH_RULE = struct.Struct("<II")  # (block id, repeat count)
#: ceiling on a CBATCH block width -- mirrors the RPR2TRZ container's
#: bound, rejecting absurd widths before the length table is read
_MAX_CBATCH_WIDTH = 2 ** 20
_CREDIT = struct.Struct("<I")
_ERROR = struct.Struct("<H")
_BYE_S = struct.Struct("<QQ")  # events ingested, races reported
_SEQ = struct.Struct("<Q")  # RESUME reply / ACK durable sequence number

#: fixed column item sizes (u8 / i32 / i32), as in the trace format
_OPS_SIZE = array("B").itemsize
_INT_SIZE = array("i").itemsize
_PER_EVENT = _OPS_SIZE + 2 * _INT_SIZE


def _native_flag() -> int:
    return 0 if sys.byteorder == "little" else 1


# -- framing ------------------------------------------------------------------


def encode_frame(ftype: int, payload: bytes = b"") -> bytes:
    """One wire frame: header (length, type, CRC32) plus payload."""
    if ftype not in FRAME_NAMES:
        raise ProtocolError(f"unknown frame type {ftype}")
    return _FRAME.pack(len(payload), ftype, zlib.crc32(payload)) + payload


def parse_frame_header(head: bytes) -> Tuple[int, int, int]:
    """Unpack a 9-byte frame header; returns ``(length, type, crc)``."""
    if len(head) < FRAME_HEADER_SIZE:
        raise ProtocolError(
            f"truncated frame header ({len(head)} of "
            f"{FRAME_HEADER_SIZE} bytes)"
        )
    length, ftype, crc = _FRAME.unpack(head[:FRAME_HEADER_SIZE])
    if ftype not in FRAME_NAMES:
        raise ProtocolError(f"unknown frame type {ftype}")
    return length, ftype, crc


def check_frame_length(length: int, max_frame: int) -> None:
    """Reject an oversized frame *before* its payload is read."""
    if length > max_frame:
        raise ProtocolError(
            f"frame payload of {length} bytes exceeds the negotiated "
            f"maximum of {max_frame}"
        )


def check_payload_crc(payload: bytes, crc: int) -> None:
    """Verify the header CRC against the received payload."""
    actual = zlib.crc32(payload)
    if actual != crc:
        raise ProtocolError(
            f"frame CRC mismatch: header says {crc:#010x}, payload "
            f"hashes to {actual:#010x}"
        )


# -- HELLO --------------------------------------------------------------------


def _pack_backend(backend: Optional[str]) -> bytes:
    """The 16-byte field value for a backend name (``None`` = all-NUL,
    meaning "server default")."""
    name = backend or ""
    try:
        raw = name.encode("ascii")
    except UnicodeEncodeError:
        raise ProtocolError(
            f"backend name {name!r} is not ASCII"
        ) from None
    if len(raw) > BACKEND_NAME_SIZE:
        raise ProtocolError(
            f"backend name {name!r} exceeds {BACKEND_NAME_SIZE} bytes"
        )
    if b"\x00" in raw:
        raise ProtocolError(f"backend name {name!r} contains NUL")
    return raw  # struct "16s" NUL-pads on pack


def _unpack_backend(raw: bytes) -> Optional[str]:
    name = raw.rstrip(b"\x00")
    if not name:
        return None
    if b"\x00" in name:
        raise ProtocolError("backend name field has embedded NUL")
    try:
        return name.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError("backend name field is not ASCII") from None


def encode_hello(
    max_frame: int = DEFAULT_MAX_FRAME,
    backend: Optional[str] = None,
    version: int = PROTOCOL_VERSION,
    features: int = 0,
) -> bytes:
    """The client HELLO.  ``backend`` requests an engine backend for
    the session (v3); ``None`` keeps the server default.  ``features``
    is the v4 flag word (:data:`FLAG_CBATCH`).  ``version`` pins an
    older wire shape -- a v2 HELLO cannot carry a backend, and a v2/v3
    HELLO cannot carry feature flags."""
    if version >= 4:
        return _HELLO_C4.pack(
            PROTOCOL_MAGIC, version, max_frame, _pack_backend(backend),
            features,
        )
    if features:
        raise ProtocolError(
            f"protocol v{version} HELLO cannot carry feature flags"
        )
    if version >= 3:
        return _HELLO_C3.pack(
            PROTOCOL_MAGIC, version, max_frame, _pack_backend(backend)
        )
    if backend is not None:
        raise ProtocolError(
            f"protocol v{version} HELLO cannot carry a backend request"
        )
    return _HELLO_C.pack(PROTOCOL_MAGIC, version, max_frame)


def decode_hello(payload: bytes) -> Tuple[int, int, Optional[str], int]:
    """Returns ``(version, client_max_frame, requested_backend,
    features)``; checks the magic only (version mismatches are the
    *server's* call, so it can answer with a precise ERROR frame).  A
    v2-sized payload decodes with ``requested_backend = None``; a
    pre-v4 payload decodes with ``features = 0``."""
    features = 0
    if len(payload) == _HELLO_C.size:
        magic, version, max_frame = _HELLO_C.unpack(payload)
        backend = None
    elif len(payload) == _HELLO_C3.size:
        magic, version, max_frame, raw = _HELLO_C3.unpack(payload)
        backend = _unpack_backend(raw)
    elif len(payload) == _HELLO_C4.size:
        magic, version, max_frame, raw, features = _HELLO_C4.unpack(
            payload
        )
        backend = _unpack_backend(raw)
    else:
        raise ProtocolError(
            f"bad HELLO payload length {len(payload)}"
        )
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(f"bad protocol magic {magic!r}")
    return version, max_frame, backend, features


def encode_hello_reply(
    credit: int,
    max_frame: int,
    version: int = PROTOCOL_VERSION,
    backend: Optional[str] = None,
    features: int = 0,
    workers: int = 1,
) -> bytes:
    """The server HELLO reply, mirroring the *client's* ``version``
    and payload shape; ``backend`` names the backend the session got
    (v3+), ``features`` the granted v4 flag word, and ``workers`` the
    engine-worker fan-out behind this listener (v5; a single-node
    server says 1, the gateway tier its worker count)."""
    if workers < 1:
        raise ProtocolError(f"worker count must be positive, got {workers}")
    if version >= 5:
        return _HELLO_S5.pack(
            PROTOCOL_MAGIC, version, credit, max_frame, 0,
            _pack_backend(backend), features, workers,
        )
    if workers != 1:
        raise ProtocolError(
            f"protocol v{version} HELLO reply cannot carry a worker count"
        )
    if version >= 4:
        return _HELLO_S4.pack(
            PROTOCOL_MAGIC, version, credit, max_frame, 0,
            _pack_backend(backend), features,
        )
    if features:
        raise ProtocolError(
            f"protocol v{version} HELLO reply cannot carry feature flags"
        )
    if version >= 3:
        return _HELLO_S3.pack(
            PROTOCOL_MAGIC, version, credit, max_frame, 0,
            _pack_backend(backend),
        )
    return _HELLO_S.pack(PROTOCOL_MAGIC, version, credit, max_frame, 0)


def decode_hello_reply(
    payload: bytes,
) -> Tuple[int, int, int, Optional[str], int, int]:
    """Returns ``(version, initial_credit, max_frame, backend,
    features, workers)``.

    The v2, v3, v4, and v5 reply shapes are all accepted; a v2-sized
    reply (from a pre-negotiation server) decodes with ``backend =
    None``, a pre-v4 reply with ``features = 0``, and a pre-v5 reply
    with ``workers = 1`` (one engine behind the listener).
    """
    features = 0
    workers = 1
    if len(payload) == _HELLO_S.size:
        magic, version, credit, max_frame, _flags = _HELLO_S.unpack(
            payload
        )
        backend = None
    elif len(payload) == _HELLO_S3.size:
        magic, version, credit, max_frame, _flags, raw = (
            _HELLO_S3.unpack(payload)
        )
        backend = _unpack_backend(raw)
    elif len(payload) == _HELLO_S4.size:
        magic, version, credit, max_frame, _flags, raw, features = (
            _HELLO_S4.unpack(payload)
        )
        backend = _unpack_backend(raw)
    elif len(payload) == _HELLO_S5.size:
        magic, version, credit, max_frame, _flags, raw, features, \
            workers = _HELLO_S5.unpack(payload)
        backend = _unpack_backend(raw)
        if workers < 1:
            raise ProtocolError(
                f"HELLO reply claims {workers} engine workers"
            )
    else:
        raise ProtocolError(
            f"bad HELLO reply payload length {len(payload)}"
        )
    if magic != PROTOCOL_MAGIC:
        raise ProtocolError(f"bad protocol magic {magic!r}")
    if not MIN_PROTOCOL_VERSION <= version <= PROTOCOL_VERSION:
        raise ProtocolError(
            f"server speaks protocol version {version}, "
            f"client speaks {MIN_PROTOCOL_VERSION}"
            f"..{PROTOCOL_VERSION}"
        )
    return version, credit, max_frame, backend, features, workers


# -- BATCH --------------------------------------------------------------------


def encode_batch_payload(
    batch: EventBatch, new_locations: Sequence = (), seq: int = 0
) -> bytes:
    """Serialise one batch (plus the locations newly interned for it).

    ``new_locations`` are the table entries whose ids start where the
    receiver's table currently ends; pass ``()`` to keep the table
    client-side (race reports then name interned ids).  ``seq`` is the
    client-assigned sequence number (1, 2, 3...); the server enforces
    contiguity and uses it for idempotent replay after a RESUME.
    """
    from repro.trace import encode_location

    if new_locations:
        table = json.dumps(
            [encode_location(loc) for loc in new_locations],
            separators=(",", ":"),
        ).encode("utf-8")
    else:
        table = b""
    head = _BATCH_HEADER.pack(_native_flag(), len(batch), len(table), seq)
    return b"".join(
        (head, table, batch.ops.tobytes(), batch.a.tobytes(),
         batch.b.tobytes())
    )


def decode_batch_payload(
    payload: bytes,
) -> Tuple[EventBatch, Optional[List], int]:
    """Decode a BATCH payload into ``(batch, new_locations_or_None,
    seq)``.

    The declared column lengths are checked against the payload size
    *before* any column (or the table) is allocated: a header that
    lies about ``n_events`` or ``table_len`` is rejected outright,
    exactly like :func:`~repro.engine.tracefile.read_trace` rejects a
    lying trace-file header against the bytes on disk.
    """
    from repro.trace import decode_location

    if len(payload) < _BATCH_HEADER.size:
        raise ProtocolError(
            f"truncated BATCH header ({len(payload)} of "
            f"{_BATCH_HEADER.size} bytes)"
        )
    endian, n_events, table_len, seq = _BATCH_HEADER.unpack_from(payload)
    if endian not in (0, 1):
        raise ProtocolError(f"bad endianness flag {endian} in BATCH")
    need = _BATCH_HEADER.size + table_len + n_events * _PER_EVENT
    if need != len(payload):
        raise ProtocolError(
            f"lying BATCH header: {n_events} events and a "
            f"{table_len}-byte table need {need} payload bytes, "
            f"frame carries {len(payload)}"
        )
    view = memoryview(payload)
    table_off = _BATCH_HEADER.size
    ops_off = table_off + table_len
    a_off = ops_off + n_events * _OPS_SIZE
    b_off = a_off + n_events * _INT_SIZE
    locations: Optional[List] = None
    if table_len:
        try:
            entries = json.loads(bytes(view[table_off:ops_off]))
        except ValueError as exc:
            raise ProtocolError(
                f"corrupt BATCH location table: {exc}"
            ) from None
        if not isinstance(entries, list):
            raise ProtocolError("corrupt BATCH location table: not a list")
        locations = [decode_location(entry) for entry in entries]
    ops = array("B")
    av = array("i")
    bv = array("i")
    ops.frombytes(view[ops_off:a_off])
    av.frombytes(view[a_off:b_off])
    bv.frombytes(view[b_off:])
    if endian != _native_flag():
        av.byteswap()
        bv.byteswap()
    return EventBatch(ops, av, bv), locations, seq


def encode_cbatch_payload(
    ctrace, new_locations: Sequence = (), seq: int = 0
) -> bytes:
    """Serialise one :class:`~repro.compress.CompressedTrace` (plus
    the locations newly interned for it) as a CBATCH payload.

    The wire shape is the RPR2TRZ section layout minus the per-section
    CRCs (the framing layer already CRCs the whole payload): header,
    optional location-table JSON, u32 per-block lengths, the unique
    blocks' three columns concatenated, then the ``(block id, repeat)``
    rule pairs.  ``seq`` follows the BATCH discipline exactly --
    CBATCH frames share the session's one sequence space.
    """
    from repro.trace import encode_location

    if new_locations:
        table = json.dumps(
            [encode_location(loc) for loc in new_locations],
            separators=(",", ":"),
        ).encode("utf-8")
    else:
        table = b""
    blocks = ctrace.blocks
    head = _CBATCH_HEADER.pack(
        _native_flag(), ctrace.block_width, ctrace.n_events,
        len(blocks), len(ctrace.rules), len(table), seq,
    )
    lengths = b"".join(_CBATCH_LEN.pack(len(block)) for block in blocks)
    rules = b"".join(
        _CBATCH_RULE.pack(bid, rep) for bid, rep in ctrace.rules
    )
    return b"".join(
        [head, table, lengths]
        + [block.ops.tobytes() for block in blocks]
        + [block.a.tobytes() for block in blocks]
        + [block.b.tobytes() for block in blocks]
        + [rules]
    )


def decode_cbatch_payload(payload: bytes):
    """Decode a CBATCH payload into ``(ctrace, new_locations_or_None,
    seq)`` without expanding it.

    Validation order mirrors :func:`decode_batch_payload` and the
    RPR2TRZ reader: the header's *fixed-size* claims (table, length
    section, rules) are bounded against the payload before anything is
    allocated, each declared block length must satisfy ``0 < len <=
    block_width``, and only then is the exact payload size recomputed
    from the now-trusted lengths and required to match -- a header that
    lies about any count is rejected outright.  Rules must reference
    existing blocks with positive repeats and expand to exactly the
    declared event count, so a decoded trace is structurally sound
    before it reaches an engine.
    """
    from repro.compress.blocks import CompressedTrace
    from repro.trace import decode_location

    if len(payload) < _CBATCH_HEADER.size:
        raise ProtocolError(
            f"truncated CBATCH header ({len(payload)} of "
            f"{_CBATCH_HEADER.size} bytes)"
        )
    (
        endian, block_width, n_events, n_blocks, n_rules, table_len, seq,
    ) = _CBATCH_HEADER.unpack_from(payload)
    if endian not in (0, 1):
        raise ProtocolError(f"bad endianness flag {endian} in CBATCH")
    if not 0 < block_width <= _MAX_CBATCH_WIDTH:
        raise ProtocolError(
            f"implausible CBATCH block width {block_width}"
        )
    fixed_need = (
        _CBATCH_HEADER.size + table_len
        + n_blocks * _CBATCH_LEN.size + n_rules * _CBATCH_RULE.size
    )
    if fixed_need > len(payload):
        raise ProtocolError(
            f"lying CBATCH header: {n_blocks} blocks, {n_rules} rules "
            f"and a {table_len}-byte table need at least {fixed_need} "
            f"payload bytes, frame carries {len(payload)}"
        )
    view = memoryview(payload)
    table_off = _CBATCH_HEADER.size
    len_off = table_off + table_len
    ops_off = len_off + n_blocks * _CBATCH_LEN.size
    lengths = array("I")
    lengths.frombytes(view[len_off:ops_off])
    if sys.byteorder != "little":
        lengths.byteswap()
    for i, length in enumerate(lengths):
        if not 0 < length <= block_width:
            raise ProtocolError(
                f"CBATCH block {i} claims {length} events "
                f"(width {block_width})"
            )
    total = sum(lengths)
    need = fixed_need + total * _PER_EVENT
    if need != len(payload):
        raise ProtocolError(
            f"lying CBATCH header: blocks sum to {total} events, "
            f"needing {need} payload bytes, frame carries {len(payload)}"
        )
    locations: Optional[List] = None
    if table_len:
        try:
            entries = json.loads(bytes(view[table_off:len_off]))
        except ValueError as exc:
            raise ProtocolError(
                f"corrupt CBATCH location table: {exc}"
            ) from None
        if not isinstance(entries, list):
            raise ProtocolError(
                "corrupt CBATCH location table: not a list"
            )
        locations = [decode_location(entry) for entry in entries]
    a_off = ops_off + total * _OPS_SIZE
    b_off = a_off + total * _INT_SIZE
    rule_off = b_off + total * _INT_SIZE
    foreign = endian != _native_flag()
    blocks: List[EventBatch] = []
    o, a, b = ops_off, a_off, b_off
    for length in lengths:
        ops = array("B")
        av = array("i")
        bv = array("i")
        ops.frombytes(view[o: o + length])
        av.frombytes(view[a: a + length * _INT_SIZE])
        bv.frombytes(view[b: b + length * _INT_SIZE])
        if foreign:
            av.byteswap()
            bv.byteswap()
        blocks.append(EventBatch(ops, av, bv))
        o += length
        a += length * _INT_SIZE
        b += length * _INT_SIZE
    rules: List[Tuple[int, int]] = []
    expanded = 0
    for i in range(n_rules):
        bid, rep = _CBATCH_RULE.unpack_from(
            payload, rule_off + i * _CBATCH_RULE.size
        )
        if bid >= n_blocks:
            raise ProtocolError(
                f"CBATCH rule {i} references block {bid} of {n_blocks}"
            )
        if rep < 1:
            raise ProtocolError(f"CBATCH rule {i} has zero repeat count")
        if rules and rules[-1][0] == bid:
            rules[-1] = (bid, rules[-1][1] + rep)
        else:
            rules.append((bid, rep))
        expanded += rep * lengths[bid]
    if expanded != n_events:
        raise ProtocolError(
            f"CBATCH rules expand to {expanded} events but the header "
            f"claims {n_events}"
        )
    return CompressedTrace(block_width, blocks, rules), locations, seq


def validate_batch_columns(
    batch: EventBatch, table_size: Optional[int] = None
) -> None:
    """Column-level sanity checks before the batch reaches a kernel.

    Rejects unknown opcodes and negative access location ids (and,
    when the session ships its location table, access ids beyond the
    table) -- the structural stream itself (fork ids, use-after-halt,
    join discipline) is validated by the engine kernels, which raise
    :class:`~repro.errors.DetectorError` exactly as they do for local
    ingestion.  Vectorized under numpy; a bulk ``min``/``max`` scan
    otherwise.
    """
    n = len(batch)
    if n == 0:
        return
    if _np is not None:
        ops_np = _np.frombuffer(batch.ops, dtype=_np.uint8)
        b_np = _np.frombuffer(batch.b, dtype=_np.int32)
        if ops_np.max() > OP_WRITE:
            raise ProtocolError(
                f"unknown opcode {int(ops_np.max())} in BATCH"
            )
        access = ops_np >= OP_READ  # OP_READ or OP_WRITE
        if access.any():
            lids = b_np[access]
            lo = int(lids.min())
            if lo < 0:
                raise ProtocolError(
                    f"negative location id {lo} in BATCH access"
                )
            if table_size is not None and int(lids.max()) >= table_size:
                raise ProtocolError(
                    f"access names location id {int(lids.max())} but "
                    f"the session table has {table_size} entries"
                )
        return
    if max(batch.ops) > OP_WRITE:
        raise ProtocolError(
            f"unknown opcode {max(batch.ops)} in BATCH"
        )
    # Structural events carry b = -1 (or a fork child id); only access
    # slots are constrained, so the cheap whole-column bound uses -1 as
    # the structural floor.
    if min(batch.b) < -1:
        raise ProtocolError("negative location id in BATCH access")
    if table_size is not None:
        read_op, write_op = OP_READ, OP_WRITE
        for op, b in zip(batch.ops, batch.b):
            if (op == read_op or op == write_op) and b >= table_size:
                raise ProtocolError(
                    f"access names location id {b} but the session "
                    f"table has {table_size} entries"
                )


# -- CREDIT / ERROR / BYE -----------------------------------------------------


def encode_credit(amount: int) -> bytes:
    return _CREDIT.pack(amount)


def decode_credit(payload: bytes) -> int:
    if len(payload) != _CREDIT.size:
        raise ProtocolError(f"bad CREDIT payload length {len(payload)}")
    return _CREDIT.unpack(payload)[0]


def encode_error(code: int, message: str) -> bytes:
    return _ERROR.pack(code) + message.encode("utf-8", "replace")


def decode_error(payload: bytes) -> Tuple[int, str]:
    if len(payload) < _ERROR.size:
        raise ProtocolError(f"bad ERROR payload length {len(payload)}")
    code = _ERROR.unpack_from(payload)[0]
    return code, payload[_ERROR.size:].decode("utf-8", "replace")


def encode_bye_summary(events: int, races: int) -> bytes:
    return _BYE_S.pack(events, races)


def decode_bye_summary(payload: bytes) -> Tuple[int, int]:
    if len(payload) != _BYE_S.size:
        raise ProtocolError(f"bad BYE payload length {len(payload)}")
    events, races = _BYE_S.unpack(payload)
    return events, races


# -- RESUME / ACK -------------------------------------------------------------

#: session tokens become checkpoint file names, so they are restricted
#: to a filesystem- and traversal-safe alphabet
MAX_SESSION_TOKEN = 128
_TOKEN_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-"
)


def valid_session_token(token: str) -> bool:
    """Whether ``token`` is safe to use as a checkpoint file stem."""
    return (
        0 < len(token) <= MAX_SESSION_TOKEN
        and not token.startswith(".")
        and set(token) <= _TOKEN_CHARS
    )


def encode_resume(token: str) -> bytes:
    if not valid_session_token(token):
        raise ProtocolError(f"bad session token {token!r}")
    return token.encode("ascii")


def decode_resume(payload: bytes) -> str:
    try:
        token = payload.decode("ascii")
    except UnicodeDecodeError:
        raise ProtocolError("session token is not ASCII") from None
    if not valid_session_token(token):
        raise ProtocolError(f"bad session token {token!r}")
    return token


def encode_resume_reply(durable_seq: int) -> bytes:
    return _SEQ.pack(durable_seq)


def decode_resume_reply(payload: bytes) -> int:
    if len(payload) != _SEQ.size:
        raise ProtocolError(
            f"bad RESUME reply payload length {len(payload)}"
        )
    return _SEQ.unpack(payload)[0]


def encode_ack(durable_seq: int) -> bytes:
    return _SEQ.pack(durable_seq)


def decode_ack(payload: bytes) -> int:
    if len(payload) != _SEQ.size:
        raise ProtocolError(f"bad ACK payload length {len(payload)}")
    return _SEQ.unpack(payload)[0]


# -- RACES --------------------------------------------------------------------


def encode_races(reports: Iterable[RaceReport], seq: int = 0) -> bytes:
    """JSON-encode race reports with interned location ids.

    ``seq`` names the BATCH these reports were detected in, so a
    resuming client can key them idempotently.  ``prior_repr`` is a
    representative thread id for every built-in detector; anything
    non-JSON degrades to its ``repr`` rather than failing the stream.
    """
    rows = [
        {
            "loc": r.loc,
            "task": r.task,
            "kind": r.kind.value,
            "prior_kind": r.prior_kind.value,
            "prior_repr": r.prior_repr,
            "op_index": r.op_index,
        }
        for r in reports
    ]
    return json.dumps(
        {"seq": seq, "reports": rows}, separators=(",", ":"), default=repr
    ).encode("utf-8")


def decode_races(payload: bytes) -> Tuple[int, List[RaceReport]]:
    """Decode a RACES payload into ``(seq, reports)``.

    A bare JSON list (the v1 shape) is accepted and decodes with
    ``seq == 0`` (untagged).
    """
    try:
        obj = json.loads(payload)
    except ValueError as exc:
        raise ProtocolError(f"corrupt RACES payload: {exc}") from None
    if isinstance(obj, dict):
        rows = obj.get("reports")
        seq = obj.get("seq", 0)
        if not isinstance(rows, list) or not isinstance(seq, int):
            raise ProtocolError("corrupt RACES payload: bad object shape")
    elif isinstance(obj, list):
        rows, seq = obj, 0
    else:
        raise ProtocolError("corrupt RACES payload: not a list or object")
    out: List[RaceReport] = []
    try:
        for row in rows:
            out.append(
                RaceReport(
                    loc=row["loc"],
                    task=row["task"],
                    kind=AccessKind(row["kind"]),
                    prior_kind=AccessKind(row["prior_kind"]),
                    prior_repr=row.get("prior_repr"),
                    op_index=row.get("op_index", -1),
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"corrupt RACES payload: {exc!r}") from None
    return seq, out
