"""Multi-node serving: a location-sharded gateway over engine workers.

:class:`RaceCluster` is a stateless *gateway* tier in front of N
engine **worker** processes, each an ordinary ``repro-race serve``
(:class:`~repro.serve.server.RaceServer`) with its own per-session
:class:`~repro.engine.ingest.BatchEngine`.  Clients speak the same
RPRSERVE protocol they would to a single node -- the v5 HELLO reply
simply says how many workers answered (:data:`negotiated_workers` on
the client), and a v2..v4 client gets its usual byte-identical
exchange.

Routing is the per-location argument of the paper lifted to the
network layer: a race is always witnessed at one memory location, so
hash-sharding accesses by ``lid % N`` across independent detectors is
*exact*, not approximate.  The gateway runs the same vectorized
:func:`~repro.engine.ingest.split_batch` that
:class:`~repro.engine.ingest.ShardedBatchEngine` uses in-process and
ships whole column slices to the workers -- structural events (fork,
join, halt) are replicated to every worker so each one holds the full
series-parallel skeleton.  CBATCH frames are expanded at the gateway
and routed as raw slices (block structure does not survive sharding,
the same reason ``ShardedBatchEngine.ingest_compressed`` expands).

**Migration under kill.**  Each client session opens one *durable*
worker session per shard, keyed ``gw{nonce}-{sid}-s{k}`` -- that is
the ``(session, shard)`` key of the issue -- against workers running
with a checkpoint directory.  The gateway retains every routed slice
until the owning worker's checkpoint ACK covers it (the durable
session log).  When a worker is SIGKILLed, a supervisor task respawns
it on the same port and each affected link reconnects, RESUMEs its
``(session, shard)`` token, and replays the unacked slices; replayed
duplicates are skipped idempotently server-side and RACES frames are
keyed by sequence, so the client's final race multiset is exactly
that of an uninterrupted run.  Sessions on a non-checkpointable
backend (``depa``) use plain worker sessions instead and a worker
kill surfaces as a typed ``ERR_DETECTOR`` -- recovery is a lattice2d
feature, negotiated, never silently substituted.

Client-side durability (RESUME *from* a client) is refused with a
typed ``ERR_CHECKPOINT``: through the gateway, durability is an
inter-node concern -- the gateway masks worker failures, and a
client that needs its own crash recovery talks to a single node.

Everything is observable through :mod:`repro.obs` under
``component="cluster"``: per-worker routed-access counters, unacked
(replay-log) gauges, respawn counters, queue depths, credit stalls.

:class:`ClusterThread` is the synchronous harness (tests, benchmarks,
docs); ``python -m repro.serve.cluster`` is a self-checking loopback
smoke run used by CI.  See ``docs/SCALE_OUT.md``.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from itertools import count
from typing import Dict, List, Optional

from repro.engine.batch import EventBatch
from repro.engine.ingest import BACKENDS, split_batch
from repro.errors import ProtocolError, ServeError, WorkloadError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.serve import protocol as wire
from repro.serve.client import (
    ConnectError,
    RaceClient,
    RemoteError,
    TransportError,
)
from repro.serve.server import _read_frame

__all__ = [
    "ClusterConfig",
    "WorkerProcess",
    "RaceCluster",
    "ClusterThread",
]

#: RACES frames are forwarded in fixed-size chunks keyed by chunk
#: index: chunk *i* is streamed at seq ``i + 1`` and *replaces* the
#: client's previous copy of that chunk (the per-seq replacement the
#: durable protocol already defines).  The merged race list only ever
#: grows, so an update resends just the trailing partial chunk plus
#: anything new -- O(delta), and every frame stays far below the
#: negotiated cap no matter how racy the workload.
_RACES_CHUNK = 2048


@dataclass
class ClusterConfig:
    """Tunables for one :class:`RaceCluster`.

    ``workers`` is the engine fan-out: accesses go to worker
    ``lid % workers``.  ``checkpoint_dir`` roots the workers'
    durability (worker *k* writes under ``<dir>/worker-k``); ``None``
    uses a private temporary directory that lives as long as the
    cluster.  ``log_dir`` captures each worker's stdout/stderr as
    ``worker-k.log`` (CI uploads these on failure); ``None`` discards
    them.  The ``link_*`` knobs govern the gateway's worker links:
    a killed worker must respawn within the link's bounded
    exponential-backoff budget (default ~8 retries at 0.25s base,
    comfortably past a Python process restart).
    """

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = pick a free port (read it from ``cluster.port``)
    workers: int = 2
    credit_window: int = 8
    queue_high_water: int = 6
    max_frame: int = wire.DEFAULT_MAX_FRAME
    idle_timeout: float = 30.0
    hello_timeout: float = 10.0
    drain_timeout: float = 10.0
    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 8  #: applied slices between worker checkpoints
    log_dir: Optional[str] = None
    link_timeout: float = 15.0
    link_retries: int = 8
    link_backoff: float = 0.25
    worker_startup_timeout: float = 20.0


class _ClusterMetrics:
    """The gateway instrument bundle (one lookup at cluster start)."""

    def __init__(self, registry: MetricsRegistry, workers: int) -> None:
        labels = {"component": "cluster"}
        self.sessions_total = registry.counter(
            "cluster_sessions_total", "client sessions accepted",
            labels=labels,
        )
        self.sessions_active = registry.gauge(
            "cluster_sessions_active", "sessions currently open",
            labels=labels,
        )
        self.batches = registry.counter(
            "cluster_batches_total",
            "BATCH/CBATCH frames routed", labels=labels,
        )
        self.events = registry.counter(
            "cluster_events_total", "events ingested over the wire",
            labels=labels,
        )
        # The routing counters partition every incoming event exactly
        # once, mirroring ShardedBatchEngine: an access counts against
        # its owner worker, a replicated lifecycle event counts once.
        self.routed = [
            registry.counter(
                "cluster_routed_accesses_total",
                "accesses routed to this worker (lid % workers)",
                labels={**labels, "worker": str(k)},
            )
            for k in range(workers)
        ]
        self.lifecycle = registry.counter(
            "cluster_lifecycle_events_total",
            "lifecycle events replicated to every worker (counted once)",
            labels=labels,
        )
        self.unacked = [
            registry.gauge(
                "cluster_worker_unacked_slices",
                "slices retained for replay until this worker's "
                "checkpoint ACK covers them",
                labels={**labels, "worker": str(k)},
            )
            for k in range(workers)
        ]
        self.respawns = [
            registry.counter(
                "cluster_worker_respawns_total",
                "times the supervisor restarted this worker after a "
                "crash (resharding: respawn-in-place)",
                labels={**labels, "worker": str(k)},
            )
            for k in range(workers)
        ]
        self.races_streamed = registry.counter(
            "cluster_races_streamed_total",
            "race reports forwarded to clients", labels=labels,
        )
        self.credit_stalls = registry.counter(
            "cluster_credit_stalls_total",
            "credit grants withheld at the queue high-water mark",
            labels=labels,
        )
        self.queue_depth = registry.gauge(
            "cluster_queue_depth",
            "batches queued across all sessions", labels=labels,
        )
        self.errors = {
            name: registry.counter(
                "cluster_errors_total",
                "ERROR frames sent, by code",
                labels={**labels, "code": name},
            )
            for name in wire.ERROR_NAMES.values()
        }


class WorkerProcess:
    """One engine worker: ``repro-race serve`` as a killable subprocess.

    Like :class:`repro.engine.faults.ServerProcess` but with its
    stdout/stderr captured to ``log_path`` (CI uploads worker logs on
    failure).  ``kill()`` is SIGKILL -- the no-cleanup crash the
    migration machinery exists to survive.
    """

    def __init__(
        self,
        index: int,
        port: int,
        checkpoint_dir: str,
        *,
        checkpoint_interval: int = 8,
        log_path: Optional[str] = None,
        startup_timeout: float = 20.0,
    ) -> None:
        self.index = index
        self.port = port
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.log_path = log_path
        self.startup_timeout = startup_timeout
        self._proc: Optional[subprocess.Popen] = None
        self._log_handle = None

    def start(self) -> "WorkerProcess":
        if self._proc is not None and self._proc.poll() is None:
            raise WorkloadError(f"worker {self.index} already running")
        env = dict(os.environ)
        src = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        if self.log_path is not None:
            self._log_handle = open(self.log_path, "ab")
            out = self._log_handle
        else:
            out = subprocess.DEVNULL
        self._proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", str(self.port),
                "--checkpoint-dir", self.checkpoint_dir,
                "--checkpoint-interval", str(self.checkpoint_interval),
            ],
            stdout=out,
            stderr=out,
            env=env,
        )
        self._wait_ready()
        return self

    def _wait_ready(self) -> None:
        import socket as _socket

        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            if self._proc is not None and self._proc.poll() is not None:
                raise WorkloadError(
                    f"worker {self.index} exited with "
                    f"{self._proc.returncode} before accepting connections"
                )
            try:
                with _socket.create_connection(
                    ("127.0.0.1", self.port), timeout=0.25
                ):
                    return
            except OSError:
                time.sleep(0.05)
        raise WorkloadError(
            f"worker {self.index} not accepting on port {self.port} "
            f"within {self.startup_timeout}s"
        )

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def kill(self) -> None:
        """SIGKILL: the worker gets no chance to clean up."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.wait()
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    def terminate(self, timeout: float = 10.0) -> None:
        """SIGTERM: the worker drains gracefully."""
        if self._proc is not None and self._proc.poll() is None:
            self._proc.terminate()
            try:
                self._proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self.kill()
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None


class _GatewaySession:
    """Book-keeping for one live client connection at the gateway."""

    __slots__ = (
        "sid", "writer", "queue", "queued", "credits", "withheld",
        "write_lock", "failed", "draining", "max_frame", "links",
        "events", "races_total", "races_forwarded", "backend", "cbatch",
    )

    def __init__(
        self, sid: int, writer: asyncio.StreamWriter, max_frame: int
    ) -> None:
        self.sid = sid
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue()
        self.queued = 0
        self.credits = 0
        self.withheld = 0
        self.write_lock = asyncio.Lock()
        self.failed: Optional[BaseException] = None
        self.draining = False
        self.max_frame = max_frame
        self.links: List[RaceClient] = []
        self.events = 0  #: events this client streamed (its BYE total)
        self.races_total = 0
        self.races_forwarded = 0  #: merged reports already chunked out
        self.backend = "lattice2d"
        self.cbatch = False


_BYE = object()  # queue sentinel: client finished its stream


class RaceCluster:
    """The location-sharded gateway (see the module docstring).

    ``start()`` spawns the worker subprocesses, binds the gateway
    listener, and launches the supervisor; ``shutdown()`` drains
    sessions, terminates the workers, and removes a private
    checkpoint directory if one was created.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        if self.config.workers < 1:
            raise ServeError(
                f"need at least one worker, got {self.config.workers}"
            )
        if self.config.credit_window < 1:
            raise ServeError(
                f"credit window must be positive, got "
                f"{self.config.credit_window}"
            )
        if self.config.checkpoint_interval < 1:
            raise ServeError(
                f"checkpoint interval must be positive, got "
                f"{self.config.checkpoint_interval}"
            )
        self.registry = registry if registry is not None else get_registry()
        self._m = _ClusterMetrics(self.registry, self.config.workers)
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: Dict[int, _GatewaySession] = {}
        self._handlers: set = set()
        self._ids = count(1)
        self._closing = False
        self._closed_event: Optional[asyncio.Event] = None
        self._supervisor: Optional[asyncio.Task] = None
        self._tempdir = None  # TemporaryDirectory when no checkpoint_dir
        self._nonce = os.urandom(4).hex()  # keeps (session, shard)
        # tokens from colliding with a previous gateway's checkpoints
        self._executor = ThreadPoolExecutor(
            max_workers=max(8, 4 * self.config.workers),
            thread_name_prefix="repro-cluster",
        )
        self.workers: List[WorkerProcess] = []
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    def _ckpt_root(self) -> str:
        if self.config.checkpoint_dir is not None:
            return self.config.checkpoint_dir
        if self._tempdir is None:
            import tempfile

            self._tempdir = tempfile.TemporaryDirectory(
                prefix="repro-cluster-"
            )
        return self._tempdir.name

    def _spawn_worker(self, k: int, port: int) -> WorkerProcess:
        root = self._ckpt_root()
        ckdir = os.path.join(root, f"worker-{k}")
        os.makedirs(ckdir, exist_ok=True)
        log_path = None
        if self.config.log_dir is not None:
            os.makedirs(self.config.log_dir, exist_ok=True)
            log_path = os.path.join(self.config.log_dir, f"worker-{k}.log")
        return WorkerProcess(
            k, port, ckdir,
            checkpoint_interval=self.config.checkpoint_interval,
            log_path=log_path,
            startup_timeout=self.config.worker_startup_timeout,
        ).start()

    async def start(self) -> int:
        """Spawn the workers, bind the gateway; returns the bound port."""
        from repro.engine.faults import free_port

        if self._server is not None:
            raise ServeError("cluster already started")
        self._closed_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            for k in range(self.config.workers):
                port = free_port()
                worker = await loop.run_in_executor(
                    self._executor, self._spawn_worker, k, port
                )
                self.workers.append(worker)
            self._server = await asyncio.start_server(
                self._handle, self.config.host, self.config.port
            )
        except BaseException:
            self._teardown_workers()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        self._supervisor = asyncio.ensure_future(self._supervise())
        return self.port

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (CLI mode)."""
        import signal

        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        if self._closed_event is None:
            raise ServeError("cluster not started")
        await self._closed_event.wait()

    async def _supervise(self) -> None:
        """Respawn crashed workers on their original port (the
        respawn-in-place resharding strategy: shard *k* stays pinned to
        worker *k*, so no slice ever changes owner and the links'
        RESUME tokens stay valid)."""
        loop = asyncio.get_running_loop()
        while not self._closing:
            for k, worker in enumerate(self.workers):
                if self._closing or worker.alive():
                    continue
                try:
                    self.workers[k] = await loop.run_in_executor(
                        self._executor, self._spawn_worker, k, worker.port
                    )
                except WorkloadError:
                    continue  # retried on the next sweep
                self._m.respawns[k].inc()
            await asyncio.sleep(0.2)

    def kill_worker(self, k: int) -> None:
        """SIGKILL worker ``k`` (fault injection; the supervisor will
        respawn it and the live links will migrate)."""
        self.workers[k].kill()

    def _teardown_workers(self) -> None:
        for worker in self.workers:
            worker.terminate()
        self.workers = []
        if self._tempdir is not None:
            self._tempdir.cleanup()
            self._tempdir = None

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, let live sessions finish,
        then terminate the workers."""
        if self._closing:
            return
        self._closing = True
        if self._supervisor is not None:
            self._supervisor.cancel()
            try:
                await self._supervisor
            except (asyncio.CancelledError, Exception):
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions.values()):
            session.draining = True
        if self._handlers:
            done, pending = await asyncio.wait(
                self._handlers, timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending)
        self._teardown_workers()
        self._executor.shutdown(wait=False)
        if self._closed_event is not None:
            self._closed_event.set()

    # -- wire helpers --------------------------------------------------------

    async def _send(
        self, session: _GatewaySession, ftype: int, payload: bytes = b""
    ) -> None:
        async with session.write_lock:
            session.writer.write(wire.encode_frame(ftype, payload))
            await session.writer.drain()

    async def _send_error(
        self, session: _GatewaySession, code: int, message: str
    ) -> None:
        self._m.errors[wire.ERROR_NAMES[code]].inc()
        try:
            await self._send(
                session, wire.FRAME_ERROR, wire.encode_error(code, message)
            )
        except (ConnectionError, RuntimeError):
            pass  # the peer is already gone; teardown continues

    # -- session lifecycle ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        sid = next(self._ids)
        session = _GatewaySession(sid, writer, self.config.max_frame)
        self._sessions[sid] = session
        self._m.sessions_total.inc()
        self._m.sessions_active.inc()
        consumer: Optional[asyncio.Task] = None
        try:
            if self._closing:
                await self._send_error(
                    session, wire.ERR_SHUTTING_DOWN, "gateway is draining"
                )
                return
            if not await self._handshake(session, reader):
                return
            session.credits = self.config.credit_window
            consumer = asyncio.ensure_future(self._consume(session))
            await self._read_loop(session, reader, consumer)
        except asyncio.CancelledError:
            raise
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass  # client vanished mid-frame; teardown below
        except ProtocolError as exc:
            await self._send_error(session, wire.ERR_PROTOCOL, str(exc))
        finally:
            if consumer is not None:
                consumer.cancel()
                try:
                    await consumer
                except (asyncio.CancelledError, Exception):
                    pass
            self._close_links(session)
            session.credits = 0
            del self._sessions[sid]
            self._m.sessions_active.dec()
            self._m.queue_depth.set(self._total_depth())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._handlers.discard(task)

    def _close_links(self, session: _GatewaySession) -> None:
        for link in session.links:
            link.close()
        session.links = []

    async def _handshake(
        self, session: _GatewaySession, reader: asyncio.StreamReader
    ) -> bool:
        try:
            ftype, payload = await asyncio.wait_for(
                _read_frame(reader, wire.DEFAULT_MAX_FRAME),
                self.config.hello_timeout,
            )
        except asyncio.TimeoutError:
            await self._send_error(
                session, wire.ERR_IDLE_TIMEOUT, "no HELLO within timeout"
            )
            return False
        if ftype != wire.FRAME_HELLO:
            await self._send_error(
                session, wire.ERR_PROTOCOL,
                f"expected HELLO, got {wire.FRAME_NAMES[ftype]}",
            )
            return False
        version, client_max, requested, features = wire.decode_hello(payload)
        if not (
            wire.MIN_PROTOCOL_VERSION <= version <= wire.PROTOCOL_VERSION
        ):
            await self._send_error(
                session, wire.ERR_VERSION,
                f"gateway speaks protocol versions "
                f"{wire.MIN_PROTOCOL_VERSION}..{wire.PROTOCOL_VERSION}, "
                f"client sent {version}",
            )
            return False
        if requested is not None and requested not in BACKENDS:
            await self._send_error(
                session, wire.ERR_BACKEND,
                f"unknown engine backend {requested!r}; "
                f"expected one of {BACKENDS}",
            )
            return False
        if features & wire.FLAG_CBATCH and version >= 4:
            # Grantable unconditionally: the gateway expands CBATCH
            # frames itself and routes raw slices (block structure
            # does not survive sharding).
            session.cbatch = True
        # One durable worker session per shard -- the (session, shard)
        # key.  Non-checkpointable backends get plain links: kill
        # recovery is a lattice2d feature, never silently substituted.
        durable = requested is None or requested == "lattice2d"
        try:
            session.links = await self._connect_links(
                session.sid, requested, durable
            )
        except RemoteError as exc:
            # A worker refused the session (e.g. unknown backend
            # variant): forward the typed refusal verbatim.
            await self._send_error(session, exc.code, exc.remote_message)
            return False
        except (ConnectError, TransportError, ServeError) as exc:
            await self._send_error(
                session, wire.ERR_DETECTOR,
                f"engine worker unavailable: {exc}",
            )
            return False
        session.backend = session.links[0].negotiated_backend or "lattice2d"
        max_frame = min(self.config.max_frame, client_max)
        session.max_frame = max_frame
        # The reply mirrors the client's version and wire shape; only
        # a v5 reply has room for the worker count.
        await self._send(
            session, wire.FRAME_HELLO,
            wire.encode_hello_reply(
                self.config.credit_window, max_frame, version=version,
                backend=session.backend if version >= 3 else None,
                features=(
                    wire.FLAG_CBATCH
                    if version >= 4 and session.cbatch else 0
                ),
                workers=self.config.workers if version >= 5 else 1,
            ),
        )
        return True

    async def _connect_links(
        self, sid: int, backend: Optional[str], durable: bool
    ) -> List[RaceClient]:
        """Open one worker session per shard, concurrently."""
        loop = asyncio.get_running_loop()

        def dial(k: int) -> RaceClient:
            token = (
                f"gw{self._nonce}-{sid}-s{k}" if durable else None
            )
            return RaceClient(
                "127.0.0.1", self.workers[k].port,
                timeout=self.config.link_timeout,
                session=token,
                max_retries=self.config.link_retries,
                retry_backoff=self.config.link_backoff,
                backend=backend,
            ).connect()

        futures = [
            loop.run_in_executor(self._executor, dial, k)
            for k in range(self.config.workers)
        ]
        results = await asyncio.gather(*futures, return_exceptions=True)
        links: List[RaceClient] = []
        failure: Optional[BaseException] = None
        for result in results:
            if isinstance(result, BaseException):
                failure = failure if failure is not None else result
            else:
                links.append(result)
        if failure is not None:
            for link in links:
                link.close()
            raise failure
        return links

    async def _read_loop(
        self,
        session: _GatewaySession,
        reader: asyncio.StreamReader,
        consumer: asyncio.Task,
    ) -> None:
        max_frame = session.max_frame
        table_size = 0
        ships_table = False
        enqueued_seq = 0
        while True:
            try:
                ftype, payload = await asyncio.wait_for(
                    _read_frame(reader, max_frame),
                    self.config.idle_timeout,
                )
            except asyncio.TimeoutError:
                await self._send_error(
                    session, wire.ERR_IDLE_TIMEOUT,
                    f"no frame within {self.config.idle_timeout}s",
                )
                return
            except ProtocolError as exc:
                code = (
                    wire.ERR_FRAME_TOO_LARGE
                    if "exceeds" in str(exc)
                    else wire.ERR_BAD_CRC
                    if "CRC" in str(exc)
                    else wire.ERR_PROTOCOL
                )
                await self._send_error(session, code, str(exc))
                return
            if session.failed is not None:
                # The consumer already sent ERROR; drain what credit
                # allowed (closing early raises an RST that can destroy
                # the in-flight ERROR) and end on BYE or EOF.
                if ftype == wire.FRAME_BYE:
                    return
                continue
            if ftype in (wire.FRAME_BATCH, wire.FRAME_CBATCH):
                if ftype == wire.FRAME_CBATCH and not session.cbatch:
                    await self._send_error(
                        session, wire.ERR_COMPRESS,
                        "CBATCH on a session that did not negotiate "
                        "the compression feature",
                    )
                    return
                if session.credits <= 0:
                    await self._send_error(
                        session, wire.ERR_CREDIT_OVERRUN,
                        "BATCH with no credit outstanding",
                    )
                    return
                session.credits -= 1
                try:
                    if ftype == wire.FRAME_CBATCH:
                        batch, new_locs, seq = wire.decode_cbatch_payload(
                            payload
                        )
                    else:
                        batch, new_locs, seq = wire.decode_batch_payload(
                            payload
                        )
                except ProtocolError as exc:
                    await self._send_error(
                        session, wire.ERR_MALFORMED_BATCH, str(exc)
                    )
                    return
                if seq and seq != enqueued_seq + 1:
                    await self._send_error(
                        session, wire.ERR_PROTOCOL,
                        f"batch seq {seq} breaks contiguity (expected "
                        f"{enqueued_seq + 1})",
                    )
                    return
                try:
                    if new_locs is not None:
                        ships_table = True
                        table_size += len(new_locs)
                    bound = table_size if ships_table else None
                    if isinstance(batch, EventBatch):
                        wire.validate_batch_columns(batch, bound)
                    else:
                        for block in batch.blocks:
                            wire.validate_batch_columns(block, bound)
                except ProtocolError as exc:
                    await self._send_error(
                        session, wire.ERR_MALFORMED_BATCH, str(exc)
                    )
                    return
                enqueued_seq = max(enqueued_seq, seq)
                session.queued += 1
                session.queue.put_nowait(
                    (batch, new_locs if new_locs else None)
                )
                self._m.queue_depth.set(self._total_depth())
            elif ftype == wire.FRAME_RESUME:
                # Through the gateway, durability is inter-node: the
                # gateway masks worker failures.  Client-side RESUME
                # would need the gateway itself to be durable -- refuse
                # typed, never accept-and-forget.
                await self._send_error(
                    session, wire.ERR_CHECKPOINT,
                    "client-side durable sessions are not available "
                    "through the gateway (worker durability is "
                    "inter-node); connect to a single node for RESUME",
                )
                return
            elif ftype == wire.FRAME_BYE:
                session.queue.put_nowait(_BYE)
                await consumer
                if session.failed is None:
                    await self._send(
                        session, wire.FRAME_BYE,
                        wire.encode_bye_summary(
                            session.events, session.races_total
                        ),
                    )
                return
            else:
                await self._send_error(
                    session, wire.ERR_PROTOCOL,
                    f"unexpected {wire.FRAME_NAMES[ftype]} frame",
                )
                return

    def _total_depth(self) -> int:
        return sum(s.queued for s in self._sessions.values())

    # -- routing -------------------------------------------------------------

    def _merged_races(self, session: _GatewaySession) -> List:
        """Every report streamed back by every link, in (worker, seq)
        order -- deterministic, and stable under replay because a
        link's replayed RACES frames *replace* identical content."""
        merged: List = []
        for link in session.links:
            merged.extend(link.races)
        return merged

    async def _forward_races(self, session: _GatewaySession) -> None:
        """Stream the merged race list to the client, chunked at
        ``_RACES_CHUNK`` with each chunk keyed by its index (see the
        constant's comment); resends only chunks that changed."""
        merged = self._merged_races(session)
        if len(merged) == session.races_forwarded:
            session.races_total = len(merged)
            return
        first_dirty = session.races_forwarded // _RACES_CHUNK
        for i in range(first_dirty, -(-len(merged) // _RACES_CHUNK)):
            chunk = merged[i * _RACES_CHUNK: (i + 1) * _RACES_CHUNK]
            await self._send(
                session, wire.FRAME_RACES,
                wire.encode_races(chunk, seq=i + 1),
            )
        self._m.races_streamed.inc(len(merged) - session.races_forwarded)
        session.races_forwarded = len(merged)
        session.races_total = len(merged)

    async def _consume(self, session: _GatewaySession) -> None:
        """The session's routing worker: dequeue, split by location,
        ship a slice to every worker link, forward the new races, and
        return credit (or stall at the high-water mark)."""
        loop = asyncio.get_running_loop()
        n = self.config.workers
        while True:
            item = await session.queue.get()
            if item is _BYE:
                await self._finish_links(session)
                return
            batch, _new_locs = item
            session.queued -= 1
            try:
                if not isinstance(batch, EventBatch):
                    # CBATCH: expand once at the edge, route raw slices.
                    batch = await loop.run_in_executor(
                        self._executor, batch.decompress
                    )
                subs = await loop.run_in_executor(
                    self._executor, split_batch, batch, n
                )
                await asyncio.gather(*[
                    loop.run_in_executor(
                        self._executor, session.links[k].send_batch, subs[k]
                    )
                    for k in range(n)
                ])
            except RemoteError as exc:
                session.failed = exc
                await self._send_error(session, exc.code, exc.remote_message)
                return
            except (
                TransportError, ConnectError, ServeError, ProtocolError
            ) as exc:
                session.failed = exc
                await self._send_error(
                    session, wire.ERR_DETECTOR,
                    f"engine worker lost mid-stream: {exc}",
                )
                return
            lifecycle = len(batch) - batch.access_count()
            self._m.lifecycle.inc(lifecycle)
            for k in range(n):
                self._m.routed[k].inc(len(subs[k]) - lifecycle)
                self._m.unacked[k].set(len(session.links[k]._unacked))
            session.events += len(batch)
            self._m.events.inc(len(batch))
            self._m.batches.inc()
            self._m.queue_depth.set(self._total_depth())
            await self._forward_races(session)
            if session.queued >= self.config.queue_high_water:
                session.withheld += 1
                self._m.credit_stalls.inc()
            elif not session.draining:
                grant = 1 + session.withheld
                session.withheld = 0
                session.credits += grant
                await self._send(
                    session, wire.FRAME_CREDIT, wire.encode_credit(grant)
                )

    async def _finish_links(self, session: _GatewaySession) -> None:
        """BYE fan-out: close every worker session, then forward the
        final merged race list."""
        loop = asyncio.get_running_loop()
        try:
            await asyncio.gather(*[
                loop.run_in_executor(self._executor, link.finish)
                for link in session.links
            ])
        except RemoteError as exc:
            session.failed = exc
            await self._send_error(session, exc.code, exc.remote_message)
            return
        except (
            TransportError, ConnectError, ServeError, ProtocolError
        ) as exc:
            session.failed = exc
            await self._send_error(
                session, wire.ERR_DETECTOR,
                f"engine worker lost during drain: {exc}",
            )
            return
        await self._forward_races(session)


class ClusterThread:
    """A :class:`RaceCluster` on a private event loop in a daemon
    thread -- loopback multi-node serving for synchronous callers::

        cluster = ClusterThread(ClusterConfig(workers=2))
        port = cluster.start()
        ... RaceClient("127.0.0.1", port) ...
        cluster.stop()

    ``kill_worker(k)`` SIGKILLs worker *k* from the calling thread
    (fault injection); the cluster's supervisor respawns it.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ClusterConfig()
        self.registry = registry
        self.cluster: Optional[RaceCluster] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to start()/stop()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.cluster = RaceCluster(self.config, registry=self.registry)
        try:
            self.port = await self.cluster.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.cluster.serve_forever()

    def start(self, timeout: float = 60.0) -> int:
        """Start the thread; returns the gateway's bound port."""
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServeError("cluster thread did not come up")
        if self._error is not None:
            raise self._error
        assert self.port is not None
        return self.port

    def kill_worker(self, k: int) -> None:
        """SIGKILL worker ``k``; the supervisor respawns it."""
        assert self.cluster is not None
        self.cluster.kill_worker(k)

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain and join the cluster thread."""
        if self._loop is not None and self._thread.is_alive():
            assert self.cluster is not None
            asyncio.run_coroutine_threadsafe(
                self.cluster.shutdown(), self._loop
            )
        self._thread.join(timeout)

    def __enter__(self) -> "ClusterThread":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def main(argv: Optional[List[str]] = None) -> int:
    """Self-checking loopback smoke run (the CI multinode step):
    build a racegen workload, stream it through a gateway, and require
    the exact race multiset of a serial local replay."""
    import argparse
    import json
    from collections import Counter

    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.cluster",
        description="loopback multi-node smoke: gateway-sharded "
        "detection must equal a serial local replay",
    )
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--batch-size", type=int, default=16_384)
    parser.add_argument(
        "--kill-worker", action="store_true",
        help="SIGKILL a worker mid-stream and require migration",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the stats as JSON"
    )
    args = parser.parse_args(argv)

    from repro.engine.benchlib import build_workload, capture
    from repro.engine.ingest import BatchEngine

    _events, batch, _interner = capture(build_workload(args.events))
    local = BatchEngine()
    local.ingest(batch)
    expected = Counter(
        (r.task, r.loc, r.kind, r.prior_kind) for r in local.detector.races
    )
    start = time.perf_counter()
    with ClusterThread(ClusterConfig(workers=args.workers)) as cluster:
        client = RaceClient("127.0.0.1", cluster.port).connect()
        pieces = list(batch.slices(args.batch_size))
        kill_at = len(pieces) // 2 if args.kill_worker else -1
        for k, piece in enumerate(pieces):
            if k == kill_at:
                cluster.kill_worker(args.workers - 1)
            client.send_batch(piece)
        summary = client.finish()
        client.close()
        workers_seen = client.negotiated_workers
    elapsed = time.perf_counter() - start
    got = Counter(
        (r.task, r.loc, r.kind, r.prior_kind) for r in summary.reports
    )
    stats = {
        "workers": args.workers,
        "negotiated_workers": workers_seen,
        "events": summary.events,
        "races": sum(got.values()),
        "expected_races": sum(expected.values()),
        "killed": args.kill_worker,
        "seconds": round(elapsed, 3),
        "agrees": got == expected,
    }
    encoded = json.dumps(stats, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            fp.write(encoded + "\n")
    print(encoded)
    if not stats["agrees"] or workers_seen != args.workers:
        print("MULTINODE SMOKE FAILURE", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
