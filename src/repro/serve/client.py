"""Blocking client for the RPRSERVE protocol, plus a load generator.

:class:`RaceClient` is the synchronous counterpart of
:class:`~repro.serve.server.RaceServer`: it speaks the HELLO exchange,
pushes :class:`~repro.engine.batch.EventBatch` columns as BATCH
frames while honouring the server's credit grants, collects the RACES
frames streamed back, and closes with a BYE handshake whose summary
it cross-checks against its own counters.  Server-side failures
arrive as ERROR frames and raise :class:`RemoteError` with the
machine-readable code (``remote.code``) preserved.

On top of it sit the replay helpers -- :func:`submit_batch`,
:func:`submit_trace` for ``.rpr2trc`` files, :func:`submit_program`
for racegen program bodies -- and :func:`run_load`, the
multi-connection load generator behind ``repro-race submit --sessions``
and ``benchmarks/bench_serve.py``: N threads, one session each,
replaying the same workload concurrently and reporting aggregate
events/sec.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.reports import RaceReport
from repro.engine.batch import EventBatch, LocationInterner
from repro.errors import ProtocolError, ServeError
from repro.serve import protocol as wire

__all__ = [
    "ConnectError",
    "RemoteError",
    "ClientSummary",
    "RaceClient",
    "submit_batch",
    "submit_trace",
    "submit_program",
    "LoadResult",
    "run_load",
]


class ConnectError(ServeError):
    """The server could not be reached at all (TCP dial failed)."""


class RemoteError(ServeError):
    """The server answered with an ERROR frame.

    ``code`` is the wire error code (``wire.ERR_*``); ``str()`` is the
    server's message prefixed with the code's name.
    """

    def __init__(self, code: int, message: str) -> None:
        name = wire.ERROR_NAMES.get(code, str(code))
        super().__init__(f"server error [{name}]: {message}")
        self.code = code
        self.remote_message = message


@dataclass
class ClientSummary:
    """What one session accomplished, per the server's BYE summary."""

    events: int  #: events the server ingested for this session
    races: int  #: race reports the server streamed back
    reports: List[RaceReport] = field(default_factory=list)


class RaceClient:
    """One blocking RPRSERVE session.

    Use as a context manager (connects on entry, closes on exit)::

        with RaceClient("127.0.0.1", port) as client:
            for piece in batch.slices(8192):
                client.send_batch(piece)
            summary = client.finish()

    ``send_batch`` blocks while the session is out of credit, reading
    frames until the server grants more -- that *is* the backpressure:
    a slow server throttles its clients instead of buffering without
    bound.  RACES frames are decoded as they arrive into
    :attr:`races`; location ids in them are the client's own interned
    ids unless the session ships its table (``ship_locations=True``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        interner: Optional[LocationInterner] = None,
        ship_locations: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self.interner = interner
        self.ship_locations = ship_locations
        self.credit = 0
        self.races: List[RaceReport] = []
        self.events_sent = 0
        self.batches_sent = 0
        self._sock: Optional[socket.socket] = None
        self._shipped_locations = 0
        self._finished: Optional[Tuple[int, int]] = None

    # -- connection ----------------------------------------------------------

    def connect(self) -> "RaceClient":
        """Dial the server and complete the HELLO exchange."""
        if self._sock is not None:
            raise ServeError("client already connected")
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ConnectError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        self._sock = sock
        self._send_frame(wire.FRAME_HELLO, wire.encode_hello(self.max_frame))
        ftype, payload = self._recv_frame()
        if ftype == wire.FRAME_ERROR:
            code, message = wire.decode_error(payload)
            self.close()
            raise RemoteError(code, message)
        if ftype != wire.FRAME_HELLO:
            self.close()
            raise ProtocolError(
                f"expected HELLO reply, got {wire.FRAME_NAMES[ftype]}"
            )
        _version, credit, max_frame = wire.decode_hello_reply(payload)
        self.credit = credit
        self.max_frame = max_frame
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "RaceClient":
        return self.connect()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- wire ----------------------------------------------------------------

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise ServeError("client is not connected")
        return self._sock

    def _send_frame(self, ftype: int, payload: bytes = b"") -> None:
        try:
            self._require_sock().sendall(wire.encode_frame(ftype, payload))
        except OSError as exc:
            raise ServeError(f"send failed: {exc}") from exc

    def _recv_exactly(self, n: int) -> bytes:
        sock = self._require_sock()
        chunks = []
        got = 0
        while got < n:
            try:
                chunk = sock.recv(n - got)
            except socket.timeout as exc:
                raise ServeError(
                    f"no frame from server within {self.timeout}s"
                ) from exc
            except OSError as exc:
                raise ServeError(f"receive failed: {exc}") from exc
            if not chunk:
                raise ServeError(
                    "server closed the connection mid-frame"
                )
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def _recv_frame(self) -> Tuple[int, bytes]:
        head = self._recv_exactly(wire.FRAME_HEADER_SIZE)
        length, ftype, crc = wire.parse_frame_header(head)
        wire.check_frame_length(length, self.max_frame)
        payload = self._recv_exactly(length) if length else b""
        wire.check_payload_crc(payload, crc)
        return ftype, payload

    def _pump(self) -> Tuple[int, bytes]:
        """Read one frame, folding CREDIT/RACES into client state;
        returns the frame for the caller to inspect too."""
        ftype, payload = self._recv_frame()
        if ftype == wire.FRAME_CREDIT:
            self.credit += wire.decode_credit(payload)
        elif ftype == wire.FRAME_RACES:
            self.races.extend(wire.decode_races(payload))
        elif ftype == wire.FRAME_ERROR:
            code, message = wire.decode_error(payload)
            self.close()
            raise RemoteError(code, message)
        return ftype, payload

    # -- streaming -----------------------------------------------------------

    def send_batch(self, batch: EventBatch) -> None:
        """Push one BATCH frame, waiting for credit first if the
        session has none outstanding."""
        if self._finished is not None:
            raise ServeError("session already finished (BYE sent)")
        while self.credit <= 0:
            self._pump()
        new_locations: Sequence = ()
        if self.ship_locations:
            if self.interner is None:
                raise ServeError(
                    "ship_locations needs the session's interner"
                )
            table = self.interner.locations()
            new_locations = table[self._shipped_locations:]
            self._shipped_locations = len(table)
        payload = wire.encode_batch_payload(batch, new_locations)
        if len(payload) > self.max_frame:
            raise ProtocolError(
                f"batch of {len(batch)} events encodes to {len(payload)} "
                f"bytes, over the negotiated frame cap of "
                f"{self.max_frame}; slice it smaller"
            )
        self.credit -= 1
        self._send_frame(wire.FRAME_BATCH, payload)
        self.events_sent += len(batch)
        self.batches_sent += 1

    def send_batches(
        self, batch: EventBatch, batch_size: int = 8192
    ) -> None:
        """Slice ``batch`` and push every piece."""
        for piece in batch.slices(batch_size):
            self.send_batch(piece)

    def finish(self) -> ClientSummary:
        """Send BYE, drain the stream, and return the session summary.

        The server's summary is cross-checked against the client's own
        event counter -- a disagreement means frames were lost or
        double-counted and raises :class:`ProtocolError`.
        """
        if self._finished is None:
            self._send_frame(wire.FRAME_BYE)
            while True:
                ftype, payload = self._pump()
                if ftype == wire.FRAME_BYE:
                    self._finished = wire.decode_bye_summary(payload)
                    break
                if ftype not in (wire.FRAME_CREDIT, wire.FRAME_RACES):
                    raise ProtocolError(
                        f"unexpected {wire.FRAME_NAMES[ftype]} frame "
                        f"while draining"
                    )
        events, races = self._finished
        if events != self.events_sent:
            raise ProtocolError(
                f"server ingested {events} events, client sent "
                f"{self.events_sent}"
            )
        return ClientSummary(events, races, list(self.races))


# -- replay helpers -----------------------------------------------------------


def submit_batch(
    host: str,
    port: int,
    batch: EventBatch,
    *,
    interner: Optional[LocationInterner] = None,
    batch_size: int = 8192,
    ship_locations: bool = False,
    timeout: float = 30.0,
) -> ClientSummary:
    """Replay one in-memory batch over a fresh session."""
    with RaceClient(
        host, port, timeout=timeout, interner=interner,
        ship_locations=ship_locations,
    ) as client:
        client.send_batches(batch, batch_size)
        return client.finish()


def submit_trace(
    host: str,
    port: int,
    path: str,
    *,
    batch_size: int = 8192,
    ship_locations: bool = False,
    timeout: float = 30.0,
) -> ClientSummary:
    """Replay a trace file (compact ``.rpr2trc`` or JSONL) over a
    fresh session."""
    from repro.engine.batch import batch_from_events
    from repro.engine.tracefile import is_tracefile, read_trace

    if is_tracefile(path):
        batch, interner = read_trace(path)
    else:
        from repro.trace import load_events

        batch, interner = batch_from_events(load_events(path))
    return submit_batch(
        host, port, batch, interner=interner, batch_size=batch_size,
        ship_locations=ship_locations, timeout=timeout,
    )


def submit_program(
    host: str,
    port: int,
    body: Callable,
    *,
    batch_size: int = 8192,
    ship_locations: bool = False,
    timeout: float = 30.0,
) -> ClientSummary:
    """Run a program body locally into a columnar batch, then replay
    it over a fresh session."""
    from repro.engine.batch import BatchBuilder
    from repro.forkjoin.interpreter import run

    builder = BatchBuilder()
    run(body, observers=[builder])
    return submit_batch(
        host, port, builder.batch, interner=builder.interner,
        batch_size=batch_size, ship_locations=ship_locations,
        timeout=timeout,
    )


# -- load generator -----------------------------------------------------------


@dataclass
class LoadResult:
    """Aggregate outcome of one :func:`run_load` drive."""

    sessions: int
    events: int  #: total events ingested across all sessions
    races: int  #: total race reports streamed back
    seconds: float  #: wall time from the start barrier to the last BYE
    summaries: List[ClientSummary]

    @property
    def events_per_sec(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


def run_load(
    host: str,
    port: int,
    batch: EventBatch,
    *,
    sessions: int = 4,
    batch_size: int = 8192,
    timeout: float = 60.0,
) -> LoadResult:
    """Drive ``sessions`` concurrent connections, each replaying
    ``batch``, and measure aggregate wall-clock throughput.

    All sessions connect and handshake first, then start streaming
    together off a barrier so the measured window is pure streaming.
    The first session failure is re-raised after every thread joins.
    """
    if sessions < 1:
        raise ServeError(f"need at least one session, got {sessions}")
    clients = [
        RaceClient(host, port, timeout=timeout).connect()
        for _ in range(sessions)
    ]
    barrier = threading.Barrier(sessions + 1)
    summaries: List[Optional[ClientSummary]] = [None] * sessions
    errors: List[BaseException] = []

    def drive(k: int, client: RaceClient) -> None:
        try:
            barrier.wait()
            client.send_batches(batch, batch_size)
            summaries[k] = client.finish()
        except BaseException as exc:
            errors.append(exc)
            barrier.abort()
        finally:
            client.close()

    threads = [
        threading.Thread(
            target=drive, args=(k, client),
            name=f"repro-load-{k}", daemon=True,
        )
        for k, client in enumerate(clients)
    ]
    for thread in threads:
        thread.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    done = [s for s in summaries if s is not None]
    return LoadResult(
        sessions=sessions,
        events=sum(s.events for s in done),
        races=sum(s.races for s in done),
        seconds=elapsed,
        summaries=done,
    )
