"""Blocking client for the RPRSERVE protocol, plus a load generator.

:class:`RaceClient` is the synchronous counterpart of
:class:`~repro.serve.server.RaceServer`: it speaks the HELLO exchange,
pushes :class:`~repro.engine.batch.EventBatch` columns as BATCH
frames while honouring the server's credit grants, collects the RACES
frames streamed back, and closes with a BYE handshake whose summary
it cross-checks against its own counters.  Server-side failures
arrive as ERROR frames and raise :class:`RemoteError` with the
machine-readable code (``remote.code``) preserved.

On top of it sit the replay helpers -- :func:`submit_batch`,
:func:`submit_trace` for ``.rpr2trc`` files, :func:`submit_program`
for racegen program bodies -- and :func:`run_load`, the
multi-connection load generator behind ``repro-race submit --sessions``
and ``benchmarks/bench_serve.py``: N threads, one session each,
replaying the same workload concurrently and reporting aggregate
events/sec.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.reports import RaceReport
from repro.engine.batch import EventBatch, LocationInterner
from repro.errors import ProtocolError, ServeError
from repro.serve import protocol as wire

__all__ = [
    "ConnectError",
    "TransportError",
    "RemoteError",
    "ClientSummary",
    "RaceClient",
    "submit_batch",
    "submit_trace",
    "submit_program",
    "LoadResult",
    "run_load",
]


class ConnectError(ServeError):
    """The server could not be reached at all (TCP dial failed)."""


class TransportError(ServeError):
    """The connection died mid-session (send/receive failed, EOF, or
    a read timeout).  Durable sessions (``session=...``) recover from
    this transparently by reconnecting and replaying; plain sessions
    surface it."""


class RemoteError(ServeError):
    """The server answered with an ERROR frame.

    ``code`` is the wire error code (``wire.ERR_*``); ``str()`` is the
    server's message prefixed with the code's name.
    """

    def __init__(self, code: int, message: str) -> None:
        name = wire.ERROR_NAMES.get(code, str(code))
        super().__init__(f"server error [{name}]: {message}")
        self.code = code
        self.remote_message = message


@dataclass
class ClientSummary:
    """What one session accomplished, per the server's BYE summary."""

    events: int  #: events the server ingested for this session
    races: int  #: race reports the server streamed back
    reports: List[RaceReport] = field(default_factory=list)


class RaceClient:
    """One blocking RPRSERVE session.

    Use as a context manager (connects on entry, closes on exit)::

        with RaceClient("127.0.0.1", port) as client:
            for piece in batch.slices(8192):
                client.send_batch(piece)
            summary = client.finish()

    ``send_batch`` blocks while the session is out of credit, reading
    frames until the server grants more -- that *is* the backpressure:
    a slow server throttles its clients instead of buffering without
    bound.  RACES frames are decoded as they arrive into
    :attr:`races`; location ids in them are the client's own interned
    ids unless the session ships its table (``ship_locations=True``).

    Passing ``backend="depa"`` (or any name the server knows) requests
    an engine backend for the session via the v3 HELLO; the grant is
    readable as :attr:`negotiated_backend` after :meth:`connect`.  A
    pre-negotiation (v2) server answers with a v2-shaped reply, which
    is fine when no backend was requested but raises
    :class:`~repro.errors.ServeError` when one was -- a requested
    backend is a requirement, never silently downgraded.

    Passing ``compress=True`` requests the v4 CBATCH feature in the
    HELLO: :meth:`send_compressed` then ships
    :class:`~repro.compress.CompressedTrace` frames the server ingests
    via its memoized kernel without expanding.  Like a requested
    backend, the feature is a requirement -- a server that cannot
    grant it (pre-v4, shared pool, prediction) fails the connect with
    a typed error rather than silently receiving raw batches.

    Passing ``session="some-token"`` makes the session *durable*
    against a server speaking with ``checkpoint_dir``: every batch is
    sequenced and retained until the server's ACK says a checkpoint
    covers it, and a dropped connection is retried with exponential
    backoff -- reconnect, RESUME, replay everything past the server's
    durable sequence.  Replayed duplicates are skipped server-side and
    RACES frames are keyed by sequence, so a resumed stream yields
    exactly the race reports of an uninterrupted one.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 30.0,
        max_frame: int = wire.DEFAULT_MAX_FRAME,
        interner: Optional[LocationInterner] = None,
        ship_locations: bool = False,
        session: Optional[str] = None,
        max_retries: int = 4,
        retry_backoff: float = 0.05,
        backend: Optional[str] = None,
        compress: bool = False,
    ) -> None:
        if session is not None and not wire.valid_session_token(session):
            raise ServeError(f"invalid session token: {session!r}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame = max_frame
        self.interner = interner
        self.ship_locations = ship_locations
        self.session = session
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.backend = backend
        self.compress = compress
        self.negotiated_backend: Optional[str] = None
        #: engine workers behind the server (v5 HELLO reply; 1 when a
        #: pre-v5 server didn't say, or when there's truly one engine)
        self.negotiated_workers = 1
        self.credit = 0
        self.events_sent = 0
        self.batches_sent = 0
        self.durable_seq = 0  #: highest seq the server has checkpointed
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._shipped_locations = 0
        self._finished: Optional[Tuple[int, int]] = None
        self._next_seq = 1
        #: seq -> (frame type, encoded payload), retained for replay
        self._unacked: Dict[int, Tuple[int, bytes]] = {}
        self._races_by_seq: Dict[int, List[RaceReport]] = {}
        self._races_unseq: List[RaceReport] = []

    @property
    def races(self) -> List[RaceReport]:
        """Race reports streamed back so far, in stream order.

        Sequenced RACES frames are keyed by batch seq and *replace* on
        replay, so a resumed session never double-counts a report."""
        out = list(self._races_unseq)
        for seq in sorted(self._races_by_seq):
            out.extend(self._races_by_seq[seq])
        return out

    # -- connection ----------------------------------------------------------

    def connect(self) -> "RaceClient":
        """Dial the server and complete the HELLO exchange (plus the
        RESUME handshake when the session is durable)."""
        if self._sock is not None:
            raise ServeError("client already connected")
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        except OSError as exc:
            raise ConnectError(
                f"cannot connect to {self.host}:{self.port}: {exc}"
            ) from exc
        self._sock = sock
        self._send_frame(
            wire.FRAME_HELLO,
            wire.encode_hello(
                self.max_frame, backend=self.backend,
                features=wire.FLAG_CBATCH if self.compress else 0,
            ),
        )
        ftype, payload = self._recv_frame()
        if ftype == wire.FRAME_ERROR:
            code, message = wire.decode_error(payload)
            self.close()
            raise RemoteError(code, message)
        if ftype != wire.FRAME_HELLO:
            self.close()
            raise ProtocolError(
                f"expected HELLO reply, got {wire.FRAME_NAMES[ftype]}"
            )
        version, credit, max_frame, granted, features, workers = (
            wire.decode_hello_reply(payload)
        )
        if self.backend is not None and granted != self.backend:
            # A v2 server replies without a backend field; either way a
            # requested backend is a requirement, not a preference.
            self.close()
            raise ServeError(
                f"requested the {self.backend!r} backend but the "
                f"server (protocol v{version}) granted {granted!r}"
            )
        if self.compress and not features & wire.FLAG_CBATCH:
            # Same contract as a backend request: compression was
            # asked for, so a reply without the grant fails loudly.
            self.close()
            raise ServeError(
                f"requested compressed (CBATCH) ingestion but the "
                f"server (protocol v{version}) did not grant it"
            )
        self.negotiated_backend = granted
        self.negotiated_workers = workers
        self.credit = credit
        self.max_frame = max_frame
        if self.session is not None:
            self._resume_handshake()
        return self

    def _resume_handshake(self) -> None:
        """Send RESUME and fold the server's durable sequence in."""
        assert self.session is not None
        self._send_frame(wire.FRAME_RESUME, wire.encode_resume(self.session))
        while True:
            ftype, payload = self._pump()
            if ftype == wire.FRAME_RESUME:
                durable = wire.decode_resume_reply(payload)
                break
            if ftype not in (wire.FRAME_CREDIT, wire.FRAME_ACK):
                raise ProtocolError(
                    f"expected RESUME reply, got {wire.FRAME_NAMES[ftype]}"
                )
        # The server follows the reply with one snapshot RACES frame
        # (keyed at the durable seq) covering everything the restored
        # engine already found; drop our per-seq entries at or below it
        # so the snapshot replaces rather than double-counts them.
        for seq in [s for s in self._races_by_seq if s <= durable]:
            del self._races_by_seq[seq]
        self._trim_acked(durable)
        # A brand-new client resuming an existing token continues the
        # sequence where the checkpoint left it; everything at or below
        # ``durable_seq`` is already applied server-side.
        if self._next_seq <= durable:
            self._next_seq = durable + 1

    def _trim_acked(self, durable: int) -> None:
        if durable > self.durable_seq:
            self.durable_seq = durable
        for seq in [s for s in self._unacked if s <= self.durable_seq]:
            del self._unacked[seq]

    def _redial(self) -> None:
        """Reconnect a durable session and replay past the server's
        durable point (everything not yet covered by a checkpoint)."""
        self.connect()
        self.reconnects += 1
        for seq in sorted(self._unacked):
            ftype, payload = self._unacked[seq]
            while self.credit <= 0:
                self._pump()
            self.credit -= 1
            self._send_frame(ftype, payload)

    def _with_retry(self, fn: Callable[[], None]) -> None:
        """Run ``fn``, transparently reconnect-and-replaying a durable
        session when the transport drops (bounded exponential backoff).
        Typed server refusals (:class:`RemoteError`) never retry."""
        attempts = 0
        while True:
            try:
                if self._sock is None and self.session is not None:
                    self._redial()
                fn()
                return
            except (TransportError, ConnectError):
                self.close()
                if self.session is None:
                    raise
                attempts += 1
                if attempts > self.max_retries:
                    raise
                time.sleep(self.retry_backoff * (2 ** (attempts - 1)))

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "RaceClient":
        return self.connect()

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    # -- wire ----------------------------------------------------------------

    def _require_sock(self) -> socket.socket:
        if self._sock is None:
            raise ServeError("client is not connected")
        return self._sock

    def _send_frame(self, ftype: int, payload: bytes = b"") -> None:
        try:
            self._require_sock().sendall(wire.encode_frame(ftype, payload))
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from exc

    def _recv_exactly(self, n: int) -> bytes:
        sock = self._require_sock()
        chunks = []
        got = 0
        while got < n:
            try:
                chunk = sock.recv(n - got)
            except socket.timeout as exc:
                raise TransportError(
                    f"no frame from server within {self.timeout}s"
                ) from exc
            except OSError as exc:
                raise TransportError(f"receive failed: {exc}") from exc
            if not chunk:
                raise TransportError(
                    "server closed the connection mid-frame"
                )
            chunks.append(chunk)
            got += len(chunk)
        return b"".join(chunks)

    def _recv_frame(self) -> Tuple[int, bytes]:
        head = self._recv_exactly(wire.FRAME_HEADER_SIZE)
        length, ftype, crc = wire.parse_frame_header(head)
        wire.check_frame_length(length, self.max_frame)
        payload = self._recv_exactly(length) if length else b""
        wire.check_payload_crc(payload, crc)
        return ftype, payload

    def _pump(self) -> Tuple[int, bytes]:
        """Read one frame, folding CREDIT/RACES into client state;
        returns the frame for the caller to inspect too."""
        ftype, payload = self._recv_frame()
        if ftype == wire.FRAME_CREDIT:
            self.credit += wire.decode_credit(payload)
        elif ftype == wire.FRAME_RACES:
            seq, reports = wire.decode_races(payload)
            if seq:
                self._races_by_seq[seq] = reports
            else:
                self._races_unseq.extend(reports)
        elif ftype == wire.FRAME_ACK:
            self._trim_acked(wire.decode_ack(payload))
        elif ftype == wire.FRAME_ERROR:
            code, message = wire.decode_error(payload)
            self.close()
            raise RemoteError(code, message)
        return ftype, payload

    # -- streaming -----------------------------------------------------------

    def _table_delta(self) -> Sequence:
        if not self.ship_locations:
            return ()
        if self.interner is None:
            raise ServeError(
                "ship_locations needs the session's interner"
            )
        table = self.interner.locations()
        new_locations = table[self._shipped_locations:]
        self._shipped_locations = len(table)
        return new_locations

    def send_batch(self, batch: EventBatch) -> None:
        """Push one BATCH frame, waiting for credit first if the
        session has none outstanding."""
        if self._finished is not None:
            raise ServeError("session already finished (BYE sent)")
        new_locations = self._table_delta()
        seq = self._next_seq if self.session is not None else 0
        payload = wire.encode_batch_payload(batch, new_locations, seq=seq)
        if len(payload) > self.max_frame:
            raise ProtocolError(
                f"batch of {len(batch)} events encodes to {len(payload)} "
                f"bytes, over the negotiated frame cap of "
                f"{self.max_frame}; slice it smaller"
            )
        self._send_sequenced(wire.FRAME_BATCH, payload, seq)
        self.events_sent += len(batch)
        self.batches_sent += 1

    def send_compressed(self, ctrace) -> None:
        """Push one :class:`~repro.compress.CompressedTrace` as a
        CBATCH frame (requires ``compress=True`` at connect).

        Credit, sequencing, and replay-on-reconnect follow
        :meth:`send_batch` exactly -- CBATCH frames live in the same
        sequence space, so a durable session may mix the two.
        """
        if self._finished is not None:
            raise ServeError("session already finished (BYE sent)")
        if not self.compress:
            raise ServeError(
                "send_compressed needs a session connected with "
                "compress=True"
            )
        new_locations = self._table_delta()
        seq = self._next_seq if self.session is not None else 0
        payload = wire.encode_cbatch_payload(ctrace, new_locations, seq=seq)
        if len(payload) > self.max_frame:
            raise ProtocolError(
                f"compressed trace of {len(ctrace)} events encodes to "
                f"{len(payload)} bytes, over the negotiated frame cap "
                f"of {self.max_frame}; compress smaller slices"
            )
        self._send_sequenced(wire.FRAME_CBATCH, payload, seq)
        self.events_sent += len(ctrace)
        self.batches_sent += 1

    def _send_sequenced(self, ftype: int, payload: bytes, seq: int) -> None:
        if seq:
            # Retained verbatim until an ACK covers it: a replay after
            # reconnect must resend the *same bytes* (same seq, same
            # location-table delta) for server-side dedup to hold.
            self._next_seq += 1
            self._unacked[seq] = (ftype, payload)
        self._with_retry(lambda: self._send_payload(ftype, payload))

    def _send_payload(self, ftype: int, payload: bytes) -> None:
        while self.credit <= 0:
            self._pump()
        self.credit -= 1
        self._send_frame(ftype, payload)

    def send_batches(
        self, batch: EventBatch, batch_size: int = 8192
    ) -> None:
        """Slice ``batch`` and push every piece."""
        for piece in batch.slices(batch_size):
            self.send_batch(piece)

    def send_batches_compressed(
        self,
        batch: EventBatch,
        batch_size: int = 65536,
        block_width: Optional[int] = None,
    ) -> None:
        """Slice ``batch``, compress each piece, and push it as a
        CBATCH frame.  The default slice is wider than
        :meth:`send_batches`'s because compression shrinks the wire
        frame well below the slice's raw size."""
        from repro.compress import DEFAULT_BLOCK_WIDTH, compress

        width = block_width if block_width else DEFAULT_BLOCK_WIDTH
        for piece in batch.slices(batch_size):
            self.send_compressed(compress(piece, width))

    def finish(self) -> ClientSummary:
        """Send BYE, drain the stream, and return the session summary.

        The server's summary is cross-checked against the client's own
        event counter -- a disagreement means frames were lost or
        double-counted and raises :class:`ProtocolError`.
        """
        if self._finished is None:
            self._with_retry(self._finish_once)
        events, races = self._finished
        if self.session is None and events != self.events_sent:
            # A resumed session legitimately diverges: the server's
            # total includes checkpointed events from a prior
            # connection, while replayed duplicates are skipped.
            raise ProtocolError(
                f"server ingested {events} events, client sent "
                f"{self.events_sent}"
            )
        return ClientSummary(events, races, list(self.races))

    def _finish_once(self) -> None:
        self._send_frame(wire.FRAME_BYE)
        while True:
            ftype, payload = self._pump()
            if ftype == wire.FRAME_BYE:
                self._finished = wire.decode_bye_summary(payload)
                return
            if ftype not in (
                wire.FRAME_CREDIT, wire.FRAME_RACES, wire.FRAME_ACK
            ):
                raise ProtocolError(
                    f"unexpected {wire.FRAME_NAMES[ftype]} frame "
                    f"while draining"
                )


# -- replay helpers -----------------------------------------------------------


def submit_batch(
    host: str,
    port: int,
    batch: EventBatch,
    *,
    interner: Optional[LocationInterner] = None,
    batch_size: int = 8192,
    ship_locations: bool = False,
    timeout: float = 30.0,
    backend: Optional[str] = None,
    compress: bool = False,
) -> ClientSummary:
    """Replay one in-memory batch over a fresh session.

    ``compress=True`` negotiates the v4 CBATCH feature and ships each
    slice grammar-compressed; the server ingests it via its memoized
    kernel without expanding."""
    with RaceClient(
        host, port, timeout=timeout, interner=interner,
        ship_locations=ship_locations, backend=backend,
        compress=compress,
    ) as client:
        if compress:
            client.send_batches_compressed(batch, max(batch_size, 65536))
        else:
            client.send_batches(batch, batch_size)
        return client.finish()


def submit_trace(
    host: str,
    port: int,
    path: str,
    *,
    batch_size: int = 8192,
    ship_locations: bool = False,
    timeout: float = 30.0,
    compress: bool = False,
) -> ClientSummary:
    """Replay a trace file (compact ``.rpr2trc``, compressed
    ``.rpr2trz``, or JSONL) over a fresh session.

    With ``compress=True`` a compressed container is shipped in its
    stored form -- one CBATCH per container, never expanded on either
    side -- and raw inputs are compressed slice by slice."""
    from repro.engine.batch import batch_from_events
    from repro.engine.tracefile import (
        is_compressed_tracefile,
        is_tracefile,
        read_trace,
    )

    if compress and is_compressed_tracefile(path):
        from repro.compress import read_tracez

        ctrace, interner = read_tracez(path)
        with RaceClient(
            host, port, timeout=timeout, interner=interner,
            ship_locations=ship_locations, compress=True,
        ) as client:
            client.send_compressed(ctrace)
            return client.finish()
    if is_tracefile(path):
        batch, interner = read_trace(path)
    else:
        from repro.trace import load_events

        batch, interner = batch_from_events(load_events(path))
    return submit_batch(
        host, port, batch, interner=interner, batch_size=batch_size,
        ship_locations=ship_locations, timeout=timeout, compress=compress,
    )


def submit_program(
    host: str,
    port: int,
    body: Callable,
    *,
    batch_size: int = 8192,
    ship_locations: bool = False,
    timeout: float = 30.0,
) -> ClientSummary:
    """Run a program body locally into a columnar batch, then replay
    it over a fresh session."""
    from repro.engine.batch import BatchBuilder
    from repro.forkjoin.interpreter import run

    builder = BatchBuilder()
    run(body, observers=[builder])
    return submit_batch(
        host, port, builder.batch, interner=builder.interner,
        batch_size=batch_size, ship_locations=ship_locations,
        timeout=timeout,
    )


# -- load generator -----------------------------------------------------------


@dataclass
class LoadResult:
    """Aggregate outcome of one :func:`run_load` drive."""

    sessions: int
    events: int  #: total events ingested across all sessions
    races: int  #: total race reports streamed back
    seconds: float  #: wall time from the start barrier to the last BYE
    summaries: List[ClientSummary]

    @property
    def events_per_sec(self) -> float:
        return self.events / self.seconds if self.seconds > 0 else 0.0


def run_load(
    host: str,
    port: int,
    batch: EventBatch,
    *,
    sessions: int = 4,
    batch_size: int = 8192,
    timeout: float = 60.0,
    backend: Optional[str] = None,
    compress: bool = False,
) -> LoadResult:
    """Drive ``sessions`` concurrent connections, each replaying
    ``batch``, and measure aggregate wall-clock throughput.

    All sessions connect and handshake first, then start streaming
    together off a barrier so the measured window is pure streaming.
    The first session failure is re-raised after every thread joins.
    ``backend`` is requested per session via the v3 HELLO and
    ``compress`` the v4 CBATCH feature (see :class:`RaceClient`).
    """
    if sessions < 1:
        raise ServeError(f"need at least one session, got {sessions}")
    clients = [
        RaceClient(
            host, port, timeout=timeout, backend=backend,
            compress=compress,
        ).connect()
        for _ in range(sessions)
    ]
    barrier = threading.Barrier(sessions + 1)
    summaries: List[Optional[ClientSummary]] = [None] * sessions
    errors: List[BaseException] = []

    def drive(k: int, client: RaceClient) -> None:
        try:
            barrier.wait()
            if compress:
                client.send_batches_compressed(batch)
            else:
                client.send_batches(batch, batch_size)
            summaries[k] = client.finish()
        except BaseException as exc:
            errors.append(exc)
            barrier.abort()
        finally:
            client.close()

    threads = [
        threading.Thread(
            target=drive, args=(k, client),
            name=f"repro-load-{k}", daemon=True,
        )
        for k, client in enumerate(clients)
    ]
    for thread in threads:
        thread.start()
    try:
        barrier.wait()
    except threading.BrokenBarrierError:
        pass
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    done = [s for s in summaries if s is not None]
    return LoadResult(
        sessions=sessions,
        events=sum(s.events for s in done),
        races=sum(s.races for s in done),
        seconds=elapsed,
        summaries=done,
    )
