"""The streaming trace-ingest server: many sessions, one detector each.

:class:`RaceServer` is an asyncio TCP server speaking the RPRSERVE
protocol (:mod:`repro.serve.protocol`).  Each accepted connection is a
*session*:

* the client leads with HELLO; the server negotiates the protocol
  version, the frame-size cap, and (v3) the session's **engine
  backend** -- a v3 HELLO may request ``lattice2d`` or ``depa`` and
  gets the negotiated name echoed in the reply, while a v2 HELLO gets
  a byte-identical v2 exchange and the server-default backend; the
  reply carries the session's initial **credit** -- the number of
  BATCH frames the client may have outstanding;
* BATCH frames are decoded (header-vs-payload bound check *before*
  allocation, CRC already verified at the framing layer), column-
  validated, and queued for the session's ingest worker; a v4 session
  that negotiated the CBATCH feature bit may send grammar-compressed
  CBATCH frames instead, which are validated per *unique block* and
  ingested by the memoized kernel
  (:meth:`~repro.engine.ingest.BatchEngine.ingest_compressed`) without
  ever being expanded;
* the worker feeds each batch to the session's engine -- an isolated
  :class:`~repro.engine.ingest.BatchEngine` per session by default, or
  one *shared* :class:`~repro.engine.parallel.ParallelShardedEngine`
  when the server runs with ``jobs > 1`` -- and streams any newly
  detected races back as RACES frames;
* after each processed batch the server returns credit, **unless** the
  session's queue sits at or above its high-water mark: the grant is
  withheld (a *credit stall*) until the queue drains, so a client can
  never grow the server's memory past
  ``credit_window x max_frame`` per session no matter how fast it
  pushes;
* a session that breaks the protocol, overruns its credit, trips the
  engine's stream validation, or goes idle past the timeout gets one
  ERROR frame and is torn down; teardown always *closes the session's
  engine* so a client that vanishes mid-stream leaks no shadow state;
* BYE drains the queue, answers with a ``(events, races)`` summary,
  and ends the session cleanly.

``SIGTERM``/``SIGINT`` (see :meth:`RaceServer.install_signal_handlers`)
triggers a graceful drain: the listener closes, live sessions get a
bounded window to finish their queues, then everything is torn down.

:class:`ServerThread` runs a :class:`RaceServer` on a private event
loop in a daemon thread -- the harness the tests, the benchmark, and
the docs examples use for loopback serving from synchronous code.

Everything is observable through :mod:`repro.obs`: session/frame/byte
counters, queue-depth and credit gauges, per-batch service-time and
batch-size histograms, all labelled ``component="serve"``.  The CLI's
``serve --metrics-port`` exposes the same registry over HTTP via
:func:`start_metrics_http` (stdlib ``http.server``, no new
dependencies).
"""

from __future__ import annotations

import asyncio
import os
import signal
import threading
import time
from collections import Counter as _Counter
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from itertools import count
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.batch import EventBatch
from repro.engine.ingest import BACKENDS, BatchEngine
from repro.engine.snapshot import load_checkpoint, save_checkpoint
from repro.errors import (
    CheckpointError,
    DetectorError,
    ProtocolError,
    ServeError,
)
from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry, get_registry
from repro.serve import protocol as wire

__all__ = [
    "ServeConfig",
    "RaceServer",
    "ServerThread",
    "start_metrics_http",
]


@dataclass
class ServeConfig:
    """Tunables for one :class:`RaceServer`.

    ``credit_window`` bounds the BATCH frames a session may have
    outstanding (and therefore the server's queue growth);
    ``queue_high_water`` is the depth at which credit grants are
    withheld until the ingest worker catches up.  ``jobs > 1``
    replaces the per-session engines with one shared multi-process
    :class:`~repro.engine.parallel.ParallelShardedEngine` (see
    ``docs/SERVING.md`` for when that trade is right).

    ``checkpoint_dir`` turns on session durability: a session that
    opens with a RESUME token gets a periodic background checkpoint
    (every ``checkpoint_interval`` applied batches, plus one at
    teardown), each acknowledged to the client with an ACK frame so it
    can trim its replay buffer.  Durable sessions are per-session
    engines only -- combining ``checkpoint_dir`` with ``jobs > 1`` is
    rejected at construction.

    ``predict`` switches every session engine into sound
    race-*prediction* mode (``BatchEngine(predict=True)``): clients
    receive one RACES report per feasibly-reorderable racing pair
    instead of one per observed-order flagged access (see
    ``docs/PREDICTION.md``).  Prediction is per-session only, and the
    checkpoint format captures the union-find engine's state, so
    ``predict`` is rejected in combination with ``jobs > 1`` or
    ``checkpoint_dir``.

    ``backend`` names the engine backend sessions get by default (one
    of :data:`~repro.engine.ingest.BACKENDS`); a v3 client may request
    a different one per session in its HELLO.  The ``depa`` backend is
    not checkpointable and has no prediction mode, so a non-default
    ``backend`` is rejected in combination with ``checkpoint_dir`` or
    ``predict`` (and a per-session *request* for it on such a server
    is refused with a typed ``ERR_BACKEND`` frame).
    """

    host: str = "127.0.0.1"
    port: int = 0  #: 0 = pick a free port (read it from ``server.port``)
    credit_window: int = 8
    queue_high_water: int = 6
    max_frame: int = wire.DEFAULT_MAX_FRAME
    idle_timeout: float = 30.0
    hello_timeout: float = 10.0
    drain_timeout: float = 10.0
    jobs: int = 1
    checkpoint_dir: Optional[str] = None
    checkpoint_interval: int = 32  #: applied batches between checkpoints
    predict: bool = False  #: serve shb prediction instead of observed races
    backend: str = "lattice2d"  #: default engine backend for sessions


class _Metrics:
    """The serve-layer instrument bundle (one lookup at server start)."""

    def __init__(self, registry: MetricsRegistry) -> None:
        labels = {"component": "serve"}
        self.sessions_total = registry.counter(
            "serve_sessions_total", "client sessions accepted", labels=labels
        )
        self.sessions_active = registry.gauge(
            "serve_sessions_active", "sessions currently open", labels=labels
        )
        self.frames_in = {
            name: registry.counter(
                "serve_frames_total",
                "frames by direction and type",
                labels={**labels, "dir": "in", "type": name},
            )
            for name in wire.FRAME_NAMES.values()
        }
        self.frames_out = {
            name: registry.counter(
                "serve_frames_total",
                "frames by direction and type",
                labels={**labels, "dir": "out", "type": name},
            )
            for name in wire.FRAME_NAMES.values()
        }
        self.bytes_in = registry.counter(
            "serve_bytes_total", "payload bytes by direction",
            labels={**labels, "dir": "in"},
        )
        self.bytes_out = registry.counter(
            "serve_bytes_total", "payload bytes by direction",
            labels={**labels, "dir": "out"},
        )
        self.batches = registry.counter(
            "serve_batches_total", "BATCH frames ingested", labels=labels
        )
        self.cbatches = registry.counter(
            "serve_cbatches_total",
            "compressed CBATCH frames ingested", labels=labels,
        )
        self.compressed_bytes = registry.counter(
            "serve_compressed_bytes_total",
            "CBATCH payload bytes received (compressed wire bytes)",
            labels=labels,
        )
        self.events = registry.counter(
            "serve_events_total", "events ingested over the wire",
            labels=labels,
        )
        self.races_streamed = registry.counter(
            "serve_races_streamed_total",
            "race reports streamed back to clients", labels=labels,
        )
        self.credit_stalls = registry.counter(
            "serve_credit_stalls_total",
            "credit grants withheld because a session queue sat at its "
            "high-water mark",
            labels=labels,
        )
        self.errors = {
            name: registry.counter(
                "serve_errors_total",
                "ERROR frames sent, by code",
                labels={**labels, "code": name},
            )
            for name in wire.ERROR_NAMES.values()
        }
        self.queue_depth = registry.gauge(
            "serve_queue_depth",
            "batches queued across all sessions", labels=labels,
        )
        self.queue_depth_max = registry.gauge(
            "serve_queue_depth_max",
            "high-water mark of the aggregate ingest queue", labels=labels,
        )
        self.credit_outstanding = registry.gauge(
            "serve_credit_outstanding",
            "unspent credit across all sessions", labels=labels,
        )
        self.service_time = registry.histogram(
            "serve_batch_service_seconds",
            "wall seconds to ingest one BATCH frame", labels=labels,
        )
        self.batch_events = registry.histogram(
            "serve_batch_events",
            "events per BATCH frame", labels=labels,
            buckets=(64, 512, 4096, 16384, 65536, 262144),
        )
        self.checkpoints = registry.counter(
            "serve_checkpoints_total",
            "session checkpoints written", labels=labels,
        )
        self.restores = registry.counter(
            "serve_restores_total",
            "sessions restored from a checkpoint", labels=labels,
        )
        self.checkpoint_seconds = registry.histogram(
            "serve_checkpoint_seconds",
            "wall seconds to write one session checkpoint", labels=labels,
            buckets=(0.001, 0.005, 0.02, 0.1, 0.5, 2.0),
        )
        self.duplicates_skipped = registry.counter(
            "serve_duplicate_batches_total",
            "already-applied BATCH frames skipped idempotently on resume",
            labels=labels,
        )
        self.sessions_backend = {
            name: registry.counter(
                "serve_sessions_backend_total",
                "sessions by negotiated engine backend",
                labels={**labels, "backend": name},
            )
            for name in BACKENDS
        }

    def observe_depth(self, depth: int) -> None:
        self.queue_depth.set(depth)
        if depth > self.queue_depth_max.value:
            self.queue_depth_max.set(depth)


class _SessionEngine:
    """One session's detection state: an isolated :class:`BatchEngine`.

    ``close()`` drops the engine (detector, shadow map, union-find)
    so a torn-down session cannot leak shadow state; every method
    raises after that.
    """

    shared = False

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        predict: bool = False,
        backend: str = "lattice2d",
    ) -> None:
        # BatchEngine treats backend and predict as mutually exclusive;
        # the handshake already refused predict+non-default-backend
        # sessions, so exactly one of the two reaches the engine here.
        if backend != "lattice2d":
            engine = BatchEngine(registry=registry, backend=backend)
        else:
            engine = BatchEngine(registry=registry, predict=predict)
        self._engine: Optional[BatchEngine] = engine
        self._races_seen = 0

    @property
    def closed(self) -> bool:
        return self._engine is None

    def _require_open(self) -> BatchEngine:
        if self._engine is None:
            raise ServeError("session engine is closed")
        return self._engine

    def ingest(self, batch: EventBatch) -> List:
        """Feed one batch; returns the races it newly detected."""
        engine = self._require_open()
        engine.ingest(batch)
        races = engine.detector.races
        new = list(races[self._races_seen:])
        self._races_seen = len(races)
        return new

    def ingest_compressed(self, ctrace) -> List:
        """Feed one compressed trace via the memoized kernel (never
        expanding it); returns the races it newly detected."""
        engine = self._require_open()
        engine.ingest_compressed(ctrace)
        races = engine.detector.races
        new = list(races[self._races_seen:])
        self._races_seen = len(races)
        return new

    @property
    def events_ingested(self) -> int:
        return self._require_open().events_ingested

    @property
    def races_reported(self) -> int:
        return self._races_seen

    def save(self, path: str, meta: Dict[str, Any]) -> int:
        """Checkpoint the engine durably to ``path`` (see
        :mod:`repro.engine.snapshot`)."""
        return save_checkpoint(self._require_open(), path, meta=meta)

    def checkpointed_races(self) -> List:
        """Every race the restored engine already holds -- streamed as
        one snapshot RACES frame so a *fresh* client resuming this
        token still sees the reports its replayed (and skipped)
        batches would have produced."""
        return list(self._require_open().detector.races)

    @classmethod
    def restore(
        cls, path: str, registry: MetricsRegistry
    ) -> Tuple["_SessionEngine", Dict[str, Any]]:
        """Rebuild a session engine from a checkpoint file.

        Races already detected at save time count as *seen*: the
        client received them (keyed by seq) before the crash, and the
        replayed batches re-derive nothing older than the checkpoint.
        """
        engine, meta = load_checkpoint(path, registry=registry)
        self = cls.__new__(cls)
        self._engine = engine
        self._races_seen = len(engine.detector.races)
        return self, meta

    def close(self) -> None:
        self._engine = None


class _SharedParallelEngine:
    """The ``--jobs`` mode: every session feeds one multi-process
    engine (single-tenant aggregate detection; races detected for any
    session's batch are streamed to the session that sent it).

    Ingestion is serialised under a thread lock -- the underlying
    engine is not concurrency-safe -- and new races are recovered as a
    multiset difference because the shard-ordered merge interleaves
    fresh reports with old ones.
    """

    shared = True

    def __init__(
        self,
        jobs: int,
        registry: MetricsRegistry,
        backend: str = "lattice2d",
    ) -> None:
        from repro.engine.parallel import ParallelShardedEngine

        self._engine = ParallelShardedEngine(
            jobs, registry=registry, backend=backend
        )
        self._lock = threading.Lock()
        self._seen: _Counter = _Counter()
        self._events = 0
        self._races = 0
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def session_view(self) -> "_SharedEngineView":
        return _SharedEngineView(self)

    def ingest(self, batch: EventBatch) -> List:
        with self._lock:
            if self._closed:
                raise ServeError("shared engine is closed")
            self._engine.ingest(batch)
            # peek_races() keeps the run open (no collect); the delta is
            # a multiset difference because the shard-ordered merge
            # interleaves fresh reports with earlier ones.
            now = _Counter(self._engine.peek_races())
            fresh = now - self._seen
            self._seen = now
            self._events += len(batch)
            new = list(fresh.elements())
            self._races += len(new)
            return new

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._engine.close()


class _SharedEngineView:
    """Per-session facade over the shared engine: tracks this session's
    own event/race totals for its BYE summary, while ``close()`` only
    detaches (the pool outlives sessions)."""

    shared = True

    def __init__(self, owner: _SharedParallelEngine) -> None:
        self._owner: Optional[_SharedParallelEngine] = owner
        self.events_ingested = 0
        self.races_reported = 0

    @property
    def closed(self) -> bool:
        return self._owner is None

    def ingest(self, batch: EventBatch) -> List:
        if self._owner is None:
            raise ServeError("session engine is closed")
        new = self._owner.ingest(batch)
        self.events_ingested += len(batch)
        self.races_reported += len(new)
        return new

    def close(self) -> None:
        self._owner = None


class _Session:
    """Book-keeping for one live connection."""

    __slots__ = (
        "sid", "writer", "engine", "queue", "queued", "credits",
        "withheld", "write_lock", "failed", "draining", "max_frame",
        "token", "enqueued_seq", "applied_seq", "durable_seq",
        "last_table", "busy", "backend", "cbatch",
    )

    def __init__(
        self, sid: int, writer: asyncio.StreamWriter, max_frame: int
    ) -> None:
        self.sid = sid
        self.writer = writer
        self.engine: Any = None
        self.queue: asyncio.Queue = asyncio.Queue()
        self.queued = 0  # batches only; the BYE sentinel is not depth
        self.credits = 0
        self.withheld = 0
        self.write_lock = asyncio.Lock()
        self.failed: Optional[BaseException] = None
        self.draining = False
        self.max_frame = max_frame
        self.token: Optional[str] = None  # durable session id (RESUME)
        self.enqueued_seq = 0  # highest seq accepted off the wire
        self.applied_seq = 0  # highest seq the worker has ingested
        self.durable_seq = 0  # highest seq covered by a checkpoint
        self.last_table: Optional[int] = None  # table size at applied_seq
        self.busy = False  # an ingest is running in the executor
        self.backend = "lattice2d"  # negotiated engine backend (v3)
        self.cbatch = False  # CBATCH feature granted (v4)


_BYE = object()  # queue sentinel: client finished its stream


async def _read_frame(
    reader: asyncio.StreamReader, max_frame: int
) -> Tuple[int, bytes]:
    """Read one frame; returns ``(type, payload)``.

    Length is checked against ``max_frame`` before the payload read,
    the CRC after it.  EOF raises ``IncompleteReadError``.
    """
    head = await reader.readexactly(wire.FRAME_HEADER_SIZE)
    length, ftype, crc = wire.parse_frame_header(head)
    wire.check_frame_length(length, max_frame)
    payload = await reader.readexactly(length) if length else b""
    wire.check_payload_crc(payload, crc)
    return ftype, payload


class RaceServer:
    """Accepts RPRSERVE sessions and detects races online (see the
    module docstring for the session lifecycle)."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        if self.config.credit_window < 1:
            raise ServeError(
                f"credit window must be positive, got "
                f"{self.config.credit_window}"
            )
        if self.config.jobs < 1:
            raise ServeError(
                f"need at least one job, got {self.config.jobs}"
            )
        if self.config.checkpoint_interval < 1:
            raise ServeError(
                f"checkpoint interval must be positive, got "
                f"{self.config.checkpoint_interval}"
            )
        if self.config.checkpoint_dir is not None and self.config.jobs > 1:
            raise ServeError(
                "checkpointing requires per-session engines: "
                "checkpoint_dir cannot be combined with jobs > 1"
            )
        if self.config.predict and self.config.jobs > 1:
            raise ServeError(
                "prediction runs per-session engines: predict cannot "
                "be combined with jobs > 1"
            )
        if self.config.predict and self.config.checkpoint_dir is not None:
            raise ServeError(
                "predict sessions are not checkpointable (the snapshot "
                "format captures the union-find engine): drop "
                "checkpoint_dir or drop predict"
            )
        if self.config.backend not in BACKENDS:
            raise ServeError(
                f"unknown serve backend {self.config.backend!r}; "
                f"expected one of {BACKENDS}"
            )
        if self.config.backend != "lattice2d":
            if self.config.checkpoint_dir is not None:
                raise ServeError(
                    f"the {self.config.backend!r} backend is not "
                    "checkpointable: drop checkpoint_dir or use the "
                    "lattice2d backend"
                )
            if self.config.predict:
                raise ServeError(
                    f"the {self.config.backend!r} backend has no "
                    "prediction mode: drop predict or use the "
                    "lattice2d backend"
                )
        self.registry = registry if registry is not None else get_registry()
        self._m = _Metrics(self.registry)
        self._server: Optional[asyncio.base_events.Server] = None
        self._sessions: Dict[int, _Session] = {}
        self._handlers: set = set()
        self._ids = count(1)
        self._shared_engine: Optional[_SharedParallelEngine] = None
        self._closing = False
        self._closed_event: Optional[asyncio.Event] = None
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> int:
        """Bind and start accepting; returns the bound port."""
        if self._server is not None:
            raise ServeError("server already started")
        if self.config.checkpoint_dir is not None:
            os.makedirs(self.config.checkpoint_dir, exist_ok=True)
        self._closed_event = asyncio.Event()
        if self.config.jobs > 1:
            self._shared_engine = _SharedParallelEngine(
                self.config.jobs, self.registry, self.config.backend
            )
        try:
            self._server = await asyncio.start_server(
                self._handle, self.config.host, self.config.port
            )
        except OSError:
            if self._shared_engine is not None:
                self._shared_engine.close()
                self._shared_engine = None
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (CLI mode)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(
                sig, lambda: asyncio.ensure_future(self.shutdown())
            )

    async def serve_forever(self) -> None:
        """Block until :meth:`shutdown` completes."""
        if self._closed_event is None:
            raise ServeError("server not started")
        await self._closed_event.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, let live sessions finish
        their queues within ``drain_timeout``, then tear down."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for session in list(self._sessions.values()):
            session.draining = True
        if self._handlers:
            done, pending = await asyncio.wait(
                self._handlers, timeout=self.config.drain_timeout
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.wait(pending)
        if self._shared_engine is not None:
            self._shared_engine.close()
            self._shared_engine = None
        if self._closed_event is not None:
            self._closed_event.set()

    # -- wire helpers --------------------------------------------------------

    async def _send(
        self, session: _Session, ftype: int, payload: bytes = b""
    ) -> None:
        # Count before the write syscall: a client thread unblocked by
        # these very bytes may inspect the registry immediately.
        self._m.frames_out[wire.FRAME_NAMES[ftype]].inc()
        self._m.bytes_out.inc(wire.FRAME_HEADER_SIZE + len(payload))
        async with session.write_lock:
            session.writer.write(wire.encode_frame(ftype, payload))
            await session.writer.drain()

    async def _send_error(
        self, session: _Session, code: int, message: str
    ) -> None:
        self._m.errors[wire.ERROR_NAMES[code]].inc()
        try:
            await self._send(
                session, wire.FRAME_ERROR, wire.encode_error(code, message)
            )
        except (ConnectionError, RuntimeError):
            pass  # the peer is already gone; teardown continues

    # -- session lifecycle ---------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        sid = next(self._ids)
        session = _Session(sid, writer, self.config.max_frame)
        self._sessions[sid] = session
        self._m.sessions_total.inc()
        self._m.sessions_active.inc()
        consumer: Optional[asyncio.Task] = None
        try:
            if self._closing:
                await self._send_error(
                    session, wire.ERR_SHUTTING_DOWN, "server is draining"
                )
                return
            if not await self._handshake(session, reader):
                return
            session.engine = self._make_engine(session.backend)
            session.credits = self.config.credit_window
            self._m.credit_outstanding.inc(session.credits)
            consumer = asyncio.ensure_future(self._consume(session))
            await self._read_loop(session, reader, consumer)
        except asyncio.CancelledError:
            raise
        except (
            asyncio.IncompleteReadError, ConnectionError, OSError
        ):
            pass  # client vanished mid-frame; teardown below
        except ProtocolError as exc:
            await self._send_error(session, wire.ERR_PROTOCOL, str(exc))
        finally:
            if consumer is not None:
                consumer.cancel()
                try:
                    await consumer
                except (asyncio.CancelledError, Exception):
                    pass
            # Durable sessions get one last checkpoint so a clean BYE
            # (or a drop with an idle worker) loses nothing.
            await self._final_checkpoint(session)
            # Teardown closes the engine: a vanished client leaves no
            # shadow state behind (the queue and its decoded batches
            # die with the session object).
            if session.engine is not None:
                session.engine.close()
            self._m.credit_outstanding.dec(session.credits)
            session.credits = 0
            del self._sessions[sid]
            self._m.sessions_active.dec()
            self._m.observe_depth(self._total_depth())
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            if task is not None:
                self._handlers.discard(task)

    def _make_engine(self, backend: str):
        if self._shared_engine is not None:
            # The handshake refused any request that disagrees with the
            # shared pool's backend, so the view always matches.
            return self._shared_engine.session_view()
        return _SessionEngine(
            self.registry, predict=self.config.predict, backend=backend
        )

    # -- durability ----------------------------------------------------------

    def _ckpt_path(self, token: str) -> str:
        # valid_session_token() already rejects separators and leading
        # dots, so the join cannot escape the checkpoint directory.
        assert self.config.checkpoint_dir is not None
        return os.path.join(self.config.checkpoint_dir, f"{token}.ckpt")

    def _ckpt_meta(self, session: _Session, seq: int) -> Dict[str, Any]:
        return {
            "seq": seq,
            "token": session.token,
            "ships_table": session.last_table is not None,
            "table_size": session.last_table or 0,
        }

    async def _checkpoint(self, session: _Session) -> bool:
        """Write the session's engine to disk at ``applied_seq`` and ACK
        it so the client can trim its replay buffer.  A failed write
        fails the session -- durability was promised, not best-effort."""
        seq = session.applied_seq
        start = time.perf_counter()
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, session.engine.save,
                self._ckpt_path(session.token), self._ckpt_meta(session, seq),
            )
        except (CheckpointError, ServeError, OSError) as exc:
            session.failed = exc
            await self._send_error(session, wire.ERR_CHECKPOINT, str(exc))
            return False
        session.durable_seq = seq
        self._m.checkpoints.inc()
        self._m.checkpoint_seconds.observe(time.perf_counter() - start)
        await self._send(session, wire.FRAME_ACK, wire.encode_ack(seq))
        return True

    async def _final_checkpoint(self, session: _Session) -> None:
        """Best-effort checkpoint at teardown.  Skipped if an ingest is
        still running in the executor (its thread survives consumer
        cancellation; serializing under it could tear the state) -- the
        stale checkpoint stays valid and the client simply replays
        more."""
        if (
            session.token is None
            or session.failed is not None
            or session.busy
            or session.engine is None
            or session.engine.closed
            or session.applied_seq <= session.durable_seq
        ):
            return
        seq = session.applied_seq
        try:
            await asyncio.get_running_loop().run_in_executor(
                None, session.engine.save,
                self._ckpt_path(session.token), self._ckpt_meta(session, seq),
            )
        except (CheckpointError, ServeError, OSError):
            return  # the connection is ending either way
        session.durable_seq = seq
        self._m.checkpoints.inc()

    async def _handshake(
        self, session: _Session, reader: asyncio.StreamReader
    ) -> bool:
        try:
            ftype, payload = await asyncio.wait_for(
                _read_frame(reader, wire.DEFAULT_MAX_FRAME),
                self.config.hello_timeout,
            )
        except asyncio.TimeoutError:
            await self._send_error(
                session, wire.ERR_IDLE_TIMEOUT, "no HELLO within timeout"
            )
            return False
        self._count_in(ftype, payload)
        if ftype != wire.FRAME_HELLO:
            await self._send_error(
                session, wire.ERR_PROTOCOL,
                f"expected HELLO, got {wire.FRAME_NAMES[ftype]}",
            )
            return False
        version, client_max, requested, features = wire.decode_hello(
            payload
        )
        if not (
            wire.MIN_PROTOCOL_VERSION <= version <= wire.PROTOCOL_VERSION
        ):
            await self._send_error(
                session, wire.ERR_VERSION,
                f"server speaks protocol versions "
                f"{wire.MIN_PROTOCOL_VERSION}..{wire.PROTOCOL_VERSION}, "
                f"client sent {version}",
            )
            return False
        backend = requested if requested is not None else self.config.backend
        if backend not in BACKENDS:
            await self._send_error(
                session, wire.ERR_BACKEND,
                f"unknown engine backend {backend!r}; "
                f"expected one of {BACKENDS}",
            )
            return False
        if self._shared_engine is not None and backend != self.config.backend:
            await self._send_error(
                session, wire.ERR_BACKEND,
                f"this server runs one shared {self.config.backend!r} "
                f"pool (jobs > 1); it cannot give this session a "
                f"{backend!r} engine",
            )
            return False
        if self.config.predict and backend != "lattice2d":
            await self._send_error(
                session, wire.ERR_BACKEND,
                f"this server runs prediction sessions, which the "
                f"{backend!r} backend does not support",
            )
            return False
        if features & wire.FLAG_CBATCH and version >= 4:
            # Compression is negotiated exactly like a backend: a
            # request the server cannot honour is a typed refusal,
            # never a silent downgrade the client discovers mid-stream.
            if self._shared_engine is not None:
                await self._send_error(
                    session, wire.ERR_COMPRESS,
                    "this server runs one shared multi-process pool "
                    "(jobs > 1); compressed ingestion requires "
                    "per-session engines",
                )
                return False
            if self.config.predict:
                await self._send_error(
                    session, wire.ERR_COMPRESS,
                    "prediction sessions ingest raw batches; drop the "
                    "compress request or use an observed-order server",
                )
                return False
            session.cbatch = True
        session.backend = backend
        self._m.sessions_backend[backend].inc()
        max_frame = min(self.config.max_frame, client_max)
        session.max_frame = max_frame
        # The reply mirrors the client's version and wire shape: a v2
        # client sees a byte-identical v2 exchange.
        await self._send(
            session, wire.FRAME_HELLO,
            wire.encode_hello_reply(
                self.config.credit_window, max_frame, version=version,
                backend=backend if version >= 3 else None,
                features=(
                    wire.FLAG_CBATCH
                    if version >= 4 and session.cbatch else 0
                ),
            ),
        )
        return True

    def _count_in(self, ftype: int, payload: bytes) -> None:
        self._m.frames_in[wire.FRAME_NAMES[ftype]].inc()
        self._m.bytes_in.inc(wire.FRAME_HEADER_SIZE + len(payload))

    async def _read_loop(
        self,
        session: _Session,
        reader: asyncio.StreamReader,
        consumer: asyncio.Task,
    ) -> None:
        max_frame = session.max_frame
        table_size = 0
        ships_table = False
        saw_batch = False
        while True:
            try:
                ftype, payload = await asyncio.wait_for(
                    _read_frame(reader, max_frame),
                    self.config.idle_timeout,
                )
            except asyncio.TimeoutError:
                await self._send_error(
                    session, wire.ERR_IDLE_TIMEOUT,
                    f"no frame within {self.config.idle_timeout}s",
                )
                return
            except ProtocolError as exc:
                code = (
                    wire.ERR_FRAME_TOO_LARGE
                    if "exceeds" in str(exc)
                    else wire.ERR_BAD_CRC
                    if "CRC" in str(exc)
                    else wire.ERR_PROTOCOL
                )
                await self._send_error(session, code, str(exc))
                return
            self._count_in(ftype, payload)
            if session.failed is not None:
                # The worker already sent ERROR.  Keep draining what
                # the client's credit let it send -- closing with
                # unread frames in the buffer raises an RST that can
                # destroy the in-flight ERROR before the client reads
                # it.  BYE (or EOF) ends the session.
                if ftype == wire.FRAME_BYE:
                    return
                continue
            if ftype in (wire.FRAME_BATCH, wire.FRAME_CBATCH):
                if ftype == wire.FRAME_CBATCH and not session.cbatch:
                    await self._send_error(
                        session, wire.ERR_COMPRESS,
                        "CBATCH on a session that did not negotiate "
                        "the compression feature",
                    )
                    return
                if session.credits <= 0:
                    await self._send_error(
                        session, wire.ERR_CREDIT_OVERRUN,
                        "BATCH with no credit outstanding",
                    )
                    return
                session.credits -= 1
                self._m.credit_outstanding.dec()
                try:
                    if ftype == wire.FRAME_CBATCH:
                        batch, new_locs, seq = wire.decode_cbatch_payload(
                            payload
                        )
                        self._m.compressed_bytes.inc(len(payload))
                    else:
                        batch, new_locs, seq = wire.decode_batch_payload(
                            payload
                        )
                except ProtocolError as exc:
                    await self._send_error(
                        session, wire.ERR_MALFORMED_BATCH, str(exc)
                    )
                    return
                saw_batch = True
                if seq == 0:
                    if session.token is not None:
                        await self._send_error(
                            session, wire.ERR_PROTOCOL,
                            "durable sessions must sequence their batches",
                        )
                        return
                elif session.token is not None and seq <= session.enqueued_seq:
                    # A replayed batch the crash-surviving engine already
                    # holds: skip it idempotently (its location-table
                    # delta included) and hand the credit straight back.
                    self._m.duplicates_skipped.inc()
                    session.credits += 1
                    self._m.credit_outstanding.inc()
                    await self._send(
                        session, wire.FRAME_CREDIT, wire.encode_credit(1)
                    )
                    continue
                elif seq != session.enqueued_seq + 1:
                    await self._send_error(
                        session, wire.ERR_PROTOCOL,
                        f"batch seq {seq} breaks contiguity (expected "
                        f"{session.enqueued_seq + 1})",
                    )
                    return
                try:
                    if new_locs is not None:
                        ships_table = True
                        table_size += len(new_locs)
                    bound = table_size if ships_table else None
                    if isinstance(batch, EventBatch):
                        wire.validate_batch_columns(batch, bound)
                    else:
                        # Compressed: validating each unique block once
                        # covers every repeat -- the dedup that makes
                        # ingestion cheap makes validation cheap too.
                        for block in batch.blocks:
                            wire.validate_batch_columns(block, bound)
                except ProtocolError as exc:
                    await self._send_error(
                        session, wire.ERR_MALFORMED_BATCH, str(exc)
                    )
                    return
                session.enqueued_seq = max(session.enqueued_seq, seq)
                session.queued += 1
                session.queue.put_nowait(
                    (seq, batch, table_size if ships_table else None)
                )
                self._m.observe_depth(self._total_depth())
            elif ftype == wire.FRAME_RESUME:
                if self.config.checkpoint_dir is None:
                    await self._send_error(
                        session, wire.ERR_CHECKPOINT,
                        "server runs without a checkpoint directory",
                    )
                    return
                if session.backend != "lattice2d":
                    # Restoring would silently swap the negotiated
                    # engine for a lattice2d one; refuse instead.
                    await self._send_error(
                        session, wire.ERR_CHECKPOINT,
                        f"the {session.backend!r} backend is not "
                        "checkpointable; durable sessions require the "
                        "lattice2d backend",
                    )
                    return
                if session.token is not None or saw_batch:
                    # Accepting a late RESUME would swap in the restored
                    # engine and silently drop whatever this connection
                    # already streamed.
                    await self._send_error(
                        session, wire.ERR_PROTOCOL,
                        "RESUME must precede the first BATCH",
                    )
                    return
                try:
                    token = wire.decode_resume(payload)
                except ProtocolError as exc:
                    await self._send_error(
                        session, wire.ERR_PROTOCOL, str(exc)
                    )
                    return
                path = self._ckpt_path(token)
                if os.path.exists(path):
                    try:
                        engine, meta = await asyncio.get_running_loop(
                        ).run_in_executor(
                            None, _SessionEngine.restore, path, self.registry
                        )
                    except CheckpointError as exc:
                        # Never silently load a bad checkpoint: the
                        # client gets a typed refusal and may start a
                        # fresh session under a new token instead.
                        await self._send_error(
                            session, wire.ERR_CHECKPOINT, str(exc)
                        )
                        return
                    old = session.engine
                    session.engine = engine
                    if old is not None:
                        old.close()
                    durable = int(meta.get("seq", 0))
                    session.enqueued_seq = durable
                    session.applied_seq = durable
                    session.durable_seq = durable
                    ships_table = bool(meta.get("ships_table", False))
                    table_size = int(meta.get("table_size", 0) or 0)
                    session.last_table = table_size if ships_table else None
                    self._m.restores.inc()
                session.token = token
                await self._send(
                    session, wire.FRAME_RESUME,
                    wire.encode_resume_reply(session.durable_seq),
                )
                if session.durable_seq:
                    snapshot = session.engine.checkpointed_races()
                    if snapshot:
                        self._m.races_streamed.inc(len(snapshot))
                        await self._send(
                            session, wire.FRAME_RACES,
                            wire.encode_races(
                                snapshot, seq=session.durable_seq
                            ),
                        )
            elif ftype == wire.FRAME_BYE:
                session.queue.put_nowait(_BYE)
                await consumer
                if session.failed is None:
                    await self._send(
                        session, wire.FRAME_BYE,
                        wire.encode_bye_summary(
                            session.engine.events_ingested,
                            session.engine.races_reported,
                        ),
                    )
                return
            else:
                await self._send_error(
                    session, wire.ERR_PROTOCOL,
                    f"unexpected {wire.FRAME_NAMES[ftype]} frame",
                )
                return

    def _total_depth(self) -> int:
        return sum(s.queued for s in self._sessions.values())

    async def _consume(self, session: _Session) -> None:
        """The session's ingest worker: dequeue, detect, stream races,
        return credit (or stall at the high-water mark)."""
        loop = asyncio.get_running_loop()
        m = self._m
        while True:
            item = await session.queue.get()
            if item is _BYE:
                return
            seq, batch, table = item
            session.queued -= 1
            start = time.perf_counter()
            session.busy = True
            compressed = not isinstance(batch, EventBatch)
            try:
                new_races = await loop.run_in_executor(
                    None,
                    session.engine.ingest_compressed
                    if compressed else session.engine.ingest,
                    batch,
                )
            except (DetectorError, ServeError) as exc:
                session.failed = exc
                await self._send_error(
                    session, wire.ERR_DETECTOR, str(exc)
                )
                # No writer.close() here: closing with the client's
                # remaining frames unread raises an RST that can
                # destroy the in-flight ERROR.  The read loop drains
                # what credit allowed and teardown closes cleanly.
                return
            session.busy = False
            if seq:
                session.applied_seq = seq
                session.last_table = table
            m.service_time.observe(time.perf_counter() - start)
            m.batch_events.observe(len(batch))
            (m.cbatches if compressed else m.batches).inc()
            m.events.inc(len(batch))
            m.observe_depth(self._total_depth())
            if new_races:
                m.races_streamed.inc(len(new_races))
                await self._send(
                    session, wire.FRAME_RACES,
                    wire.encode_races(new_races, seq=seq),
                )
            if (
                session.token is not None
                and seq
                and seq - session.durable_seq >= self.config.checkpoint_interval
            ):
                if not await self._checkpoint(session):
                    return
            if session.queued >= self.config.queue_high_water:
                # Above the high-water mark: withhold the grant until
                # the backlog drains (credit-based backpressure).
                session.withheld += 1
                m.credit_stalls.inc()
            elif not session.draining:
                grant = 1 + session.withheld
                session.withheld = 0
                session.credits += grant
                m.credit_outstanding.inc(grant)
                await self._send(
                    session, wire.FRAME_CREDIT, wire.encode_credit(grant)
                )


class ServerThread:
    """A :class:`RaceServer` on a private event loop in a daemon
    thread -- loopback serving for synchronous callers::

        srv = ServerThread()
        port = srv.start()
        ... RaceClient("127.0.0.1", port) ...
        srv.stop()
    """

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.config = config if config is not None else ServeConfig()
        self.registry = registry
        self.server: Optional[RaceServer] = None
        self.port: Optional[int] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to start()/stop()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = RaceServer(self.config, registry=self.registry)
        try:
            self.port = await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve_forever()

    def start(self, timeout: float = 10.0) -> int:
        """Start the thread; returns the bound port."""
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ServeError("server thread did not come up")
        if self._error is not None:
            raise self._error
        assert self.port is not None
        return self.port

    def stop(self, timeout: float = 10.0) -> None:
        """Gracefully drain and join the server thread."""
        if self._loop is not None and self._thread.is_alive():
            assert self.server is not None
            asyncio.run_coroutine_threadsafe(
                self.server.shutdown(), self._loop
            )
        self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


def start_metrics_http(
    port: int,
    registry: Optional[MetricsRegistry] = None,
    host: str = "127.0.0.1",
) -> ThreadingHTTPServer:
    """Expose ``registry`` as Prometheus text on ``/metrics``.

    Stdlib ``http.server`` on a daemon thread (no new dependencies);
    returns the HTTP server (its ``server_port`` is the bound port;
    call ``shutdown()`` to stop it).
    """
    reg = registry if registry is not None else get_registry()

    class _Handler(BaseHTTPRequestHandler):
        def do_GET(self):  # noqa: N802 - http.server API
            if self.path.rstrip("/") not in ("", "/metrics"):
                self.send_error(404)
                return
            body = to_prometheus(reg).encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, *args):  # noqa: D102 - silence per-request logs
            pass

    httpd = ThreadingHTTPServer((host, port), _Handler)
    thread = threading.Thread(
        target=httpd.serve_forever, name="repro-serve-metrics", daemon=True
    )
    thread.start()
    return httpd
