"""repro -- Race Detection in Two Dimensions (SPAA 2015), in Python.

A from-scratch reproduction of Dimitrov, Vechev & Sarkar's online race
detector for programs whose task graphs are two-dimensional lattices:
Theta(1) space per monitored location and per thread, near-constant
amortised time per operation -- strictly more general than the
series-parallel detectors (SP-bags and friends) while keeping their
space bounds.

Quickstart::

    from repro import RaceDetector2D, run, fork, join, read, write

    def child(self):
        yield write("x")

    def main(self):
        c = yield fork(child)
        yield write("x")        # unordered with the child's write
        yield join(c)

    detector = RaceDetector2D()
    run(main, observers=[detector])
    assert detector.races      # the race is flagged online

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` -- suprema algorithms + the detector (the paper);
* :mod:`repro.lattice` -- posets, realizers, diagrams, traversals;
* :mod:`repro.forkjoin` -- the structured language + interpreter, plus
  spawn-sync / async-finish / pipeline sugars;
* :mod:`repro.detectors` -- baselines (vector clocks, FastTrack,
  SP-bags, ESP-bags, naive) and the exact oracle;
* :mod:`repro.workloads`, :mod:`repro.bench` -- benchmark machinery;
* :mod:`repro.viz`, :mod:`repro.cli` -- diagrams and the command line.
"""

from repro.core.detector import RaceDetector2D, detect_races
from repro.core.reports import AccessKind, RaceReport
from repro.core.suprema import SupremaWalker
from repro.core.delayed import DelayedSupremaWalker
from repro.errors import ReproError, StructureError
from repro.forkjoin import (
    Execution,
    TaskHandle,
    build_task_graph,
    fork,
    join,
    join_left,
    read,
    replay_events,
    run,
    step,
    synthesize_events,
    write,
)
from repro.forkjoin.async_finish import x10
from repro.forkjoin.futures import futures
from repro.forkjoin.pipeline import run_pipeline
from repro.forkjoin.spawn_sync import cilk

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "RaceDetector2D",
    "detect_races",
    "AccessKind",
    "RaceReport",
    "SupremaWalker",
    "DelayedSupremaWalker",
    "ReproError",
    "StructureError",
    "Execution",
    "TaskHandle",
    "build_task_graph",
    "fork",
    "join",
    "join_left",
    "read",
    "run",
    "step",
    "write",
    "cilk",
    "x10",
    "futures",
    "run_pipeline",
    "replay_events",
    "synthesize_events",
]
