"""Visualisation helpers: ASCII diagrams and Graphviz export."""

from repro.viz.ascii import render_diagram, render_task_line, render_traversal
from repro.viz.dot import digraph_to_dot, task_graph_to_dot
from repro.viz.timeline import LineTracker, render_timeline

__all__ = [
    "render_diagram",
    "render_task_line",
    "render_traversal",
    "digraph_to_dot",
    "task_graph_to_dot",
    "LineTracker",
    "render_timeline",
]
