"""Graphviz (DOT) export for digraphs and task graphs.

Produces plain DOT text -- render externally with ``dot -Tsvg``.  Task
graphs colour vertices by kind (fork/join/read/write/step/halt) and
group each task's operations into a cluster, which makes the 2D lattice
"threads" of Section 4 visible at a glance.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.forkjoin.taskgraph import TaskGraph
from repro.lattice.digraph import Digraph

__all__ = ["digraph_to_dot", "task_graph_to_dot"]

_KIND_STYLE: Dict[str, str] = {
    "fork": 'shape=triangle, style=filled, fillcolor="#c7dcf0"',
    "join": 'shape=invtriangle, style=filled, fillcolor="#f0d9c7"',
    "read": 'shape=ellipse, style=filled, fillcolor="#d9f0c7"',
    "write": 'shape=ellipse, style=filled, fillcolor="#f0c7c7"',
    "step": "shape=ellipse",
    "halt": 'shape=octagon, style=filled, fillcolor="#dddddd"',
}


def _quote(v: Hashable) -> str:
    return '"' + str(v).replace('"', r"\"") + '"'


def digraph_to_dot(graph: Digraph, name: str = "G") -> str:
    """Plain DOT for a :class:`~repro.lattice.digraph.Digraph`."""
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    for v in graph.vertices():
        lines.append(f"  {_quote(v)};")
    for s, t in graph.arcs():
        lines.append(f"  {_quote(s)} -> {_quote(t)};")
    lines.append("}")
    return "\n".join(lines)


def task_graph_to_dot(tg: TaskGraph, name: str = "TaskGraph") -> str:
    """DOT for a task graph: one cluster per task, kind-coloured ops."""
    lines = [f"digraph {name} {{", "  rankdir=TB;", "  compound=true;"]
    for task, vertices in sorted(tg.threads().items()):
        lines.append(f"  subgraph cluster_task{task} {{")
        lines.append(f'    label="task {task}";')
        lines.append('    color="#999999";')
        for v in vertices:
            op = tg.ops[v]
            style = _KIND_STYLE.get(op.kind, "")
            text = op.label or op.kind
            if op.loc is not None:
                text += f"\\n{op.loc}"
            lines.append(f'    {v} [label="{text}", {style}];')
        lines.append("  }")
    for s, t in tg.graph.arcs():
        lines.append(f"  {s} -> {t};")
    lines.append("}")
    return "\n".join(lines)
