"""ASCII rendering of diagrams, traversals and task lines.

Good enough to eyeball a lattice in a terminal or paste into a bug
report; not a layout engine.  Vertices are placed by their rotated
dominance coordinates (down = later), scaled into a character grid.
"""

from __future__ import annotations

from typing import Hashable, List, Sequence

from repro.events import Arc, Loop, StopArc, TraversalItem
from repro.lattice.dominance import Diagram

__all__ = ["render_diagram", "render_task_line", "render_traversal"]


def render_diagram(diagram: Diagram, width: int = 60) -> str:
    """Draw vertices layer by layer, ordered left-to-right within layers.

    Layers are the distinct screen depths (``y`` of the rotated
    dominance drawing); within a layer, vertices are sorted by screen
    ``x``.  Arcs are listed per vertex below the picture.
    """
    screen = {v: diagram.screen(v) for v in diagram.graph.vertices()}
    ys = sorted({y for (_, y) in screen.values()})
    xs = sorted({x for (x, _) in screen.values()})
    if not xs:
        return "(empty diagram)"
    xmin, xmax = xs[0], xs[-1]
    span = max(1, xmax - xmin)
    lines: List[str] = []
    for y in ys:
        layer = sorted(
            (v for v, (vx, vy) in screen.items() if vy == y),
            key=lambda v: screen[v][0],
        )
        row = [" "] * (width + 8)
        for v in layer:
            x = screen[v][0]
            col = int((x - xmin) / span * width)
            label = str(v)
            for k, ch in enumerate(label):
                if col + k < len(row):
                    row[col + k] = ch
        lines.append("".join(row).rstrip())
    lines.append("")
    for v in diagram.graph.vertices():
        succs = diagram.succs_left_to_right(v)
        if succs:
            lines.append(f"{v} -> {', '.join(map(str, succs))}")
    return "\n".join(lines)


def render_task_line(line: Sequence[int], current: int = -1) -> str:
    """Render a task line ``L . x . R`` with the running task bracketed."""
    parts = [
        f"[{t}]" if t == current else str(t) for t in line
    ]
    return " . ".join(parts) if parts else "(empty line)"


def render_traversal(
    items: Sequence[TraversalItem], per_line: int = 8
) -> str:
    """Wrap a traversal into lines of ``per_line`` items, paper-style."""
    chunks: List[str] = []
    for item in items:
        if isinstance(item, Loop):
            chunks.append(f"({item.vertex},{item.vertex})")
        elif isinstance(item, Arc):
            mark = "!" if item.last else ""
            chunks.append(f"({item.src},{item.dst}){mark}")
        elif isinstance(item, StopArc):
            chunks.append(f"({item.src},\N{MULTIPLICATION SIGN})")
    lines = [
        " ".join(chunks[i : i + per_line])
        for i in range(0, len(chunks), per_line)
    ]
    return "\n".join(lines)
