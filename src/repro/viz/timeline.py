"""Task-line timelines: Figure 10's "lines of task points", recorded live.

The proof of Theorem 6 lays out the evolving task line ``T_1, ..., T_n``
horizontally, one snapshot per transition, and builds the planar diagram
from the stack of snapshots.  :class:`LineTracker` is an interpreter
observer that records exactly those snapshots; :func:`render_timeline`
prints them stacked, which *is* the figure's presentation:

::

    step  event        line (left .. right)
       0  root         0
       1  fork 0->1    1 . [0]
       2  write  by 1  [1] . 0
       ...

Tasks keep a fixed column per appearance so fork insertions and join
removals are visually obvious.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Tuple

from repro.forkjoin.line import TaskLine

__all__ = ["LineTracker", "render_timeline"]


class LineTracker:
    """Observer mirroring the interpreter's task line, snapshot by snapshot.

    Attributes
    ----------
    snapshots:
        One entry per transition: ``(description, line_left_to_right,
        active_task)``.
    """

    name = "linetracker"

    def __init__(self) -> None:
        self.snapshots: List[Tuple[str, List[int], int]] = []
        self._line: Optional[TaskLine] = None

    def _snap(self, desc: str, active: int) -> None:
        assert self._line is not None
        self.snapshots.append((desc, self._line.snapshot(), active))

    def on_root(self, root: int) -> None:
        self._line = TaskLine(root)
        self._snap("root", root)

    def on_fork(self, parent: int, child: int) -> None:
        assert self._line is not None
        self._line.fork(parent, child)
        self._snap(f"fork {parent}->{child}", parent)

    def on_join(self, joiner: int, joined: int) -> None:
        assert self._line is not None
        self._line.join(joiner, joined)
        self._snap(f"join {joiner}<-{joined}", joiner)

    def on_halt(self, task: int) -> None:
        self._snap(f"halt {task}", task)

    def on_step(self, task: int) -> None:
        self._snap(f"step by {task}", task)

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        where = f" ({label})" if label else ""
        self._snap(f"read {loc!r} by {task}{where}", task)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        where = f" ({label})" if label else ""
        self._snap(f"write {loc!r} by {task}{where}", task)

    def on_annotation(self, task: int, tag: str, data: Any = None) -> None:
        self._snap(f"@{tag}", task)


def render_timeline(tracker: LineTracker, max_width: int = 72) -> str:
    """Render the recorded snapshots as Figure 10-style stacked lines.

    The running task is bracketed; each task keeps a stable column so
    the left-insertion of forks and the removal of joins line up
    vertically (the monotone planar diagram emerges down the page).
    """
    if not tracker.snapshots:
        return "(no snapshots)"
    # Assign stable columns: tasks in order of first appearance, but a
    # fork inserts the child at the parent's column, shifting the line's
    # left part visually -- simplest faithful layout: column per task
    # ordered by final discovery order of leftmost positions.
    column: dict = {}
    for _, line, _ in tracker.snapshots:
        for t in line:
            if t not in column:
                column[t] = None
    # Order columns by the task id reversed appearance in any line:
    # leftmost tasks in the *last wide* snapshot give a good static order.
    widest = max((line for _, line, _ in tracker.snapshots), key=len)
    order: List[int] = list(widest)
    for t in column:
        if t not in order:
            # Tasks never co-resident with the widest line: place by id.
            order.append(t)
    col_of = {t: i for i, t in enumerate(order)}
    cell = max(len(str(t)) for t in order) + 2

    lines = []
    desc_width = min(
        max(len(d) for d, _, _ in tracker.snapshots), max_width
    )
    header = "event".ljust(desc_width) + " | line"
    lines.append(header)
    lines.append("-" * len(header))
    for desc, line, active in tracker.snapshots:
        row = [" " * cell] * len(order)
        for t in line:
            text = f"[{t}]" if t == active else str(t)
            row[col_of[t]] = text.center(cell)
        lines.append(
            desc[:desc_width].ljust(desc_width)
            + " | "
            + "".join(row).rstrip()
        )
    return "\n".join(lines)
