"""The paper's detector behind the uniform :class:`Detector` interface.

:class:`~repro.core.detector.RaceDetector2D` is the primary public API;
this wrapper adapts it to the benchmark harness so it can be compared
head-to-head with the baselines.
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.detector import RaceDetector2D
from repro.detectors.base import Detector

__all__ = ["Lattice2DDetector"]


class Lattice2DDetector(Detector):
    """Suprema-based detector for 2D-lattice task graphs (this paper)."""

    name = "lattice2d"

    def __init__(self, **kwargs: Any) -> None:
        super().__init__()
        self.engine = RaceDetector2D(**kwargs)
        self.races = self.engine.races  # shared list; reports land here

    @property
    def shadow(self):
        """The engine's shadow map (location-level space accounting)."""
        return self.engine.shadow

    def on_root(self, root: int) -> None:
        self.engine.on_root(root)

    def on_fork(self, parent: int, child: int) -> None:
        self.engine.on_fork(parent, child)

    def on_join(self, joiner: int, joined: int) -> None:
        self.engine.on_join(joiner, joined)

    def on_halt(self, task: int) -> None:
        self.engine.on_halt(task)

    def on_step(self, task: int) -> None:
        self.engine.on_step(task)

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.engine.on_read(task, loc, label)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.engine.on_write(task, loc, label)

    def shadow_peak_per_location(self) -> int:
        return self.engine.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.engine.shadow.total_entries()

    def metadata_entries(self) -> int:
        return self.engine.thread_count * self.engine.space_per_thread()
