"""The naive detector of Section 2.3 -- explicit access sets + reachability.

For every location it tracks the full sets ``R`` and ``W`` of prior
accessing operations, and on each access checks the current operation
against all of them via task-graph reachability, exactly as the paper's
"naive algorithm" sketch.  Both space (``O(|R ∪ W|)`` per location) and
time (an ancestor-set computation per access) are deliberately bad --
this is the strawman the suprema reduction eliminates, kept as a
fully-precise online baseline for small workloads and as a second
oracle.

The happened-before relation is maintained as an incremental
operation-level DAG (same construction as
:mod:`repro.forkjoin.taskgraph`), and each memory access computes its
ancestor set with one reverse DFS.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.detectors.base import Detector

__all__ = ["NaiveDetector"]


def _cell_entries(cell: Tuple[List[int], List[int]]) -> int:
    return len(cell[0]) + len(cell[1])


class NaiveDetector(Detector):
    """Track-everything baseline: full R/W sets + DFS reachability."""

    name = "naive"

    def __init__(self) -> None:
        super().__init__()
        #: op-level DAG as predecessor lists (vertex = op id)
        self._preds: List[List[int]] = []
        self._last_op: Dict[int, Optional[int]] = {}
        self._fork_op: Dict[int, int] = {}
        self._halt_op: Dict[int, int] = {}
        #: cells are (reads, writes) lists of op ids
        self.shadow: ShadowMap[Tuple[List[int], List[int]]] = ShadowMap(
            _cell_entries
        )
        self.op_index = 0

    # -- DAG construction -------------------------------------------------------

    def _new_op(self, task: int) -> int:
        v = len(self._preds)
        preds: List[int] = []
        prev = self._last_op.get(task)
        if prev is not None:
            preds.append(prev)
        elif task in self._fork_op:
            preds.append(self._fork_op[task])
        self._preds.append(preds)
        self._last_op[task] = v
        return v

    def on_root(self, root: int) -> None:
        self._last_op[root] = None

    def on_fork(self, parent: int, child: int) -> None:
        self.op_index += 1
        v = self._new_op(parent)
        self._fork_op[child] = v
        self._last_op.setdefault(child, None)

    def on_join(self, joiner: int, joined: int) -> None:
        self.op_index += 1
        v = self._new_op(joiner)
        self._preds[v].append(self._halt_op[joined])

    def on_halt(self, task: int) -> None:
        self.op_index += 1
        self._halt_op[task] = self._new_op(task)

    def on_step(self, task: int) -> None:
        self.op_index += 1
        self._new_op(task)

    def _ancestors(self, v: int) -> Set[int]:
        seen = {v}
        stack = [v]
        while stack:
            x = stack.pop()
            for p in self._preds[x]:
                if p not in seen:
                    seen.add(p)
                    stack.append(p)
        return seen

    # -- memory -------------------------------------------------------------

    def _cell(self, loc: Hashable) -> Tuple[List[int], List[int]]:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = ([], [])
            self.shadow.put(loc, cell)
        return cell

    def _check(
        self,
        v: int,
        prior_ops: List[int],
        loc: Hashable,
        task: int,
        kind: AccessKind,
        prior_kind: AccessKind,
        label: str,
        ancestors: Set[int],
    ) -> None:
        for w in prior_ops:
            if w not in ancestors:
                self.races.append(
                    RaceReport(
                        loc=loc,
                        task=task,
                        kind=kind,
                        prior_kind=prior_kind,
                        prior_repr=w,
                        op_index=self.op_index,
                        label=label,
                    )
                )
                return  # one report per access, like the other detectors

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        v = self._new_op(task)
        reads, writes = self._cell(loc)
        if writes:
            anc = self._ancestors(v)
            self._check(
                v, writes, loc, task, AccessKind.READ, AccessKind.WRITE,
                label, anc,
            )
        reads.append(v)
        self.shadow.touch(loc)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        v = self._new_op(task)
        reads, writes = self._cell(loc)
        if reads or writes:
            anc = self._ancestors(v)
            before = len(self.races)
            self._check(
                v, reads, loc, task, AccessKind.WRITE, AccessKind.READ,
                label, anc,
            )
            if len(self.races) == before:
                self._check(
                    v, writes, loc, task, AccessKind.WRITE,
                    AccessKind.WRITE, label, anc,
                )
        writes.append(v)
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def shadow_peak_per_location(self) -> int:
        return self.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.shadow.total_entries()

    def metadata_entries(self) -> int:
        """The whole retained DAG counts as metadata."""
        return sum(1 + len(p) for p in self._preds)
