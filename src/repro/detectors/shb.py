"""SHB-style sound race *prediction* from one logged trace.

Every other detector in this package answers "did the observed
interleaving race?": each access is compared against a per-location
*summary* (a supremum task, an epoch, a bag) and flagged at most once.
That summary is what makes them constant-space -- and what makes them
blind to races whose witnesses the summary already discarded.  The
SHB family (schedulable-happens-before; Roemer/Genc/Bond and the
rv-predict line of work, PAPERS.md) asks the stronger question: *which
access pairs race in some feasible reordering of the logged trace?*

In this repo's lock-free fork/halt/join model the answer is exact and
cheap: with no locks, happens-before is purely structural (program
order plus fork and join edges), so a feasible reordering can permute
exactly the HB-unordered events -- and therefore *every* conflicting
HB-unordered pair is a predictable race, and nothing else is.  Sound
and complete prediction reduces to enumerating those pairs:

* Each task carries a **vector timestamp** with the epoch
  optimisation: a task's own component ticks only at its *release*
  points (a fork; nothing else releases here -- join is a pure
  acquire, and a halt is terminal).  All accesses between two releases
  share one epoch ``(task, tick)`` and are indistinguishable to every
  other task, so one O(1) component compare
  (``clock_of(later)[task] >= tick``) decides order for a whole run of
  accesses.
* Per location and access kind, the detector keeps a **candidate
  window** in the spirit of rv-predict's windowed pair search: the
  epochs of prior accesses still HB-*maximal* for their kind.  An
  entry dominated by a newer same-kind entry is pruned -- sound
  because the trace linearises HB, so any later access unordered with
  the pruned entry is also unordered with its dominator.  The window
  is thus the HB-frontier (an antichain), bounded by the width of the
  task graph rather than the trace length.
* An incoming access scans the conflicting window(s) and reports **one
  race per unordered entry** -- the pair enumeration, not a
  first-report summary.  This is where prediction visibly exceeds the
  observed-order detectors: they emit at most one report per access,
  and they can miss pairs entirely when both of a pair's endpoints
  were folded out of the supremum (see ``docs/PREDICTION.md`` for a
  worked trace that lattice2d *and* fasttrack miss).

The soundness half -- never report an infeasible pair -- is the
invariant the differential harness checks mechanically: predicted
races must be a superset (as a multiset of flagged accesses) of what
the observed-order detectors report, and every reported pair is
HB-unordered by the vector-clock algebra above.

The detector is structure-generic: unlike ``depa``/``spbags`` it
accepts any structured fork/halt/join stream, not just serial
fork-first ones.  Hostile streams get the family's typed posture:
:class:`~repro.errors.DetectorError` at the exact ``op_index`` of the
offending event, same messages as the 2D detector.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.reports import AccessKind, RaceReport
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["SHBDetector"]


class SHBDetector(Detector):
    """Predictive race detector over epoch vector clocks (see module
    docstring).

    ``races`` holds one :class:`~repro.core.reports.RaceReport` per
    conflicting HB-unordered *pair*, with ``prior_repr`` naming the
    earlier accessor task -- so the same access can appear in several
    reports, one per partner.
    """

    name = "shb"

    #: values of the per-task ``_state`` column
    _LIVE, _HALTED, _JOINED = 0, 1, 2

    def __init__(self) -> None:
        super().__init__()
        self._state = array("b")
        # Sparse vector clocks, one dict per task; freed at join (the
        # joined task's final clock is merged into the joiner and never
        # read again).
        self._clock: List[Optional[Dict[int, int]]] = []
        # loc -> (read window, write window); each window is a list of
        # (task, tick) epochs forming the HB-frontier for that kind.
        self._windows: Dict[
            Hashable, Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]
        ] = {}
        self._peak_window = 0
        self.op_index = 0

    # -- bookkeeping ---------------------------------------------------------

    def _check_alive(self, t: int) -> None:
        if t < 0 or t >= len(self._state):
            raise DetectorError(f"unknown thread id {t}")
        if self._state[t]:
            raise DetectorError(f"thread {t} already halted")

    # -- structural events ---------------------------------------------------

    def on_root(self, root: int) -> None:
        tid = len(self._state)
        self._state.append(self._LIVE)
        self._clock.append({tid: 1})
        if tid != root:
            raise DetectorError(
                f"root id mismatch: interpreter says {root}, detector "
                f"allocated {tid}"
            )

    def on_fork(self, parent: int, child: Optional[int] = None) -> int:
        self._check_alive(parent)
        self.op_index += 1
        pc = self._clock[parent]
        assert pc is not None  # live tasks always hold a clock
        # The child inherits the parent's snapshot *before* the tick:
        # everything the parent did so far happens-before the child,
        # everything after the fork does not.
        cc = dict(pc)
        tid = len(self._state)
        cc[tid] = 1
        self._state.append(self._LIVE)
        self._clock.append(cc)
        pc[parent] += 1  # the fork is a release point for the parent
        if child is not None and child != tid:
            raise DetectorError(
                f"fork id mismatch: interpreter says {child}, detector "
                f"allocated {tid}"
            )
        return tid

    def on_halt(self, t: int) -> None:
        self._check_alive(t)
        self.op_index += 1
        self._state[t] = self._HALTED
        # The final clock stays parked until the joiner merges it.

    def on_join(self, joiner: int, joined: int) -> None:
        self._check_alive(joiner)
        if joined < 0 or joined >= len(self._state):
            raise DetectorError(f"unknown thread id {joined}")
        st = self._state[joined]
        if st == self._LIVE:
            raise DetectorError(f"joining running thread {joined}")
        if st == self._JOINED:
            raise DetectorError(f"thread {joined} joined twice")
        self.op_index += 1
        self._state[joined] = self._JOINED
        jc = self._clock[joiner]
        oc = self._clock[joined]
        assert jc is not None and oc is not None
        for task, tick in oc.items():
            if tick > jc.get(task, 0):
                jc[task] = tick
        self._clock[joined] = None  # never read again; free it

    def on_step(self, t: int) -> None:
        self._check_alive(t)
        self.op_index += 1

    # -- accesses ------------------------------------------------------------

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self._access(task, loc, AccessKind.READ, label)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self._access(task, loc, AccessKind.WRITE, label)

    def _access(
        self, t: int, loc: Hashable, kind: AccessKind, label: str
    ) -> None:
        self._check_alive(t)
        self.op_index += 1
        win = self._windows.get(loc)
        if win is None:
            win = ([], [])
            self._windows[loc] = win
        reads, writes = win
        vc = self._clock[t]
        assert vc is not None
        get = vc.get
        # One report per conflicting HB-unordered window entry: reads
        # race prior writes; writes race prior reads and prior writes.
        if kind is AccessKind.WRITE:
            for u, c in reads:
                if u != t and get(u, 0) < c:
                    self.races.append(
                        RaceReport(
                            loc=loc, task=t, kind=kind,
                            prior_kind=AccessKind.READ, prior_repr=u,
                            op_index=self.op_index, label=label,
                        )
                    )
            own = writes
        else:
            own = reads
        for u, c in writes:
            if u != t and get(u, 0) < c:
                self.races.append(
                    RaceReport(
                        loc=loc, task=t, kind=kind,
                        prior_kind=AccessKind.WRITE, prior_repr=u,
                        op_index=self.op_index, label=label,
                    )
                )
        # Fold this access into its kind's window: prune entries it
        # dominates (they can never race anything this one would not),
        # keep the unordered frontier, append the current epoch.
        keep = [e for e in own if e[0] != t and get(e[0], 0) < e[1]]
        keep.append((t, vc[t]))
        own[:] = keep
        size = len(reads) + len(writes)
        if size > self._peak_window:
            self._peak_window = size

    # -- accounting ----------------------------------------------------------

    @property
    def thread_count(self) -> int:
        return len(self._state)

    def shadow_peak_per_location(self) -> int:
        return self._peak_window

    def shadow_total_entries(self) -> int:
        return sum(
            len(reads) + len(writes)
            for reads, writes in self._windows.values()
        )

    def metadata_entries(self) -> int:
        # The state column plus every live clock's components.
        clocks = sum(
            len(vc) for vc in self._clock if vc is not None
        )
        return len(self._state) + clocks
