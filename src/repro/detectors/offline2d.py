"""Offline race detection on arbitrary annotated 2D-lattice task graphs.

The paper stresses that its algorithm is formulated "directly in terms
of the graph structure and not on the programming language".  This
module is that formulation in executable form: given *any* DAG whose
reachability order is a two-dimensional lattice, plus per-vertex memory
access annotations, it detects all racing accesses -- no interpreter, no
fork-join constructs.

Pipeline: realizer -> dominance diagram -> non-separating traversal ->
Figure 5 suprema walker -> Figure 6 shadow discipline.  Because the
whole graph is available up front, no delaying is needed and Theorem 1
applies verbatim: every ``Sup`` answer is the *true* supremum, so the
``R``/``W`` cells hold exact suprema and every check is exact.  The
detector therefore flags **exactly** the accesses that race with some
earlier access on their location -- stronger than the online guarantee
(which is only precise up to the first race).

Unlike the online setting there is no program order: races are flagged
at whichever endpoint the (deterministic, realizer-derived) traversal
visits second, so the A-D race of Figure 2 may be reported at A or at D
depending on the diagram's left-right orientation.  Use
:func:`visit_order` to know which.

Example
-------
>>> from repro.lattice.generators import figure2_lattice
>>> from repro.core.reports import AccessKind
>>> accesses = {
...     "A": [("l", AccessKind.READ)],
...     "B": [("l", AccessKind.READ)],
...     "D": [("l", AccessKind.WRITE)],
... }
>>> reports = detect_races_on_lattice(figure2_lattice(), accesses)
>>> len(reports)            # exactly the A-D race, flagged once
1
>>> reports[0].vertex in {"A", "D"}
True

(The prior representative is a supremum and need not itself access the
location: for Figure 2 it is ``C = sup{A, B}`` -- exactly the paper's
Section 2.3 observation.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

from repro.core.reports import AccessKind
from repro.core.suprema import SupremaWalker
from repro.events import Loop
from repro.lattice.digraph import Digraph
from repro.lattice.dominance import Diagram
from repro.lattice.nonseparating import nonseparating_traversal
from repro.lattice.poset import Poset

__all__ = ["OfflineRace", "detect_races_on_lattice", "visit_order"]


def visit_order(
    graph: Digraph, *, diagram: Optional[Diagram] = None
) -> List[Hashable]:
    """The vertex order in which :func:`detect_races_on_lattice` visits.

    Deterministic for a given graph (the realizer computation and the
    left-to-right traversal are both deterministic).
    """
    if diagram is None:
        diagram = Diagram.from_poset(Poset(graph))
    return [
        item.vertex
        for item in nonseparating_traversal(diagram)
        if isinstance(item, Loop)
    ]

#: per-vertex accesses: ``{vertex: [(location, kind), ...]}``
AccessMap = Mapping[Hashable, Sequence[Tuple[Hashable, AccessKind]]]


@dataclass(frozen=True, slots=True)
class OfflineRace:
    """A flagged access: ``vertex`` races with earlier work on ``loc``.

    ``prior_repr`` is the supremum vertex representing the conflicting
    history (it need not itself access ``loc`` -- Section 2.3).
    """

    vertex: Hashable
    loc: Hashable
    kind: AccessKind
    prior_kind: AccessKind
    prior_repr: Hashable


def detect_races_on_lattice(
    graph: Digraph,
    accesses: AccessMap,
    *,
    diagram: Optional[Diagram] = None,
) -> List[OfflineRace]:
    """Detect races on an annotated 2D-lattice DAG.

    Parameters
    ----------
    graph:
        Any DAG whose reachability order is a 2D lattice (single
        source/sink not required for detection itself, but dimension
        <= 2 is: a realizer is computed unless ``diagram`` is given).
    accesses:
        Per-vertex list of ``(location, AccessKind)`` annotations,
        processed in list order at that vertex's visit.
    diagram:
        Optionally a pre-built planar monotone diagram of ``graph``
        (skips the realizer search -- use for large known families such
        as grids).

    Returns
    -------
    All flagged accesses in traversal order; empty iff the annotated
    graph is race-free.

    Raises
    ------
    NotATwoDimensionalLattice
        When no realizer exists (order dimension > 2).
    """
    if diagram is None:
        diagram = Diagram.from_poset(Poset(graph))
    traversal = nonseparating_traversal(diagram)
    walker = SupremaWalker(check_preconditions=False)
    read_sup: Dict[Hashable, Hashable] = {}
    write_sup: Dict[Hashable, Hashable] = {}
    reports: List[OfflineRace] = []

    for item in traversal:
        walker.feed(item)
        if not isinstance(item, Loop):
            continue
        t = item.vertex
        for loc, kind in accesses.get(t, ()):
            if kind is AccessKind.READ:
                w = write_sup.get(loc)
                if w is not None and walker.sup(w, t) != t:
                    reports.append(
                        OfflineRace(t, loc, kind, AccessKind.WRITE, w)
                    )
                r = read_sup.get(loc)
                read_sup[loc] = t if r is None else walker.sup(r, t)
            elif kind is AccessKind.WRITE:
                r = read_sup.get(loc)
                w = write_sup.get(loc)
                if r is not None and walker.sup(r, t) != t:
                    reports.append(
                        OfflineRace(t, loc, kind, AccessKind.READ, r)
                    )
                elif w is not None and walker.sup(w, t) != t:
                    reports.append(
                        OfflineRace(t, loc, kind, AccessKind.WRITE, w)
                    )
                write_sup[loc] = t if w is None else walker.sup(w, t)
            else:  # pragma: no cover - defensive
                raise TypeError(f"not an AccessKind: {kind!r}")
    return reports
