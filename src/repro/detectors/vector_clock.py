"""DJIT+-style vector-clock race detector -- the Θ(n) baseline.

This is the "state of the art for arbitrary parallelism" the paper
positions itself against ([13], Introduction): sound and precise for any
fork-join structure, but storing a vector of clock entries per monitored
location -- Θ(n) space per location in the worst case, where ``n`` is
the number of threads.

Clock discipline:

* fork: the child starts with a copy of the parent's clock plus its own
  fresh component; the parent then advances its component (so the
  child's subsequent work is not ordered before the parent's);
* join: the joiner's clock absorbs (pointwise max) the joined task's
  clock, then advances its own component;
* a joined task's clock is freed -- its effects live on in the joiner.

Shadow state per location: a read vector ``R`` and a write vector ``W``
holding, per thread, the clock of that thread's latest access.  An
access by ``t`` races iff some recorded conflicting entry is not covered
by ``t``'s current clock.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["VectorClockDetector"]

Clock = Dict[int, int]


def _cell_entries(cell: Tuple[Clock, Clock]) -> int:
    return len(cell[0]) + len(cell[1])


class VectorClockDetector(Detector):
    """Generic happens-before detector with full vector clocks (DJIT+)."""

    name = "vectorclock"

    def __init__(self) -> None:
        super().__init__()
        self._clocks: Dict[int, Clock] = {}
        #: cells are (read_vector, write_vector)
        self.shadow: ShadowMap[Tuple[Clock, Clock]] = ShadowMap(_cell_entries)
        self.op_index = 0
        self.peak_clock_entries = 0
        self._task_count = 0

    # -- lifecycle ----------------------------------------------------------

    def on_root(self, root: int) -> None:
        self._clocks[root] = {root: 1}
        self._task_count = 1

    def on_fork(self, parent: int, child: int) -> None:
        self.op_index += 1
        pc = self._clock(parent)
        cc = dict(pc)
        cc[child] = 1
        self._clocks[child] = cc
        pc[parent] += 1
        self._task_count += 1
        self._note_clock_size()

    def on_join(self, joiner: int, joined: int) -> None:
        self.op_index += 1
        jc = self._clock(joiner)
        dc = self._clocks.pop(joined, None)
        if dc is None:
            raise DetectorError(f"join of unknown/already-joined {joined}")
        for u, k in dc.items():
            if jc.get(u, 0) < k:
                jc[u] = k
        jc[joiner] += 1
        self._note_clock_size()

    def on_halt(self, task: int) -> None:
        self.op_index += 1

    def on_step(self, task: int) -> None:
        self.op_index += 1

    def _clock(self, t: int) -> Clock:
        try:
            return self._clocks[t]
        except KeyError:
            raise DetectorError(f"unknown task {t}") from None

    def _note_clock_size(self) -> None:
        n = sum(len(c) for c in self._clocks.values())
        if n > self.peak_clock_entries:
            self.peak_clock_entries = n

    # -- memory -------------------------------------------------------------

    def _cell(self, loc: Hashable) -> Tuple[Clock, Clock]:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = ({}, {})
            self.shadow.put(loc, cell)
        return cell

    def _covered(self, vec: Clock, clock: Clock) -> Optional[int]:
        """Return a thread whose entry is *not* covered, or ``None``."""
        for u, k in vec.items():
            if clock.get(u, 0) < k:
                return u
        return None

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        clock = self._clock(task)
        rvec, wvec = self._cell(loc)
        bad = self._covered(wvec, clock)
        if bad is not None:
            self.races.append(
                RaceReport(
                    loc=loc,
                    task=task,
                    kind=AccessKind.READ,
                    prior_kind=AccessKind.WRITE,
                    prior_repr=bad,
                    op_index=self.op_index,
                    label=label,
                )
            )
        rvec[task] = clock[task]
        self.shadow.touch(loc)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        clock = self._clock(task)
        rvec, wvec = self._cell(loc)
        bad = self._covered(rvec, clock)
        prior = AccessKind.READ
        if bad is None:
            bad = self._covered(wvec, clock)
            prior = AccessKind.WRITE
        if bad is not None:
            self.races.append(
                RaceReport(
                    loc=loc,
                    task=task,
                    kind=AccessKind.WRITE,
                    prior_kind=prior,
                    prior_repr=bad,
                    op_index=self.op_index,
                    label=label,
                )
            )
        wvec[task] = clock[task]
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def shadow_peak_per_location(self) -> int:
        return self.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.shadow.total_entries()

    def metadata_entries(self) -> int:
        """Current live clock entries (joined tasks' clocks are freed)."""
        return sum(len(c) for c in self._clocks.values())
