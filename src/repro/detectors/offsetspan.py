"""Offset-span labeling (Mellor-Crummey, SC'91) for spawn-sync programs.

A classic point on the space/generality spectrum between vector clocks
(Θ(n) per location, any structure) and the bags/suprema detectors
(Θ(1), structured): every thread carries a *label* -- a list of
``(offset, span)`` pairs -- whose length tracks the current spawn
nesting depth, and two operations are concurrent iff their labels say
so.  Shadow cells store label copies, so space per location is
Θ(nesting depth): better than vector clocks (independent of the total
thread count), worse than this paper's two thread names.

Rules, adapted to incremental Cilk-style spawns (the parent keeps
running concurrently with the child, so each spawn splits into a team
of two):

* spawn: child label = ``L ++ [(0, 2)]``; parent label becomes
  ``L ++ [(1, 2)]`` and the spawn's depth is pushed on the parent's
  marker stack;
* join (LIFO, as the sync of the spawn-sync sugar emits): pop the
  marker ``d`` and set the parent label to
  ``P[:d] ++ [(P[d].offset + P[d].span, P[d].span)]`` -- the join
  continuation advances that level's phase and discards deeper pairs;
* ordering: scan two labels to the first differing position; a strict
  prefix happens-before the longer label; otherwise compare the phases
  ``offset // span`` at the difference -- equal phases mean concurrent.

Like SP-bags, this is sound only for the spawn-sync (fully-strict,
series-parallel) discipline; drive it with ``@cilk`` programs.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["OffsetSpanDetector"]

Label = Tuple[Tuple[int, int], ...]


def _ordered(a: Label, b: Label) -> bool:
    """Whether work labeled ``a`` happened-before work labeled ``b``."""
    if a == b:
        return True  # same thread segment: program order
    n = min(len(a), len(b))
    for i in range(n):
        if a[i] != b[i]:
            oa, sa = a[i]
            ob, sb = b[i]
            if sa != sb:  # pragma: no cover - impossible with 2-teams
                raise DetectorError("incomparable spans in labels")
            return oa // sa < ob // sb
    # One label is a strict prefix of the other: the shorter (shallower)
    # state precedes the deeper one created by its forks.
    return len(a) < len(b)


def _cell_entries(cell: List[Optional[Label]]) -> int:
    return sum(len(label) for label in cell if label is not None)


class OffsetSpanDetector(Detector):
    """Mellor-Crummey offset-span labels over spawn-sync event streams."""

    name = "offsetspan"

    def __init__(self) -> None:
        super().__init__()
        self._label: Dict[int, List[Tuple[int, int]]] = {}
        #: per task: stack of (depth, child) markers for pending spawns
        self._markers: Dict[int, List[Tuple[int, int]]] = {}
        self._parent: Dict[int, int] = {}
        #: cells are [reader_label, writer_label]
        self.shadow: ShadowMap[List[Optional[Label]]] = ShadowMap(
            _cell_entries
        )
        self.op_index = 0
        self.peak_label_len = 1

    # -- lifecycle ----------------------------------------------------------

    def on_root(self, root: int) -> None:
        self._label[root] = [(0, 1)]
        self._markers[root] = []

    def on_fork(self, parent: int, child: int) -> None:
        self.op_index += 1
        plabel = self._label.get(parent)
        if plabel is None:
            raise DetectorError(f"unknown task {parent}")
        depth = len(plabel)
        self._label[child] = plabel + [(0, 2)]
        self._markers[child] = []
        self._parent[child] = parent
        plabel.append((1, 2))
        self._markers[parent].append((depth, child))
        if depth + 1 > self.peak_label_len:
            self.peak_label_len = depth + 1

    def on_join(self, joiner: int, joined: int) -> None:
        self.op_index += 1
        markers = self._markers.get(joiner)
        if not markers:
            raise DetectorError(
                f"task {joiner} joins {joined} without a pending spawn; "
                "offset-span requires the spawn-sync (@cilk) discipline"
            )
        depth, expected = markers.pop()
        if expected != joined:
            raise DetectorError(
                f"non-LIFO join: task {joiner} joins {joined} but the "
                f"innermost pending spawn is {expected}"
            )
        label = self._label[joiner]
        offset, span = label[depth]
        del label[depth:]
        label.append((offset + span, span))
        self._label.pop(joined, None)  # the child's label is dead now

    def on_halt(self, task: int) -> None:
        self.op_index += 1

    def on_step(self, task: int) -> None:
        self.op_index += 1

    # -- memory -------------------------------------------------------------

    def _current(self, task: int) -> Label:
        label = self._label.get(task)
        if label is None:
            raise DetectorError(f"unknown task {task}")
        return tuple(label)

    def _cell(self, loc: Hashable) -> List[Optional[Label]]:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = [None, None]
            self.shadow.put(loc, cell)
        return cell

    def _report(self, loc, task, kind, prior_kind, label):
        self.races.append(
            RaceReport(
                loc=loc,
                task=task,
                kind=kind,
                prior_kind=prior_kind,
                prior_repr=None,
                op_index=self.op_index,
                label=label,
            )
        )

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        me = self._current(task)
        cell = self._cell(loc)
        reader, writer = cell
        if writer is not None and not _ordered(writer, me):
            self._report(loc, task, AccessKind.READ, AccessKind.WRITE, label)
        # Keep a concurrent reader (it still guards a future writer);
        # replace an ordered one -- the same policy as SP-bags.
        if reader is None or _ordered(reader, me):
            cell[0] = me
            self.shadow.touch(loc)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        me = self._current(task)
        cell = self._cell(loc)
        reader, writer = cell
        if reader is not None and not _ordered(reader, me):
            self._report(loc, task, AccessKind.WRITE, AccessKind.READ, label)
        elif writer is not None and not _ordered(writer, me):
            self._report(loc, task, AccessKind.WRITE, AccessKind.WRITE, label)
        cell[1] = me
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def shadow_peak_per_location(self) -> int:
        return self.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.shadow.total_entries()

    def metadata_entries(self) -> int:
        return sum(
            2 * len(lbl) for lbl in self._label.values()
        ) + sum(2 * len(m) for m in self._markers.values())
