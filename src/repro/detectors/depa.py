"""DePa-style array-native reachability: no union-find walk per query.

The paper's Figure-8 engine answers ``Sup``/precedes queries by walking
a union-find forest of Python objects -- pointer chasing on every
access.  DePa (Westrick/Wang/Acar, PAPERS.md) shows that fork/join
precedence can instead be answered from flat per-vertex integer
coordinates.  This module carries that idea over to the serial
fork-first streams our interpreter emits, where it becomes exact -- not
approximate -- relative to the 2D-lattice detector:

* Under fork-first execution (a forked child runs to completion before
  its parent resumes) the *live* tasks are exactly the current
  fork-ancestor chain -- a stack.  Every event is performed by the
  stack top.
* Each task gets one flat coordinate: ``halt_seq``, its position in
  the global halt order -- the monotone clock that plays the role of
  DePa's dag-depth (DePa's tree depth is implicit here: a live task's
  depth is its stack position).  It lives in an ``array`` column --
  no per-task objects.
* The union-find query ``visited[label[find(x)]]`` asks: *is the task
  that owns x's set still on the stack?*  A halted task's history is
  absorbed, at join time, by the joining task.  We track that ownership
  directly: every stack task owns a set of ``halt_seq`` *intervals*
  (the halts it has absorbed via joins), kept in two global sorted
  columns ``g_lo``/``g_hi`` shared by the whole stack.  A tracked
  access by ``x`` precedes the current op iff ``x`` is on the stack or
  ``halt_seq[x]`` falls inside an absorbed interval -- one binary
  search, O(log depth), no pointer chasing.

Interval lists (not single intervals) are required: a task may halt
with forked-but-unjoined children, leaving its absorbed halt set
temporarily non-contiguous; the gaps are exactly the unjoined children,
which must *not* be treated as ordered.

Verdict and fold policy mirror :class:`~repro.core.detector.
RaceDetector2D` (prose semantics) exactly: reads check the write
supremum, writes check read-then-write with at most one report per
write, clean accesses fold the cell to the acting task, racing
accesses leave the old (unordered) value in place.  The one visible
difference is ``prior_repr``: this detector reports the original
accessor id where the union-find reports the current set label -- the
same set, so every *verdict* agrees (the differential harness
cross-checks this on every benchmark run).

The flat columns are what makes :mod:`repro.engine.vectorized` possible:
a numpy kernel gathers ``halt_seq`` for whole
:class:`~repro.engine.batch.EventBatch` segments at once and answers
every precedence query in the segment with one interval search.

Because the encoding leans on the stack invariant, this detector
*requires* serial fork-first streams and raises
:class:`~repro.errors.DetectorError` when any event's acting task is
not the stack top -- the same posture as ``spbags`` requiring
spawn-sync input, and what keeps a hostile stream from silently
producing wrong verdicts.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.reports import AccessKind, RaceReport
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["DePaDetector", "LIVE"]

#: ``halt_seq`` sentinel for tasks that have not halted.  Live tasks are
#: always on the stack (fork-first), hence always ordered -- so the
#: sentinel is chosen to land inside the permanent guard interval
#: ``[-2, -1]`` at index 0 of the ``g_lo``/``g_hi`` columns, making
#: "live" and "absorbed halt" the *same* interval test (one
#: ``searchsorted``, no extra mask, scalar and vectorized alike).
LIVE = -1

_EMPTY_Q = array("q", [-1])


def _merge_intervals(a: List[int], b: List[int]) -> List[int]:
    """Merge two sorted, mutually disjoint flat interval lists
    ``[lo0, hi0, lo1, hi1, ...]``, coalescing adjacent runs."""
    out: List[int] = []
    i = j = 0
    na, nb = len(a), len(b)
    while i < na or j < nb:
        if j >= nb or (i < na and a[i] < b[j]):
            lo, hi = a[i], a[i + 1]
            i += 2
        else:
            lo, hi = b[j], b[j + 1]
            j += 2
        if out and lo == out[-1] + 1:
            out[-1] = hi
        else:
            out.append(lo)
            out.append(hi)
    return out


class DePaDetector(Detector):
    """Array-native fork-first race detector (see module docstring).

    State is flat ``array`` columns indexed by task id, plus two global
    sorted interval columns for the stack's absorbed halt ranges.  The
    numpy batch kernel in :mod:`repro.engine.vectorized` operates on
    zero-copy views of these same columns; the scalar observer-protocol
    methods here are the reference implementation and the fallback.
    """

    name = "depa"

    #: values of the per-task ``_state`` column
    _LIVE, _HALTED, _JOINED = 0, 1, 2

    def __init__(self) -> None:
        super().__init__()
        # -- per-task columns --
        # halt_seq is DePa's dag-depth analogue (the fork depth is
        # implicit: a live task's depth is its stack position).
        self._halt_seq = array("q")  # global halt position; LIVE until halt
        self._state = array("b")  # _LIVE (== on stack) / _HALTED / _JOINED
        # -- the serial fork-first spine --
        self._stack: List[int] = []  # live tasks, root first
        self._halt_count = 0
        # -- absorbed-interval state --
        # Sorted disjoint [lo, hi] halt_seq intervals absorbed by the
        # stack, bottom-up; _seg_start[t] is where stack task t's run
        # begins while it is on the stack.  Index 0 is the permanent
        # [-2, -1] guard interval: it absorbs the LIVE sentinel (live
        # tasks are ordered by the stack invariant) and keeps interval
        # searches free of empty/underflow checks.
        self._g_lo = array("q", [-2])
        self._g_hi = array("q", [LIVE])
        self._seg_start = array("i")
        # Intervals owned by halted-but-unjoined tasks, flat per task.
        self._iv: List[Optional[Sequence[int]]] = []
        # -- shadow cells --
        # Dense int locations (the engine's interned lids) live in one
        # interleaved flat column: lid's read supremum at 2*lid, its
        # write supremum at 2*lid + 1, -1 for none.  One column means
        # the batch kernel can answer any mix of read/write cell
        # questions with a single gather.  Anything else (per-event
        # replay with raw locations) falls back to a dict of [r, w]
        # cells.
        self._cells = array("q")
        self._cells_obj: Dict[Hashable, List[Optional[int]]] = {}
        self.op_index = 0

    # -- bookkeeping ---------------------------------------------------------

    def _new_task(self) -> int:
        tid = len(self._halt_seq)
        self._halt_seq.append(LIVE)
        self._state.append(self._LIVE)
        self._seg_start.append(0)
        self._iv.append(None)
        return tid

    def _check_alive(self, t: int) -> None:
        if t < 0 or t >= len(self._state):
            raise DetectorError(f"unknown thread id {t}")
        if self._state[t]:
            raise DetectorError(f"thread {t} already halted")

    def _require_top(self, t: int, what: str) -> None:
        if not self._stack or self._stack[-1] != t:
            current = self._stack[-1] if self._stack else "<none>"
            raise DetectorError(
                "depa backend requires the serial fork-first stream: "
                f"{what} by task {t} while task {current} is current"
            )

    def _ensure_loc(self, lid: int) -> None:
        cells = self._cells
        need = 2 * (lid + 1)
        if need > len(cells):
            grow = max(need, 2 * len(cells)) - len(cells)
            cells.extend(_EMPTY_Q * grow)

    # -- structural events ---------------------------------------------------

    def on_root(self, root: int) -> None:
        tid = self._new_task()
        if tid != root:
            raise DetectorError(
                f"root id mismatch: interpreter says {root}, detector "
                f"allocated {tid}"
            )
        self._stack.append(tid)
        self._seg_start[tid] = len(self._g_lo)

    def on_fork(self, parent: int, child: Optional[int] = None) -> int:
        stack = self._stack
        if not stack or stack[-1] != parent:
            # Stack members are live by construction, so matching the
            # top already proves liveness; only the failure path needs
            # the full diagnostics.
            self._check_alive(parent)
            self._require_top(parent, "fork")
        self.op_index += 1
        # _new_task, inlined -- forks are the hot structural event.
        tid = len(self._halt_seq)
        self._halt_seq.append(LIVE)
        self._state.append(self._LIVE)
        self._seg_start.append(0)
        self._iv.append(None)
        if child is not None and child != tid:
            raise DetectorError(
                f"fork id mismatch: interpreter says {child}, detector "
                f"allocated {tid}"
            )
        stack.append(tid)
        self._seg_start[tid] = len(self._g_lo)
        return tid

    def on_halt(self, t: int) -> None:
        stack = self._stack
        if not stack or stack[-1] != t:
            self._check_alive(t)
            self._require_top(t, "halt")
        self.op_index += 1
        stack.pop()
        self._state[t] = self._HALTED
        h = self._halt_count
        self._halt_count = h + 1
        self._halt_seq[t] = h
        # The halting task's own absorbed intervals, plus its own halt,
        # become the interval list its eventual joiner will merge in.
        seg = self._seg_start[t]
        g_lo, g_hi = self._g_lo, self._g_hi
        if seg == len(g_lo):
            # Leaf-ish halt: nothing absorbed while on the stack.
            self._iv[t] = [h, h]
            return
        iv: List[int] = []
        for i in range(seg, len(g_lo)):
            iv.append(g_lo[i])
            iv.append(g_hi[i])
        if iv and iv[-1] == h - 1:
            iv[-1] = h
        else:
            iv.append(h)
            iv.append(h)
        del g_lo[seg:]
        del g_hi[seg:]
        self._iv[t] = iv

    def on_join(self, joiner: int, joined: int) -> None:
        stack = self._stack
        if not stack or stack[-1] != joiner:
            self._check_alive(joiner)
            self._require_top(joiner, "join")
        if joined < 0 or joined >= len(self._state):
            raise DetectorError(f"unknown thread id {joined}")
        st = self._state[joined]
        if st == self._LIVE:
            raise DetectorError(f"joining running thread {joined}")
        if st == self._JOINED:
            raise DetectorError(f"thread {joined} joined twice")
        self.op_index += 1
        self._state[joined] = self._JOINED
        other = self._iv[joined] or []
        self._iv[joined] = None
        seg = self._seg_start[joiner]
        g_lo, g_hi = self._g_lo, self._g_hi
        n = len(g_lo)
        if len(other) == 2 and n > seg:
            # Children joined in halt order (or reverse halt order, the
            # interpreter's natural join loop) extend the joiner's last
            # absorbed interval in place -- the overwhelmingly common
            # shapes, no list building.  Disjointness keeps the global
            # columns sorted either way.
            if other[0] == g_hi[-1] + 1:
                g_hi[-1] = other[1]
                return
            if other[1] == g_lo[-1] - 1:
                lo = other[0]
                if n - 1 > seg and g_hi[-2] == lo - 1:
                    # The gap to the joiner's previous interval just
                    # closed: coalesce, like _merge_intervals would
                    # (never across seg -- earlier intervals belong to
                    # ancestors and on_halt captures g[seg:]).
                    hi = g_hi[-1]
                    del g_lo[-1]
                    del g_hi[-1]
                    g_hi[-1] = hi
                else:
                    g_lo[-1] = lo
                return
        if n == seg:
            # Joiner owns no intervals yet: adopt the child's outright.
            for k in range(0, len(other), 2):
                g_lo.append(other[k])
                g_hi.append(other[k + 1])
            return
        mine: List[int] = []
        for i in range(seg, len(g_lo)):
            mine.append(g_lo[i])
            mine.append(g_hi[i])
        merged = _merge_intervals(mine, other)
        del g_lo[seg:]
        del g_hi[seg:]
        for k in range(0, len(merged), 2):
            g_lo.append(merged[k])
            g_hi.append(merged[k + 1])

    def on_step(self, t: int) -> None:
        stack = self._stack
        if not stack or stack[-1] != t:
            self._check_alive(t)
            self._require_top(t, "step")
        self.op_index += 1

    # -- bulk structural runs ------------------------------------------------
    #
    # The numpy kernel applies maximal same-opcode runs of *pre-validated*
    # structural events through these instead of one scalar call per
    # event.  "Pre-validated" means the kernel's stack simulation has
    # already proven every event's acting task is the stack top (and,
    # for forks, that the child ids match the allocation order), so the
    # per-event checks and the incremental interval edits can be
    # replaced by one amortized state update.  Results are exactly what
    # the same run of scalar calls would leave behind.

    def _bulk_forks(self, k: int) -> None:
        """Apply ``k`` consecutive pre-validated forks at once: allocate
        the ids, push them, and grow every per-task column in one
        extend instead of ``k`` appends."""
        tid = len(self._halt_seq)
        self._halt_seq.extend(_EMPTY_Q * k)  # LIVE == -1
        self._state.frombytes(bytes(k))  # _LIVE == 0
        seg = len(self._g_lo)
        self._seg_start.extend(array("i", [seg]) * k)
        self._iv.extend([None] * k)
        self._stack.extend(range(tid, tid + k))
        self.op_index += k

    def _bulk_leaf_triples(self, k: int) -> None:
        """Apply ``k`` consecutive pre-validated (fork, ..., halt) leaf
        triples' structural effects at once.

        Each triple forks one child that halts before the next fork, so
        the stack and the global interval columns end exactly where
        they started; all that remains is allocating the ``k`` child
        ids as already-halted tasks parking their own one-point halt
        intervals.  The caller accounts for the access rows between
        each fork and halt separately."""
        h = self._halt_count
        self._halt_seq.extend(array("q", range(h, h + k)))
        self._state.frombytes(b"\x01" * k)  # _HALTED
        seg = len(self._g_lo)
        self._seg_start.extend(array("i", [seg]) * k)
        self._iv.extend(zip(range(h, h + k), range(h, h + k)))
        self._halt_count = h + k
        self.op_index += 2 * k

    def _bulk_halts(self, k: int) -> None:
        """Apply ``k`` consecutive pre-validated halts at once.

        Sequential halts each capture ``g[seg:]`` and truncate the
        global columns; a run pops an ancestor suffix of the stack, so
        the captures are nested slices of the *initial* columns and one
        final truncation replaces ``k`` incremental deletes."""
        stack = self._stack
        g_lo, g_hi = self._g_lo, self._g_hi
        halt_seq, state = self._halt_seq, self._state
        seg_start, iv_all = self._seg_start, self._iv
        h = self._halt_count
        end = len(g_lo)
        for i in range(k):
            t = stack[-1 - i]
            hseq = h + i
            halt_seq[t] = hseq
            state[t] = self._HALTED
            seg = seg_start[t]
            if seg == end:
                iv_all[t] = [hseq, hseq]
                continue
            iv: List[int] = []
            for j in range(seg, end):
                iv.append(g_lo[j])
                iv.append(g_hi[j])
            if iv[-1] == hseq - 1:
                iv[-1] = hseq
            else:
                iv.append(hseq)
                iv.append(hseq)
            iv_all[t] = iv
            end = seg
        del stack[-k:]
        del g_lo[end:]
        del g_hi[end:]
        self._halt_count = h + k
        self.op_index += k

    def _bulk_joins(self, joiner: int, joined: Sequence[int]) -> bool:
        """Apply a run of pre-validated joins by ``joiner`` at once.

        The join *targets* are not covered by the kernel's stack
        simulation, so they are fully validated here first; on any
        violation nothing is mutated and False is returned -- the
        caller replays the run scalar so the offending event raises
        its exact error at its exact ``op_index``.  On success the
        joiner's absorbed intervals and every child's parked intervals
        are coalesced in one k-way merge instead of one incremental
        merge per join."""
        state = self._state
        n_tasks = len(state)
        halted = self._HALTED
        iv_all = self._iv
        g_lo, g_hi = self._g_lo, self._g_hi
        seg = self._seg_start[joiner]
        # Validate and collect in one pass; nothing is mutated until
        # every target has passed (a revisited target reads _JOINED and
        # fails, which doubles as the intra-run duplicate check).
        pairs: List[Tuple[int, int]] = [
            (g_lo[i], g_hi[i]) for i in range(seg, len(g_lo))
        ]
        done = 0
        points: List[int] = []
        for t in joined:
            if t < 0 or t >= n_tasks or state[t] != halted:
                for u in joined[:done]:
                    state[u] = halted
                return False
            iv = iv_all[t] or ()
            if len(iv) == 2 and iv[0] == iv[1]:
                # One-point parked interval (a leaf child): collect the
                # point instead of materializing a pair.
                points.append(iv[0])
            else:
                for j in range(0, len(iv), 2):
                    pairs.append((iv[j], iv[j + 1]))
            state[t] = self._JOINED
            done += 1
        for t in joined:
            iv_all[t] = None
        if points:
            mn = min(points)
            mx = max(points)
            if mx - mn == len(points) - 1:
                # Halt seqs are globally unique, so a hull exactly as
                # wide as the count proves the points are contiguous --
                # the standard fanout round (k leaf children joined
                # together) collapses to one interval before the merge.
                pairs.append((mn, mx))
            else:
                pairs.extend((h, h) for h in points)
        pairs.sort()
        del g_lo[seg:]
        del g_hi[seg:]
        cur_lo, cur_hi = pairs[0]
        for lo, hi in pairs[1:]:
            if lo == cur_hi + 1:
                cur_hi = hi
            else:
                g_lo.append(cur_lo)
                g_hi.append(cur_hi)
                cur_lo, cur_hi = lo, hi
        g_lo.append(cur_lo)
        g_hi.append(cur_hi)
        self.op_index += len(joined)
        return True

    # -- the precedence query ------------------------------------------------

    def ordered(self, x: int) -> bool:
        """Does tracked accessor ``x`` precede the current operation?

        True iff ``x`` is still on the stack (an ancestor of the acting
        task) or its halt has been absorbed by some stack task's joins.
        One binary search over the global interval columns.
        """
        if self._state[x] == self._LIVE:
            return True
        h = self._halt_seq[x]
        i = bisect_right(self._g_lo, h) - 1
        return i >= 0 and h <= self._g_hi[i]

    # -- accesses ------------------------------------------------------------

    def _cell(self, loc: Hashable):
        """(read_sup, write_sup) for ``loc``; -1/None when absent."""
        if type(loc) is int and loc >= 0:
            i = loc + loc
            cells = self._cells
            if i < len(cells):
                return cells[i], cells[i + 1]
            return -1, -1
        cell = self._cells_obj.get(loc)
        if cell is None:
            return -1, -1
        return (
            cell[0] if cell[0] is not None else -1,
            cell[1] if cell[1] is not None else -1,
        )

    def _store(self, loc: Hashable, kind_slot: int, t: int) -> None:
        if type(loc) is int and loc >= 0:
            self._ensure_loc(loc)
            self._cells[loc + loc + kind_slot] = t
            return
        cell = self._cells_obj.get(loc)
        if cell is None:
            cell = [None, None]
            self._cells_obj[loc] = cell
        cell[kind_slot] = t

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        stack = self._stack
        if not stack or stack[-1] != task:
            self._check_alive(task)
            self._require_top(task, "read")
        self.op_index += 1
        r, w = self._cell(loc)
        if w >= 0 and not self.ordered(w):
            self.races.append(
                RaceReport(
                    loc=loc,
                    task=task,
                    kind=AccessKind.READ,
                    prior_kind=AccessKind.WRITE,
                    prior_repr=w,
                    op_index=self.op_index,
                    label=label,
                )
            )
        if r < 0 or self.ordered(r):
            self._store(loc, 0, task)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        stack = self._stack
        if not stack or stack[-1] != task:
            self._check_alive(task)
            self._require_top(task, "write")
        self.op_index += 1
        r, w = self._cell(loc)
        if r >= 0 and not self.ordered(r):
            self.races.append(
                RaceReport(
                    loc=loc,
                    task=task,
                    kind=AccessKind.WRITE,
                    prior_kind=AccessKind.READ,
                    prior_repr=r,
                    op_index=self.op_index,
                    label=label,
                )
            )
        elif w >= 0 and not self.ordered(w):
            self.races.append(
                RaceReport(
                    loc=loc,
                    task=task,
                    kind=AccessKind.WRITE,
                    prior_kind=AccessKind.WRITE,
                    prior_repr=w,
                    op_index=self.op_index,
                    label=label,
                )
            )
        if w < 0 or self.ordered(w):
            self._store(loc, 1, task)

    # -- accounting ----------------------------------------------------------

    @property
    def thread_count(self) -> int:
        return len(self._halt_seq)

    def shadow_peak_per_location(self) -> int:
        # Cells only ever gain entries, so current == peak.
        peak = 0
        cells = self._cells
        for i in range(0, len(cells), 2):
            n = (cells[i] >= 0) + (cells[i + 1] >= 0)
            if n > peak:
                peak = n
                if peak == 2:
                    break
        if peak < 2:
            for cell in self._cells_obj.values():
                n = (cell[0] is not None) + (cell[1] is not None)
                if n > peak:
                    peak = n
                    if peak == 2:
                        break
        return peak

    def shadow_total_entries(self) -> int:
        cells = self._cells
        total = len(cells) - cells.count(-1)
        for cell in self._cells_obj.values():
            total += (cell[0] is not None) + (cell[1] is not None)
        return total

    def metadata_entries(self) -> int:
        # Three flat columns per task, the global interval columns, and
        # the parked interval lists of halted-but-unjoined tasks.
        per_task = 3 * len(self._halt_seq)
        parked = sum(len(iv) for iv in self._iv if iv is not None)
        return per_task + 2 * len(self._g_lo) + parked
