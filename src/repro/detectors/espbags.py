"""ESP-bags: the Θ(1) detector for async-finish programs [18].

Raman et al. (RV 2010) extend SP-bags from Cilk's fully-strict
spawn-sync to X10/Habanero's *terminally strict* async-finish: tasks are
joined by enclosing **finish scopes**, not by their parents, so the
bag bookkeeping keys P-bags to finish instances:

* every task owns an S-bag (initially itself);
* every *finish instance* owns a P-bag (initially empty);
* when a task returns, its S-bag drains into the P-bag of its
  **governing finish** -- the innermost finish dynamically enclosing its
  creation (this is where escaped asyncs register);
* when a finish instance ends, its P-bag drains into the S-bag of the
  task executing the finish.

Race checks on memory accesses are identical to SP-bags.  Shadow state:
one reader + one writer id per location -- Θ(1).

The detector learns finish boundaries from the annotation side channel
emitted by :func:`repro.forkjoin.async_finish.x10`; running it on a
program that forks outside any finish scope raises
:class:`DetectorError` (use the ``@x10`` sugar).
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.core.unionfind import IntUnionFind
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["ESPBagsDetector"]


def _cell_entries(cell: List[Optional[int]]) -> int:
    return (cell[0] is not None) + (cell[1] is not None)


class _Finish:
    """One dynamic finish instance: owner task + P-bag label."""

    __slots__ = ("owner", "p_label")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self.p_label: Optional[int] = None


class ESPBagsDetector(Detector):
    """Raman et al.'s ESP-bags over annotated async-finish streams."""

    name = "espbags"

    def __init__(self) -> None:
        super().__init__()
        self._uf = IntUnionFind()
        self._is_p: List[bool] = []
        self._s_label: List[int] = []
        #: per task: its governing finish instance (set at fork)
        self._governing: List[Optional[_Finish]] = []
        #: per task: stack of its own open finish instances
        self._open: Dict[int, List[_Finish]] = {}
        self.shadow: ShadowMap[List[Optional[int]]] = ShadowMap(_cell_entries)
        self.op_index = 0

    # -- task & scope lifecycle -------------------------------------------------

    def _new_task(self, governing: Optional[_Finish]) -> int:
        tid = self._uf.make()
        self._is_p.append(False)
        self._s_label.append(tid)
        self._governing.append(governing)
        self._open[tid] = []
        return tid

    def on_root(self, root: int) -> None:
        tid = self._new_task(None)
        if tid != root:
            raise DetectorError("root id mismatch")

    def on_annotation(self, task: int, tag: str, data: Any = None) -> None:
        if tag == "finish_start":
            self._open[task].append(_Finish(task))
        elif tag == "finish_end":
            if not self._open[task]:
                raise DetectorError(
                    f"finish_end without finish_start in task {task}"
                )
            fin = self._open[task].pop()
            if fin.p_label is not None:
                lab = self._uf.union(self._s_label[task], fin.p_label)
                self._s_label[task] = lab
                self._is_p[lab] = False

    def _innermost_finish(self, task: int) -> Optional[_Finish]:
        stack = self._open.get(task)
        if stack:
            return stack[-1]
        return self._governing[task]

    def on_fork(self, parent: int, child: int) -> None:
        self.op_index += 1
        gov = self._innermost_finish(parent)
        if gov is None:
            raise DetectorError(
                "async outside any finish scope; ESP-bags requires "
                "programs written with the @x10 sugar"
            )
        tid = self._new_task(gov)
        if tid != child:
            raise DetectorError("fork id mismatch")

    def on_halt(self, task: int) -> None:
        """Task return: S-bag drains into the governing finish's P-bag."""
        self.op_index += 1
        gov = self._governing[task]
        if gov is None:
            return  # root
        if self._open[task]:
            raise DetectorError(
                f"task {task} halted with an open finish scope"
            )
        lab = self._s_label[task]
        if gov.p_label is not None:
            lab = self._uf.union(gov.p_label, lab)
        gov.p_label = lab
        self._is_p[lab] = True

    def on_join(self, joiner: int, joined: int) -> None:
        # Joins are implied by finish_end in the async-finish discipline.
        self.op_index += 1

    def on_step(self, task: int) -> None:
        self.op_index += 1

    def _in_p_bag(self, task: int) -> bool:
        return self._is_p[self._uf.find(task)]

    # -- memory (same rules as SP-bags) ------------------------------------------

    def _cell(self, loc: Hashable) -> List[Optional[int]]:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = [None, None]
            self.shadow.put(loc, cell)
        return cell

    def _report(self, loc, task, kind, prior_kind, prior_repr, label):
        self.races.append(
            RaceReport(
                loc=loc,
                task=task,
                kind=kind,
                prior_kind=prior_kind,
                prior_repr=prior_repr,
                op_index=self.op_index,
                label=label,
            )
        )

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        cell = self._cell(loc)
        reader, writer = cell
        if writer is not None and self._in_p_bag(writer):
            self._report(
                loc, task, AccessKind.READ, AccessKind.WRITE, writer, label
            )
        if reader is None or not self._in_p_bag(reader):
            cell[0] = task
            self.shadow.touch(loc)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        cell = self._cell(loc)
        reader, writer = cell
        if reader is not None and self._in_p_bag(reader):
            self._report(
                loc, task, AccessKind.WRITE, AccessKind.READ, reader, label
            )
        elif writer is not None and self._in_p_bag(writer):
            self._report(
                loc, task, AccessKind.WRITE, AccessKind.WRITE, writer, label
            )
        cell[1] = task
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def shadow_peak_per_location(self) -> int:
        return self.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.shadow.total_entries()

    def metadata_entries(self) -> int:
        # s_label + governing + is_p + union-find node (2) per task, plus
        # one slot per open finish frame.
        return 5 * len(self._s_label) + sum(
            len(s) for s in self._open.values()
        )
