"""Race detectors: the paper's 2D detector and every baseline.

All detectors consume the interpreter's event stream through the common
:class:`~repro.detectors.base.Detector` interface and report
:class:`~repro.core.reports.RaceReport` objects, so the benchmark
harness can swap them freely:

================  ===========================================  =========================
detector           applicability                                space per location
================  ===========================================  =========================
``Lattice2D``      any structured fork-join (2D lattices)       Θ(1)  (this paper)
``DePa``           serial fork-first streams (our interpreter)  Θ(1)  (array-native, DePa-style)
``SPBags``         spawn-sync programs only (SP graphs)         Θ(1)  (Feng-Leiserson [12])
``ESPBags``        async-finish programs only                   Θ(1)  (Raman et al. [18])
``OffsetSpan``     spawn-sync programs only                     Θ(nesting depth) (Mellor-Crummey '91)
``VectorClock``    anything (generic happens-before)            Θ(n)  (DJIT+-style, [13], sparse)
``DenseVectorClock``  anything                                  Θ(n)  dense numpy clocks (textbook)
``FastTrack``      anything (epoch-optimised vector clocks)     Θ(1)..Θ(n) adaptive [13]
``SHB``            anything; *predicts* racing pairs across     Θ(width) frontier windows
                   feasible reorderings (docs/PREDICTION.md)
``Naive``          anything (explicit access sets + DFS)        Θ(accesses)
``oracle``         offline, from recorded events                exact ground truth
================  ===========================================  =========================
"""

from repro.detectors.base import Detector, NullObserver, EventTracer
from repro.detectors.depa import DePaDetector
from repro.detectors.lattice2d import Lattice2DDetector
from repro.detectors.vector_clock import VectorClockDetector
from repro.detectors.vector_clock_dense import DenseVectorClockDetector
from repro.detectors.fasttrack import FastTrackDetector
from repro.detectors.spbags import SPBagsDetector
from repro.detectors.espbags import ESPBagsDetector
from repro.detectors.naive import NaiveDetector
from repro.detectors.offsetspan import OffsetSpanDetector
from repro.detectors.shb import SHBDetector
from repro.detectors.offline2d import (
    OfflineRace,
    detect_races_on_lattice,
    visit_order,
)
from repro.detectors.oracle import (
    RacingPair,
    detector_is_sound,
    exact_races,
    exact_races_of_graph,
    first_report_is_precise,
    oracle_race_pairs,
)

__all__ = [
    "Detector",
    "NullObserver",
    "EventTracer",
    "Lattice2DDetector",
    "DePaDetector",
    "VectorClockDetector",
    "DenseVectorClockDetector",
    "FastTrackDetector",
    "SPBagsDetector",
    "ESPBagsDetector",
    "NaiveDetector",
    "OffsetSpanDetector",
    "SHBDetector",
    "OfflineRace",
    "detect_races_on_lattice",
    "visit_order",
    "RacingPair",
    "exact_races",
    "exact_races_of_graph",
    "oracle_race_pairs",
    "detector_is_sound",
    "first_report_is_precise",
]
