"""SP-bags: the Θ(1) detector for spawn-sync (Cilk) programs [12].

Feng and Leiserson's algorithm is the direct ancestor of this paper
(Remark 2: SP-bags is Tarjan's algorithm applied to the SP decomposition
tree).  Each task ``F`` owns

* an **S-bag** -- tasks whose completed work is *serially before* ``F``'s
  current instruction, and
* a **P-bag** -- tasks whose completed work runs *in parallel* with it,

both kept in one union-find structure.  The rules over a serial
depth-first (fork-first) execution:

* spawn ``F'``: ``S(F') = {F'}``, ``P(F') = {}``;
* ``F'`` returns to ``F``: ``P(F) ∪= S(F') ∪ P(F')``;
* ``sync`` in ``F``: ``S(F) ∪= P(F)``; ``P(F) = {}``.

A conflicting prior accessor races with the current instruction iff its
bag is a P-bag.  Shadow state per location: one reader id + one writer
id -- Θ(1), like this paper's detector, but **only sound for SP task
graphs**: drive it with :func:`repro.forkjoin.spawn_sync.cilk` programs.
In our event stream, a child's halt is its return (serial fork-first),
and each join event of the sync sequence performs the sync rule (legal
because the spawn-sync sugar emits sync joins back-to-back, with no
memory operations in between).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.core.unionfind import IntUnionFind
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["SPBagsDetector"]


def _cell_entries(cell: List[Optional[int]]) -> int:
    return (cell[0] is not None) + (cell[1] is not None)


class SPBagsDetector(Detector):
    """Feng-Leiserson SP-bags over the fork-join event stream."""

    name = "spbags"

    def __init__(self) -> None:
        super().__init__()
        self._uf = IntUnionFind()
        #: label -> True when that set is currently a P-bag
        self._is_p: List[bool] = []
        #: current S-bag label of each task (its own id initially)
        self._s_label: List[int] = []
        #: current P-bag label of each task (None = empty P-bag)
        self._p_label: List[Optional[int]] = []
        self._parent: List[int] = []
        #: cells are [reader, writer] task ids
        self.shadow: ShadowMap[List[Optional[int]]] = ShadowMap(_cell_entries)
        self.op_index = 0

    # -- bags -----------------------------------------------------------------

    def _new_task(self) -> int:
        tid = self._uf.make()
        self._is_p.append(False)
        self._s_label.append(tid)
        self._p_label.append(None)
        self._parent.append(-1)
        return tid

    def on_root(self, root: int) -> None:
        tid = self._new_task()
        if tid != root:
            raise DetectorError("root id mismatch")

    def on_fork(self, parent: int, child: int) -> None:
        self.op_index += 1
        tid = self._new_task()
        if tid != child:
            raise DetectorError("fork id mismatch")
        self._parent[child] = parent

    def on_halt(self, task: int) -> None:
        """The task returns: its bags drain into the parent's P-bag."""
        self.op_index += 1
        parent = self._parent[task]
        if parent < 0:
            return  # root's halt ends the program
        lab = self._s_label[task]
        if self._p_label[task] is not None:
            lab = self._uf.union(lab, self._p_label[task])
        if self._p_label[parent] is not None:
            lab = self._uf.union(self._p_label[parent], lab)
        self._p_label[parent] = lab
        self._is_p[lab] = True

    def on_join(self, joiner: int, joined: int) -> None:
        """A sync join: the joiner's whole P-bag becomes serial."""
        self.op_index += 1
        if self._p_label[joiner] is not None:
            lab = self._uf.union(self._s_label[joiner], self._p_label[joiner])
            self._s_label[joiner] = lab
            self._p_label[joiner] = None
            self._is_p[lab] = False

    def on_step(self, task: int) -> None:
        self.op_index += 1

    def _in_p_bag(self, task: int) -> bool:
        return self._is_p[self._uf.find(task)]

    # -- memory ---------------------------------------------------------------

    def _cell(self, loc: Hashable) -> List[Optional[int]]:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = [None, None]
            self.shadow.put(loc, cell)
        return cell

    def _report(self, loc, task, kind, prior_kind, prior_repr, label):
        self.races.append(
            RaceReport(
                loc=loc,
                task=task,
                kind=kind,
                prior_kind=prior_kind,
                prior_repr=prior_repr,
                op_index=self.op_index,
                label=label,
            )
        )

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        cell = self._cell(loc)
        reader, writer = cell
        if writer is not None and self._in_p_bag(writer):
            self._report(
                loc, task, AccessKind.READ, AccessKind.WRITE, writer, label
            )
        # Keep a parallel reader in place (it still wants to catch a
        # future writer); replace a serial one.
        if reader is None or not self._in_p_bag(reader):
            cell[0] = task
            self.shadow.touch(loc)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        cell = self._cell(loc)
        reader, writer = cell
        if reader is not None and self._in_p_bag(reader):
            self._report(
                loc, task, AccessKind.WRITE, AccessKind.READ, reader, label
            )
        elif writer is not None and self._in_p_bag(writer):
            self._report(
                loc, task, AccessKind.WRITE, AccessKind.WRITE, writer, label
            )
        cell[1] = task
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def shadow_peak_per_location(self) -> int:
        return self.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.shadow.total_entries()

    def metadata_entries(self) -> int:
        # parent + s_label + p_label + is_p + union-find node (2) per task
        return 6 * len(self._s_label)
