"""Dense (numpy) vector clocks -- the textbook Θ(n) implementation.

The sparse-dict detector in :mod:`repro.detectors.vector_clock` only
materialises nonzero clock entries, which softens the asymptotic cost
the paper's Introduction describes.  This variant is the classic dense
implementation: every clock is a length-``capacity`` integer vector
(numpy ``int64``), forks copy the parent's whole vector, joins take an
elementwise maximum, and shadow cells are full vectors too.

It answers the same verdicts (agreement is tested) but exposes the real
costs: **O(n) work per fork/join** and **n words per location** from the
first access on -- the behaviour "as n gets larger the analyzer can
quickly run out of memory" warns about.  The A3 ablation benchmark
measures sparse vs dense side by side.

Capacity grows by doubling; existing vectors are zero-padded lazily at
comparison time (a vector shorter than ``n`` implicitly ends in zeros).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["DenseVectorClockDetector"]


def _cell_entries(cell: List[Optional[np.ndarray]]) -> int:
    return sum(len(v) for v in cell if v is not None)


class DenseVectorClockDetector(Detector):
    """DJIT+-style detector over dense numpy clock vectors."""

    name = "vectorclock-dense"

    def __init__(self, initial_capacity: int = 4) -> None:
        super().__init__()
        self._capacity = max(1, initial_capacity)
        self._clocks: Dict[int, np.ndarray] = {}
        #: cells are [read_vector, write_vector] (or None until touched)
        self.shadow: ShadowMap[List[Optional[np.ndarray]]] = ShadowMap(
            _cell_entries
        )
        self.op_index = 0
        #: numpy elements copied by fork/join clock maintenance
        self.elements_copied = 0

    # -- capacity management -------------------------------------------------

    def _fresh(self) -> np.ndarray:
        return np.zeros(self._capacity, dtype=np.int64)

    def _widen(self, vec: np.ndarray) -> np.ndarray:
        if len(vec) >= self._capacity:
            return vec
        out = np.zeros(self._capacity, dtype=np.int64)
        out[: len(vec)] = vec
        return out

    def _ensure_capacity(self, tid: int) -> None:
        while tid >= self._capacity:
            self._capacity *= 2

    # -- lifecycle ----------------------------------------------------------

    def on_root(self, root: int) -> None:
        self._clocks[root] = self._fresh()
        self._clocks[root][root] = 1

    def on_fork(self, parent: int, child: int) -> None:
        self.op_index += 1
        pc = self._clock(parent)
        self._ensure_capacity(child)
        pc = self._clocks[parent] = self._widen(pc)
        cc = pc.copy()  # the O(n) fork copy
        self.elements_copied += len(cc)
        cc[child] = 1
        self._clocks[child] = cc
        pc[parent] += 1

    def on_join(self, joiner: int, joined: int) -> None:
        self.op_index += 1
        jc = self._clock(joiner)
        dc = self._clocks.pop(joined, None)
        if dc is None:
            raise DetectorError(f"join of unknown/already-joined {joined}")
        n = max(len(jc), len(dc))
        jc, dc = self._widen(jc), self._widen(dc)
        np.maximum(jc[:n], dc[:n], out=jc[:n])  # the O(n) join max
        self.elements_copied += n
        jc[joiner] += 1
        self._clocks[joiner] = jc

    def on_halt(self, task: int) -> None:
        self.op_index += 1

    def on_step(self, task: int) -> None:
        self.op_index += 1

    def _clock(self, t: int) -> np.ndarray:
        try:
            return self._clocks[t]
        except KeyError:
            raise DetectorError(f"unknown task {t}") from None

    # -- memory -------------------------------------------------------------

    def _cell(self, loc: Hashable) -> List[Optional[np.ndarray]]:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = [None, None]
            self.shadow.put(loc, cell)
        return cell

    def _first_uncovered(
        self, vec: Optional[np.ndarray], clock: np.ndarray
    ) -> Optional[int]:
        if vec is None:
            return None
        n = min(len(vec), len(clock))
        bad = np.nonzero(vec[:n] > clock[:n])[0]
        if bad.size:
            return int(bad[0])
        if len(vec) > n:
            extra = np.nonzero(vec[n:])[0]
            if extra.size:
                return int(extra[0]) + n
        return None

    def _report(self, loc, task, kind, prior_kind, prior_repr, label):
        self.races.append(
            RaceReport(
                loc=loc,
                task=task,
                kind=kind,
                prior_kind=prior_kind,
                prior_repr=prior_repr,
                op_index=self.op_index,
                label=label,
            )
        )

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        clock = self._clock(task)
        cell = self._cell(loc)
        bad = self._first_uncovered(cell[1], clock)
        if bad is not None:
            self._report(loc, task, AccessKind.READ, AccessKind.WRITE,
                         bad, label)
        if cell[0] is None or len(cell[0]) <= task:
            cell[0] = self._widen(
                cell[0] if cell[0] is not None else self._fresh()
            )
        cell[0][task] = clock[task]
        self.shadow.touch(loc)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        clock = self._clock(task)
        cell = self._cell(loc)
        bad = self._first_uncovered(cell[0], clock)
        prior = AccessKind.READ
        if bad is None:
            bad = self._first_uncovered(cell[1], clock)
            prior = AccessKind.WRITE
        if bad is not None:
            self._report(loc, task, AccessKind.WRITE, prior, bad, label)
        if cell[1] is None or len(cell[1]) <= task:
            cell[1] = self._widen(
                cell[1] if cell[1] is not None else self._fresh()
            )
        cell[1][task] = clock[task]
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def shadow_peak_per_location(self) -> int:
        return self.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.shadow.total_entries()

    def metadata_entries(self) -> int:
        return sum(len(c) for c in self._clocks.values())
