"""The common detector interface and trivial observers.

A detector is an interpreter observer with race reporting and space
accounting.  The event protocol mirrors the paper's transition alphabet
(Section 5): ``on_root``, ``on_fork``, ``on_step``, ``on_read``,
``on_write``, ``on_join``, ``on_halt``, plus the optional
``on_annotation`` side channel for scope-based baselines.

Space accounting contract (used by experiment T5 / C1 in DESIGN.md):

* :meth:`Detector.shadow_peak_per_location` -- the largest number of
  word-sized entries any single location's shadow cell ever reached;
* :meth:`Detector.shadow_total_entries` -- current total shadow entries
  across locations;
* :meth:`Detector.metadata_entries` -- entries of per-thread /
  per-structure metadata (clocks, bags, union-find arrays).
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, List, Optional

from repro.core.reports import RaceReport

__all__ = ["Detector", "NullObserver", "EventTracer"]


class Detector(abc.ABC):
    """Abstract base for online race detectors."""

    #: short name used in benchmark tables
    name: str = "abstract"

    def __init__(self) -> None:
        self.races: List[RaceReport] = []

    # -- lifecycle ----------------------------------------------------------

    @abc.abstractmethod
    def on_root(self, root: int) -> None:
        """The initial task ``root`` starts (always id 0)."""

    @abc.abstractmethod
    def on_fork(self, parent: int, child: int) -> None:
        """``parent`` forked ``child`` (dense ids, creation order)."""

    @abc.abstractmethod
    def on_join(self, joiner: int, joined: int) -> None:
        """``joiner`` joined the halted task ``joined``."""

    @abc.abstractmethod
    def on_halt(self, task: int) -> None:
        """``task`` terminated."""

    def on_step(self, task: int) -> None:
        """``task`` performed a local step (default: ignore)."""

    # -- memory -------------------------------------------------------------

    @abc.abstractmethod
    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        """``task`` read ``loc``."""

    @abc.abstractmethod
    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        """``task`` wrote ``loc``."""

    def on_annotation(self, task: int, tag: str, data: Any = None) -> None:
        """Optional scope/side-channel marker (default: ignore)."""

    # -- results / accounting --------------------------------------------------

    @property
    def race_count(self) -> int:
        return len(self.races)

    def found_race(self) -> bool:
        """Whether at least one race was flagged."""
        return bool(self.races)

    @abc.abstractmethod
    def shadow_peak_per_location(self) -> int:
        """Peak word entries any single location's shadow cell used."""

    @abc.abstractmethod
    def shadow_total_entries(self) -> int:
        """Current total shadow entries across all locations."""

    @abc.abstractmethod
    def metadata_entries(self) -> int:
        """Word entries of non-shadow metadata (clocks, bags, ...)."""


class NullObserver:
    """An observer that does nothing -- measures pure interpreter cost."""

    name = "none"

    def on_root(self, root: int) -> None:
        pass

    def on_fork(self, parent: int, child: int) -> None:
        pass

    def on_join(self, joiner: int, joined: int) -> None:
        pass

    def on_halt(self, task: int) -> None:
        pass

    def on_step(self, task: int) -> None:
        pass

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        pass

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        pass


class EventTracer(NullObserver):
    """Records a human-readable trace of the event stream (debugging)."""

    name = "tracer"

    def __init__(self) -> None:
        self.trace: List[str] = []

    def on_root(self, root: int) -> None:
        self.trace.append(f"root {root}")

    def on_fork(self, parent: int, child: int) -> None:
        self.trace.append(f"fork {parent}->{child}")

    def on_join(self, joiner: int, joined: int) -> None:
        self.trace.append(f"join {joiner}<-{joined}")

    def on_halt(self, task: int) -> None:
        self.trace.append(f"halt {task}")

    def on_step(self, task: int) -> None:
        self.trace.append(f"step {task}")

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.trace.append(f"read {task} {loc!r}")

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.trace.append(f"write {task} {loc!r}")

    def on_annotation(self, task: int, tag: str, data: Any = None) -> None:
        self.trace.append(f"@{tag} {task} {data!r}")
