"""FastTrack-style epoch-optimised vector-clock detector ([13]).

FastTrack (Flanagan & Freund, PLDI 2009) observes that most accesses
are totally ordered, so the full write vector can be replaced by a
single *epoch* ``t@c`` (last writer thread and its clock), and the read
vector by an epoch as long as reads stay ordered, inflating back to a
vector only for genuinely concurrent ("read-shared") locations.

This gives O(1) shadow space for well-ordered locations but still Θ(n)
for read-shared ones -- the distinction experiment C1 in DESIGN.md
measures: the paper's 2D detector keeps Θ(1) even for read-shared
locations.

The happens-before clocks (fork/join discipline) are identical to
:mod:`repro.detectors.vector_clock`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple, Union

from repro.core.reports import AccessKind, RaceReport
from repro.core.shadow import ShadowMap
from repro.detectors.base import Detector
from repro.errors import DetectorError

__all__ = ["FastTrackDetector"]

Clock = Dict[int, int]
Epoch = Tuple[int, int]  # (thread, clock)


@dataclass
class _Cell:
    """Shadow word: write epoch + adaptive read state."""

    write: Optional[Epoch] = None
    read_epoch: Optional[Epoch] = None
    read_vector: Optional[Clock] = None  # non-None once read-shared

    def entries(self) -> int:
        n = 0
        if self.write is not None:
            n += 1
        if self.read_vector is not None:
            n += len(self.read_vector)
        elif self.read_epoch is not None:
            n += 1
        return n


class FastTrackDetector(Detector):
    """Epoch-optimised happens-before detector (FastTrack rules)."""

    name = "fasttrack"

    def __init__(self) -> None:
        super().__init__()
        self._clocks: Dict[int, Clock] = {}
        self.shadow: ShadowMap[_Cell] = ShadowMap(_Cell.entries)
        self.op_index = 0

    # -- lifecycle (same discipline as the full-vector detector) -----------

    def on_root(self, root: int) -> None:
        self._clocks[root] = {root: 1}

    def on_fork(self, parent: int, child: int) -> None:
        self.op_index += 1
        pc = self._clock(parent)
        cc = dict(pc)
        cc[child] = 1
        self._clocks[child] = cc
        pc[parent] += 1

    def on_join(self, joiner: int, joined: int) -> None:
        self.op_index += 1
        jc = self._clock(joiner)
        dc = self._clocks.pop(joined, None)
        if dc is None:
            raise DetectorError(f"join of unknown/already-joined {joined}")
        for u, k in dc.items():
            if jc.get(u, 0) < k:
                jc[u] = k
        jc[joiner] += 1

    def on_halt(self, task: int) -> None:
        self.op_index += 1

    def on_step(self, task: int) -> None:
        self.op_index += 1

    def _clock(self, t: int) -> Clock:
        try:
            return self._clocks[t]
        except KeyError:
            raise DetectorError(f"unknown task {t}") from None

    @staticmethod
    def _covered(epoch: Optional[Epoch], clock: Clock) -> bool:
        if epoch is None:
            return True
        u, k = epoch
        return clock.get(u, 0) >= k

    def _report(self, loc, task, kind, prior_kind, prior_repr, label) -> None:
        self.races.append(
            RaceReport(
                loc=loc,
                task=task,
                kind=kind,
                prior_kind=prior_kind,
                prior_repr=prior_repr,
                op_index=self.op_index,
                label=label,
            )
        )

    def _cell(self, loc: Hashable) -> _Cell:
        cell = self.shadow.get(loc)
        if cell is None:
            cell = _Cell()
            self.shadow.put(loc, cell)
        return cell

    # -- memory (FastTrack state machine) -------------------------------------

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        clock = self._clock(task)
        cell = self._cell(loc)
        epoch: Epoch = (task, clock[task])

        if cell.read_vector is None and cell.read_epoch == epoch:
            return  # [READ SAME EPOCH] fast path

        if not self._covered(cell.write, clock):
            self._report(
                loc, task, AccessKind.READ, AccessKind.WRITE,
                cell.write[0], label,
            )

        if cell.read_vector is not None:
            cell.read_vector[task] = epoch[1]  # [READ SHARED]
        elif cell.read_epoch is None or self._covered(cell.read_epoch, clock):
            cell.read_epoch = epoch  # [READ EXCLUSIVE]
        else:
            # [READ SHARE]: inflate epoch to a vector.
            u, k = cell.read_epoch
            cell.read_vector = {u: k, task: epoch[1]}
            cell.read_epoch = None
        self.shadow.touch(loc)

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.op_index += 1
        clock = self._clock(task)
        cell = self._cell(loc)
        epoch: Epoch = (task, clock[task])

        if cell.write == epoch:
            return  # [WRITE SAME EPOCH]

        if not self._covered(cell.write, clock):
            self._report(
                loc, task, AccessKind.WRITE, AccessKind.WRITE,
                cell.write[0], label,
            )
        if cell.read_vector is not None:
            # [WRITE SHARED]: the whole read vector must be covered.
            for u, k in cell.read_vector.items():
                if clock.get(u, 0) < k:
                    self._report(
                        loc, task, AccessKind.WRITE, AccessKind.READ, u, label
                    )
                    break
            cell.read_vector = None  # collapse back to exclusive
            cell.read_epoch = None
        elif cell.read_epoch is not None and not self._covered(
            cell.read_epoch, clock
        ):
            self._report(
                loc, task, AccessKind.WRITE, AccessKind.READ,
                cell.read_epoch[0], label,
            )
        cell.write = epoch
        self.shadow.touch(loc)

    # -- accounting -----------------------------------------------------------

    def shadow_peak_per_location(self) -> int:
        return self.shadow.peak_entries_per_loc

    def shadow_total_entries(self) -> int:
        return self.shadow.total_entries()

    def metadata_entries(self) -> int:
        return sum(len(c) for c in self._clocks.values())
