"""Exact offline race oracle -- ground truth for every detector.

Reconstructs the operation-level task graph of a recorded execution and
enumerates *all* racing pairs by brute force: two accesses race iff they
touch the same location, at least one writes, and neither reaches the
other.  Quadratic in the number of accesses per location; strictly a
verification tool.

The soundness / precision contracts the paper states for online
detectors (Section 2.3) are expressed here as checkable predicates:

* **sound**: the detector flags at least one race iff the oracle finds
  at least one racing pair;
* **precise up to the first race**: the first detector report must
  correspond to a real racing pair -- specifically, the flagged
  operation really is the second access of some racing pair on that
  location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Sequence, Set, Tuple

from repro.core.reports import AccessKind, RaceReport
from repro.events import Event
from repro.forkjoin.taskgraph import TaskGraph, build_task_graph

__all__ = [
    "RacingPair",
    "exact_races",
    "oracle_race_pairs",
    "detector_is_sound",
    "first_report_is_precise",
]


@dataclass(frozen=True, slots=True)
class RacingPair:
    """A pair of unordered conflicting accesses (oracle output).

    ``first``/``second`` are op-vertex ids in stream order.
    """

    loc: Hashable
    first: int
    first_kind: AccessKind
    second: int
    second_kind: AccessKind


def exact_races(events: Sequence[Event]) -> List[RacingPair]:
    """All racing pairs of a recorded execution, in stream order."""
    tg = build_task_graph(events)
    return exact_races_of_graph(tg)


def exact_races_of_graph(tg: TaskGraph) -> List[RacingPair]:
    """All racing pairs of an already-built task graph."""
    by_loc = {}
    for v, loc, kind in tg.accesses():
        by_loc.setdefault(loc, []).append((v, kind))
    out: List[RacingPair] = []
    poset = tg.poset
    for loc, accs in by_loc.items():
        for i in range(len(accs)):
            v1, k1 = accs[i]
            for j in range(i + 1, len(accs)):
                v2, k2 = accs[j]
                if not k1.conflicts_with(k2):
                    continue
                if not poset.comparable(v1, v2):
                    out.append(RacingPair(loc, v1, k1, v2, k2))
    out.sort(key=lambda r: (r.second, r.first))
    return out


def oracle_race_pairs(events: Sequence[Event]) -> Set[Tuple[Hashable, int, int]]:
    """Racing pairs as a set of ``(loc, first_op, second_op)`` keys."""
    return {(r.loc, r.first, r.second) for r in exact_races(events)}


def detector_is_sound(
    reports: Sequence[RaceReport], pairs: Sequence[RacingPair]
) -> bool:
    """Detector flags something iff a race exists (the paper's guarantee)."""
    return bool(reports) == bool(pairs)


def first_report_is_precise(
    reports: Sequence[RaceReport], pairs: Sequence[RacingPair]
) -> bool:
    """The first report names a real race (precision up to first race).

    Every detector in this repository increments its ``op_index`` once
    per interpreter event, so a report carrying ``op_index = k`` flags
    the event at stream position ``k - 1`` -- which is also the oracle's
    vertex id.  The first report is precise iff some oracle pair has
    exactly that operation as its *second* access (same location).
    Vacuously true when neither side found anything.
    """
    if not reports:
        return not pairs
    if not pairs:
        return False
    first = reports[0]
    flagged = first.op_index - 1
    return any(p.loc == first.loc and p.second == flagged for p in pairs)
