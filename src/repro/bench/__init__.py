"""Benchmark support: per-detector statistics, harness, table printing."""

from repro.bench.metrics import DetectorStats
from repro.bench.harness import measure, compare_detectors, DETECTOR_FACTORIES
from repro.bench.tables import format_table, print_table

__all__ = [
    "DetectorStats",
    "measure",
    "compare_detectors",
    "DETECTOR_FACTORIES",
    "format_table",
    "print_table",
]
