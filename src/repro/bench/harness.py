"""Run workloads under detectors and collect comparable statistics.

The harness owns the one honest way to compare detectors: run the *same*
program body under each detector (and once with no observer at all for
the interpreter baseline), then report space and time side by side.
Program bodies must be replayable -- running them twice must produce the
same event stream -- which all :mod:`repro.workloads` builders guarantee
by owning their RNG state.

Each measured run populates a :class:`~repro.obs.registry.MetricsRegistry`
(a fresh one per run unless the caller passes one in): the run's wall
time and interpreter figures as set-gauges, the detector's live
accounting as pull-gauges.  The returned
:class:`~repro.bench.metrics.DetectorStats` is built *from that
registry*, so a benchmark table and a ``--metrics`` export of the same
run can never disagree.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from repro.bench.metrics import DetectorStats
from repro.detectors.base import Detector
from repro.obs.bind import bind_detector
from repro.obs.registry import MetricsRegistry
from repro.detectors.depa import DePaDetector
from repro.detectors.espbags import ESPBagsDetector
from repro.detectors.fasttrack import FastTrackDetector
from repro.detectors.lattice2d import Lattice2DDetector
from repro.detectors.naive import NaiveDetector
from repro.detectors.offsetspan import OffsetSpanDetector
from repro.detectors.shb import SHBDetector
from repro.detectors.spbags import SPBagsDetector
from repro.detectors.vector_clock import VectorClockDetector
from repro.detectors.vector_clock_dense import DenseVectorClockDetector
from repro.forkjoin.interpreter import run

__all__ = ["DETECTOR_FACTORIES", "measure", "compare_detectors"]

#: name -> zero-argument factory, for CLI and benchmark parametrisation
DETECTOR_FACTORIES: Dict[str, Callable[[], Detector]] = {
    "lattice2d": Lattice2DDetector,
    "depa": DePaDetector,
    "vectorclock": VectorClockDetector,
    "vectorclock-dense": DenseVectorClockDetector,
    "fasttrack": FastTrackDetector,
    "spbags": SPBagsDetector,
    "espbags": ESPBagsDetector,
    "offsetspan": OffsetSpanDetector,
    "shb": SHBDetector,
    "naive": NaiveDetector,
}


def measure(
    body: Callable,
    *args: Any,
    detector: Optional[Detector] = None,
    base_seconds: Optional[float] = None,
    registry: Optional[MetricsRegistry] = None,
) -> DetectorStats:
    """Run ``body`` once under ``detector`` and collect statistics.

    Pass ``detector=None`` for the interpreter-only baseline.  The
    run's numbers land in ``registry`` (fresh per call by default; pass
    one in to accumulate several runs side by side, e.g. for a single
    export) and the returned stats are read back from it.
    """
    if registry is None:
        registry = MetricsRegistry()
    name = detector.name if detector is not None else "none"
    labels = {"detector": name}
    observers = [detector] if detector is not None else []
    start = time.perf_counter()
    ex = run(body, *args, observers=observers)
    elapsed = time.perf_counter() - start
    registry.gauge(
        "run_tasks", "tasks the workload created", labels=labels
    ).set(ex.task_count)
    registry.gauge(
        "run_ops", "interpreter operations executed", labels=labels
    ).set(ex.op_count)
    registry.gauge(
        "run_wall_seconds", "wall-clock seconds of the monitored run",
        labels=labels,
    ).set(elapsed)
    if detector is None:
        return DetectorStats.from_registry(
            registry, "none", base_seconds=elapsed
        )
    bind_detector(registry, detector, labels)
    return DetectorStats.from_registry(
        registry, name, base_seconds=base_seconds
    )


def compare_detectors(
    body: Callable,
    *args: Any,
    detectors: Optional[Sequence[str]] = None,
    include_baseline: bool = True,
) -> List[DetectorStats]:
    """Run the same program under several detectors.

    ``detectors`` is a list of names from :data:`DETECTOR_FACTORIES`
    (defaults to the structure-generic trio lattice2d / vectorclock /
    fasttrack).  When ``include_baseline`` is set the interpreter-only
    run is measured first and used to compute overheads.
    """
    names = list(
        detectors
        if detectors is not None
        else ("lattice2d", "vectorclock", "fasttrack")
    )
    base: Optional[float] = None
    out: List[DetectorStats] = []
    if include_baseline:
        stats = measure(body, *args, detector=None)
        base = stats.wall_seconds
        out.append(stats)
    for name in names:
        det = DETECTOR_FACTORIES[name]()
        out.append(measure(body, *args, detector=det, base_seconds=base))
    return out
