"""Plain-text table rendering for benchmark output.

The benchmark files print the same kind of rows the paper's figures and
theorems describe (who uses how much space, who scales how); keeping the
renderer tiny and dependency-free means the tables show up verbatim in
``pytest -s`` output and in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = ["format_table", "print_table"]


def format_table(
    rows: Sequence[Dict[str, object]], title: str = ""
) -> str:
    """Render dict rows as an aligned text table (insertion-ordered keys)."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {
        c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
        for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        lines.append(
            " | ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns)
        )
    return "\n".join(lines)


def print_table(rows: Sequence[Dict[str, object]], title: str = "") -> None:
    """Print :func:`format_table` output (flush for pytest -s capture)."""
    print("\n" + format_table(rows, title), flush=True)
