"""One-shot experiment report: regenerate the headline tables.

``python -m repro.bench.report [OUT.md]`` re-runs the central space and
time experiments (the ones EXPERIMENTS.md quotes) on the current build
and renders them as markdown.  It is intentionally a subset of the full
benchmark suite -- the quick, deterministic tables a reader wants when
checking the claims on their own machine; run ``pytest benchmarks/ -s``
for everything.
"""

from __future__ import annotations

import sys
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.harness import DETECTOR_FACTORIES
from repro.detectors import Lattice2DDetector
from repro.forkjoin.pipeline import run_pipeline
from repro.lattice.generators import grid_diagram
from repro.lattice.nonseparating import nonseparating_traversal
from repro.workloads.pipelines import clean_pipeline, read_shared_pipeline

__all__ = ["build_report", "main"]


def _md_table(rows: Sequence[Dict[str, object]]) -> str:
    cols: List[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    lines = [
        "| " + " | ".join(str(c) for c in cols) + " |",
        "|" + "|".join("---" for _ in cols) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(str(row.get(c, "")) for c in cols) + " |"
        )
    return "\n".join(lines)


def _theorem5_space() -> List[Dict[str, object]]:
    rows = []
    for n_items, n_stages in [(4, 2), (16, 4), (64, 4), (128, 8)]:
        items, stages = read_shared_pipeline(n_items, n_stages)
        row: Dict[str, object] = {}
        for name in ("lattice2d", "vectorclock", "fasttrack"):
            det = DETECTOR_FACTORIES[name]()
            ex = run_pipeline(items, stages, observers=[det])
            assert det.races == []
            row.setdefault("tasks", ex.task_count)
            row[f"{name} shadow/loc"] = det.shadow_peak_per_location()
        rows.append(row)
    return rows


def _theorem3_time() -> List[Dict[str, object]]:
    import random

    from repro.core.suprema import SupremaWalker

    rows = []
    for side in (10, 32, 100):
        items = nonseparating_traversal(grid_diagram(side, side))
        rng = random.Random(7)

        def once() -> int:
            walker = SupremaWalker(check_preconditions=False)
            visited: List[object] = []
            ops = 0
            for item in items:
                walker.feed(item)
                from repro.events import Loop

                if isinstance(item, Loop):
                    if visited:
                        for _ in range(2):
                            walker.sup(rng.choice(visited), item.vertex)
                            ops += 1
                    visited.append(item.vertex)
            return ops + len(items)

        once()  # warm
        best = float("inf")
        ops = 0
        for _ in range(3):
            start = time.perf_counter()
            ops = once()
            best = min(best, time.perf_counter() - start)
        rows.append(
            {
                "n (vertices)": side * side,
                "m+n (ops)": ops,
                "total ms": round(1e3 * best, 2),
                "us/op": round(1e6 * best / ops, 3),
            }
        )
    return rows


def _detector_throughput() -> List[Dict[str, object]]:
    rows = []
    items, stages = clean_pipeline(64, 4)
    for name in ("lattice2d", "vectorclock", "fasttrack", "naive"):
        det = DETECTOR_FACTORIES[name]()
        start = time.perf_counter()
        ex = run_pipeline(items, stages, observers=[det])
        elapsed = time.perf_counter() - start
        rows.append(
            {
                "detector": name,
                "races": len(det.races),
                "shadow/loc": det.shadow_peak_per_location(),
                "us/op": round(1e6 * elapsed / ex.op_count, 2),
            }
        )
    return rows


def build_report() -> str:
    """Render the quick-check report as a markdown string."""
    parts = [
        "# Regenerated headline tables",
        "",
        "Produced by `python -m repro.bench.report` on this machine; "
        "compare against EXPERIMENTS.md (shapes should match, absolute "
        "times are machine-dependent).",
        "",
        "## Theorem 5 — peak shadow entries per location "
        "(race-free read-shared pipeline)",
        "",
        _md_table(_theorem5_space()),
        "",
        "## Theorem 3 — suprema walk scaling (grids, 2 queries/vertex)",
        "",
        _md_table(_theorem3_time()),
        "",
        "## Detector throughput (clean 64×4 pipeline)",
        "",
        _md_table(_detector_throughput()),
        "",
    ]
    return "\n".join(parts)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point: print the report or write it to the given path."""
    args = list(sys.argv[1:] if argv is None else argv)
    text = build_report()
    if args:
        with open(args[0], "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"report written to {args[0]}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
