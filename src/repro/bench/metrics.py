"""Measured statistics of one detector run.

Since the observability layer landed, :class:`DetectorStats` is a
*view* over a :class:`~repro.obs.registry.MetricsRegistry` snapshot:
the harness binds the detector's live accounting into a registry
(:func:`repro.obs.bind.bind_detector`) and builds the stats row via
:meth:`DetectorStats.from_registry`.  Benchmark tables and metric
exports therefore read the same numbers by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["DetectorStats"]


@dataclass
class DetectorStats:
    """What one (workload, detector) run measured.

    Space figures are in conceptual word entries (see
    :mod:`repro.core.shadow` for why not bytes).
    """

    detector: str
    tasks: int
    ops: int
    races: int
    shadow_peak_per_loc: int
    shadow_total: int
    metadata_entries: int
    locations: int
    wall_seconds: float
    #: interpreter-only baseline for the same workload, when measured
    base_seconds: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_registry(
        cls,
        registry,
        detector: str,
        *,
        base_seconds: Optional[float] = None,
    ) -> "DetectorStats":
        """Build one stats row from a registry the harness populated.

        Expects the gauges written by :func:`repro.bench.harness.measure`
        (``run_tasks`` / ``run_ops`` / ``run_wall_seconds``, labelled by
        detector) plus the ``detector_*`` pull-gauges registered by
        :func:`repro.obs.bind.bind_detector`.  Unbound gauges read as 0,
        matching a detector that never tracked the quantity.
        """
        labels = {"detector": detector}

        def value(name: str) -> float:
            return registry.gauge(name, labels=labels).value

        return cls(
            detector=detector,
            tasks=int(value("run_tasks")),
            ops=int(value("run_ops")),
            races=int(value("detector_races")),
            shadow_peak_per_loc=int(value("detector_shadow_peak_per_location")),
            shadow_total=int(value("detector_shadow_entries")),
            metadata_entries=int(value("detector_metadata_entries")),
            locations=int(value("detector_shadow_locations")),
            wall_seconds=value("run_wall_seconds"),
            base_seconds=base_seconds,
        )

    @property
    def seconds_per_op(self) -> float:
        return self.wall_seconds / self.ops if self.ops else 0.0

    @property
    def overhead(self) -> Optional[float]:
        """Slowdown versus the no-detector run (None when unmeasured)."""
        if self.base_seconds is None or self.base_seconds == 0:
            return None
        return self.wall_seconds / self.base_seconds

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        out = {
            "detector": self.detector,
            "tasks": self.tasks,
            "ops": self.ops,
            "races": self.races,
            "shadow/loc(peak)": self.shadow_peak_per_loc,
            "shadow(total)": self.shadow_total,
            "metadata": self.metadata_entries,
            "us/op": round(1e6 * self.seconds_per_op, 3),
        }
        if self.overhead is not None:
            out["overhead"] = round(self.overhead, 2)
        out.update(self.extra)
        return out
