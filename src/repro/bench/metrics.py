"""Measured statistics of one detector run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["DetectorStats"]


@dataclass
class DetectorStats:
    """What one (workload, detector) run measured.

    Space figures are in conceptual word entries (see
    :mod:`repro.core.shadow` for why not bytes).
    """

    detector: str
    tasks: int
    ops: int
    races: int
    shadow_peak_per_loc: int
    shadow_total: int
    metadata_entries: int
    locations: int
    wall_seconds: float
    #: interpreter-only baseline for the same workload, when measured
    base_seconds: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def seconds_per_op(self) -> float:
        return self.wall_seconds / self.ops if self.ops else 0.0

    @property
    def overhead(self) -> Optional[float]:
        """Slowdown versus the no-detector run (None when unmeasured)."""
        if self.base_seconds is None or self.base_seconds == 0:
            return None
        return self.wall_seconds / self.base_seconds

    def row(self) -> Dict[str, object]:
        """Flat dict for table rendering."""
        out = {
            "detector": self.detector,
            "tasks": self.tasks,
            "ops": self.ops,
            "races": self.races,
            "shadow/loc(peak)": self.shadow_peak_per_loc,
            "shadow(total)": self.shadow_total,
            "metadata": self.metadata_entries,
            "us/op": round(1e6 * self.seconds_per_op, 3),
        }
        if self.overhead is not None:
            out["overhead"] = round(self.overhead, 2)
        out.update(self.extra)
        return out
