"""Dushnik-Miller machinery: realizers, conjugates, dimension-2 tests.

The original definition of two-dimensional orders (Dushnik and Miller
[10], Remark 3 of the paper) is: ``P`` is 2D iff it is the intersection
of two linear orders ``L1 ∩ L2`` -- a *realizer*.  Baker, Fishburn and
Roberts [1] proved this equivalent to having a planar monotone diagram,
which is the form Section 3 consumes.

This module provides both directions:

* :func:`poset_from_realizer` -- build the (cover digraph of the) poset
  ``x ⊑ y  iff  x ≤_{L1} y and x ≤_{L2} y``;
* :func:`realizer_of` -- recover a realizer from a poset of dimension at
  most 2, via a transitive orientation of the incomparability graph
  (Golumbic's implication-class algorithm).  Raises
  :class:`NotATwoDimensionalLattice` when the dimension exceeds 2.

The recovered realizer doubles as a *dominance drawing*: using position
in ``L1`` and ``L2`` as coordinates yields the planar monotone diagram
(see :mod:`repro.lattice.dominance`).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError, NotATwoDimensionalLattice
from repro.lattice.digraph import Digraph
from repro.lattice.poset import Poset

__all__ = [
    "poset_from_realizer",
    "realizer_of",
    "is_two_dimensional",
    "transitive_orientation",
    "is_realizer_of",
]

Vertex = Hashable


def poset_from_realizer(
    l1: Sequence[Vertex], l2: Sequence[Vertex]
) -> Digraph:
    """Cover digraph of the intersection order of two linear orders.

    ``x ⊑ y`` iff ``x`` precedes ``y`` in both sequences.  The result is
    the transitive reduction (Hasse diagram); its reachability equals the
    intersection order.  Both sequences must enumerate the same elements.
    """
    if set(l1) != set(l2) or len(set(l1)) != len(l1) or len(l1) != len(l2):
        raise GraphError("realizer sequences must be permutations of "
                         "the same elements")
    pos2 = {v: i for i, v in enumerate(l2)}
    full = Digraph()
    for v in l1:
        full.add_vertex(v)
    # Arcs of the full intersection order; reduction prunes to covers.
    for i, x in enumerate(l1):
        px = pos2[x]
        for y in l1[i + 1 :]:
            if pos2[y] > px:
                full.add_arc(x, y)
    return full.transitive_reduction()


def is_realizer_of(
    poset: Poset, l1: Sequence[Vertex], l2: Sequence[Vertex]
) -> bool:
    """Check that ``L1 ∩ L2`` equals the poset's order exactly."""
    if set(l1) != set(poset.vertices()) or set(l2) != set(poset.vertices()):
        return False
    pos1 = {v: i for i, v in enumerate(l1)}
    pos2 = {v: i for i, v in enumerate(l2)}
    vs = poset.vertices()
    for i, x in enumerate(vs):
        for y in vs[i + 1 :]:
            meets = pos1[x] < pos1[y] and pos2[x] < pos2[y]
            joins = pos1[y] < pos1[x] and pos2[y] < pos2[x]
            if poset.lt(x, y) != meets or poset.lt(y, x) != joins:
                return False
    return True


def transitive_orientation(
    vertices: Sequence[Vertex], edges: Set[frozenset]
) -> Optional[Dict[Tuple[Vertex, Vertex], bool]]:
    """Transitively orient an undirected graph, or return ``None``.

    Implements Golumbic's G-decomposition: repeatedly seed an unoriented
    edge, close its implication class under the forcing relation

        ``(x, y)`` forces ``(x, c)`` when ``xc`` is an edge but ``yc``
        is not (and symmetrically ``(c, y)`` when ``cy`` is an edge but
        ``cx`` is not),

    remove the class and recurse on the rest.  A class containing both
    ``(a, b)`` and ``(b, a)`` certifies the graph is not a comparability
    graph.  The caller re-verifies transitivity of the result, so this
    routine may be trusted "optimistically".

    Returns a dict containing each edge once, as its chosen direction
    ``(a, b) -> True``.
    """
    index = {v: i for i, v in enumerate(vertices)}

    def ordered_pair(e: frozenset) -> Tuple[Vertex, Vertex]:
        a, b = e
        return (a, b) if index[a] < index[b] else (b, a)

    # Deterministic processing order: sets of frozensets iterate in
    # hash order (randomised per process), which would make the chosen
    # orientation -- hence realizers, diagrams and traversal directions
    # -- vary between runs.  Sort once by vertex position instead.
    edge_list = sorted(edges, key=lambda e: tuple(map(index.get, ordered_pair(e))))

    adj: Dict[Vertex, List[Vertex]] = {v: [] for v in vertices}
    for e in edge_list:
        a, b = ordered_pair(e)
        adj[a].append(b)
        adj[b].append(a)

    remaining: Set[frozenset] = set(edge_list)
    oriented: Dict[Tuple[Vertex, Vertex], bool] = {}

    for seed in edge_list:
        if seed not in remaining:
            continue
        a, b = ordered_pair(seed)
        # BFS the implication class of (a, b) within the remaining graph.
        klass: Dict[frozenset, Tuple[Vertex, Vertex]] = {seed: (a, b)}
        queue = [(a, b)]
        while queue:
            x, y = queue.pop()
            for c in adj[x]:
                if c == y:
                    continue
                exy = frozenset((x, c))
                if exy not in remaining:
                    continue
                if frozenset((y, c)) in remaining:
                    continue
                want = (x, c)
                have = klass.get(exy)
                if have is None:
                    klass[exy] = want
                    queue.append(want)
                elif have != want:
                    return None  # class forces both directions
            for c in adj[y]:
                if c == x:
                    continue
                exy = frozenset((y, c))
                if exy not in remaining:
                    continue
                if frozenset((x, c)) in remaining:
                    continue
                want = (c, y)
                have = klass.get(exy)
                if have is None:
                    klass[exy] = want
                    queue.append(want)
                elif have != want:
                    return None
        for e, d in klass.items():
            oriented[d] = True
            remaining.discard(e)
    return oriented


def _check_orientation_transitive(
    oriented: Dict[Tuple[Vertex, Vertex], bool]
) -> bool:
    succ: Dict[Vertex, List[Vertex]] = {}
    for (a, b) in oriented:
        succ.setdefault(a, []).append(b)
    for (a, b) in oriented:
        for c in succ.get(b, ()):
            if c != a and (a, c) not in oriented:
                return False
    return True


def realizer_of(poset: Poset) -> Tuple[List[Vertex], List[Vertex]]:
    """Compute a realizer ``(L1, L2)`` of a poset of dimension <= 2.

    ``L1`` is a linear extension of ``P ∪ Q`` and ``L2`` of ``P ∪ Q^{-1}``
    for a conjugate order ``Q`` (a transitive orientation of the
    incomparability graph); their intersection is exactly ``P``.  The
    result is verified before being returned.

    Raises :class:`NotATwoDimensionalLattice` when no realizer exists.
    """
    vs = poset.vertices()
    inc = {frozenset(p) for p in poset.incomparable_pairs()}
    oriented = transitive_orientation(vs, inc)
    if oriented is None or not _check_orientation_transitive(oriented):
        raise NotATwoDimensionalLattice(
            "incomparability graph has no transitive orientation: "
            "order dimension exceeds 2"
        )

    def linear_extension(reverse_q: bool) -> List[Vertex]:
        g = Digraph()
        for v in vs:
            g.add_vertex(v)
        for i, x in enumerate(vs):
            for y in vs[i + 1 :]:
                if poset.lt(x, y):
                    g.add_arc(x, y)
                elif poset.lt(y, x):
                    g.add_arc(y, x)
        for (a, b) in oriented:
            if reverse_q:
                a, b = b, a
            g.add_arc(a, b)
        return g.topological_order()

    l1 = linear_extension(False)
    l2 = linear_extension(True)
    if not is_realizer_of(poset, l1, l2):  # pragma: no cover - safety net
        raise NotATwoDimensionalLattice(
            "constructed extensions do not realize the order"
        )
    return l1, l2


def is_two_dimensional(poset: Poset) -> bool:
    """Whether the poset has order dimension at most 2."""
    try:
        realizer_of(poset)
    except NotATwoDimensionalLattice:
        return False
    return True
