"""A minimal directed-graph container with *ordered* adjacency.

Arc order matters here: the planar diagrams of Section 3 come with a
left-to-right order on the arcs entering and leaving each vertex, and the
non-separating traversal follows that order.  Successor and predecessor
lists therefore preserve insertion order, and callers building diagrams
insert arcs left-to-right.

The class is deliberately small -- exactly what the algorithms need --
rather than a general graph library; ``networkx`` is used in the tests as
an independent referee, never inside the library.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError

__all__ = ["Digraph"]

Vertex = Hashable


class Digraph:
    """A simple digraph with insertion-ordered adjacency lists.

    Parallel arcs and self-loops are rejected: the paper's task graphs
    are simple DAGs (loops in traversals are *notation* for vertex
    visits, not graph arcs).
    """

    __slots__ = ("_succ", "_pred")

    def __init__(
        self, arcs: Optional[Iterable[Tuple[Vertex, Vertex]]] = None
    ) -> None:
        self._succ: Dict[Vertex, List[Vertex]] = {}
        self._pred: Dict[Vertex, List[Vertex]] = {}
        if arcs is not None:
            for s, t in arcs:
                self.add_arc(s, t)

    # -- construction -------------------------------------------------------

    def add_vertex(self, v: Vertex) -> None:
        """Add an isolated vertex (idempotent)."""
        if v not in self._succ:
            self._succ[v] = []
            self._pred[v] = []

    def add_arc(self, s: Vertex, t: Vertex) -> None:
        """Add the arc ``(s, t)``; endpoints are created as needed."""
        if s == t:
            raise GraphError(f"self-loop on {s!r}")
        self.add_vertex(s)
        self.add_vertex(t)
        if t in self._succ[s]:
            raise GraphError(f"duplicate arc ({s!r}, {t!r})")
        self._succ[s].append(t)
        self._pred[t].append(s)

    # -- inspection ---------------------------------------------------------

    def __contains__(self, v: Vertex) -> bool:
        return v in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    @property
    def vertex_count(self) -> int:
        return len(self._succ)

    @property
    def arc_count(self) -> int:
        return sum(len(ss) for ss in self._succ.values())

    def vertices(self) -> Iterator[Vertex]:
        """All vertices, in insertion order."""
        return iter(self._succ)

    def arcs(self) -> Iterator[Tuple[Vertex, Vertex]]:
        """All arcs ``(s, t)``, grouped by source in adjacency order."""
        for s, ts in self._succ.items():
            for t in ts:
                yield (s, t)

    def succs(self, v: Vertex) -> List[Vertex]:
        """Successors of ``v`` in insertion (left-to-right) order."""
        return list(self._succ[v])

    def preds(self, v: Vertex) -> List[Vertex]:
        """Predecessors of ``v`` in insertion (left-to-right) order."""
        return list(self._pred[v])

    def out_degree(self, v: Vertex) -> int:
        """Number of outgoing arcs of ``v``."""
        return len(self._succ[v])

    def in_degree(self, v: Vertex) -> int:
        """Number of incoming arcs of ``v``."""
        return len(self._pred[v])

    def has_arc(self, s: Vertex, t: Vertex) -> bool:
        """Whether the arc ``(s, t)`` is present."""
        return s in self._succ and t in self._succ[s]

    def sources(self) -> List[Vertex]:
        """Vertices with no incoming arcs."""
        return [v for v in self._succ if not self._pred[v]]

    def sinks(self) -> List[Vertex]:
        """Vertices with no outgoing arcs."""
        return [v for v, ss in self._succ.items() if not ss]

    # -- algorithms ---------------------------------------------------------

    def topological_order(self) -> List[Vertex]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles.

        Ties are broken by insertion order, so the result is
        deterministic.
        """
        indeg = {v: len(ps) for v, ps in self._pred.items()}
        ready = [v for v in self._succ if indeg[v] == 0]
        out: List[Vertex] = []
        # A FIFO over `ready` keeps insertion-order determinism.
        head = 0
        while head < len(ready):
            v = ready[head]
            head += 1
            out.append(v)
            for t in self._succ[v]:
                indeg[t] -= 1
                if indeg[t] == 0:
                    ready.append(t)
        if len(out) != len(self._succ):
            raise GraphError("digraph has a cycle")
        return out

    def is_acyclic(self) -> bool:
        """Whether the digraph has no directed cycle."""
        try:
            self.topological_order()
        except GraphError:
            return False
        return True

    def reachable_from(self, v: Vertex) -> set:
        """All vertices reachable from ``v`` (including ``v``)."""
        seen = {v}
        stack = [v]
        while stack:
            x = stack.pop()
            for t in self._succ[x]:
                if t not in seen:
                    seen.add(t)
                    stack.append(t)
        return seen

    def transitive_reduction(self) -> "Digraph":
        """The covering (Hasse) digraph of this DAG's reachability order.

        Keeps arc ``(s, t)`` only when no longer path ``s -> ... -> t``
        exists.  Adjacency order of surviving arcs is preserved.
        """
        order = self.topological_order()
        index = {v: i for i, v in enumerate(order)}
        # descendants[i] = bitmask of topo indices reachable from order[i]
        n = len(order)
        desc = [0] * n
        for i in range(n - 1, -1, -1):
            v = order[i]
            mask = 1 << i
            for t in self._succ[v]:
                mask |= desc[index[t]]
            desc[i] = mask
        red = Digraph()
        for v in self._succ:
            red.add_vertex(v)
        for s in self._succ:
            ts = self._succ[s]
            for t in ts:
                # (s, t) is redundant iff some other successor reaches t.
                j = index[t]
                if not any(
                    u != t and (desc[index[u]] >> j) & 1 for u in ts
                ):
                    red.add_arc(s, t)
        return red

    def copy(self) -> "Digraph":
        """An independent copy (same vertices, arcs and adjacency order)."""
        g = Digraph()
        for v in self._succ:
            g.add_vertex(v)
        for s, t in self.arcs():
            g.add_arc(s, t)
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Digraph({self.vertex_count} vertices, {self.arc_count} arcs)"
        )
