"""Constructing (delayed) non-separating traversals from diagrams.

Definition 1: a non-separating traversal visits arcs and vertices of a
planar monotone diagram in an order that is simultaneously topological,
depth-first and left-to-right.  Concretely (and exactly reproducing the
traversal of Figure 4):

* start at the unique source and visit it;
* at a visited vertex, emit its outgoing arcs leftmost-first;
* immediately after emitting the final incoming arc of a vertex, visit
  that vertex and recurse into it (depth-first);
* when an arc's target still has unvisited incoming arcs, keep going --
  the target is visited later, from the emitter of its last incoming arc.

The implementation is iterative (explicit stack) so million-vertex
benchmark lattices do not hit the interpreter recursion limit.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional

from repro.core.traversal import delay_traversal
from repro.errors import GraphError, TraversalError
from repro.events import Arc, Loop, TraversalItem
from repro.lattice.dominance import Diagram
from repro.lattice.poset import Poset

__all__ = ["nonseparating_traversal", "delayed_nonseparating_traversal"]


def nonseparating_traversal(diagram: Diagram) -> List[TraversalItem]:
    """Compute the non-separating traversal of a planar monotone diagram.

    Lattice diagrams have a single source; diagrams of tree-shaped
    semilattices (Remark 2) may have several, which are traversed
    leftmost-first.  Last-arc flags are set inline: the last arc of
    ``v`` is its rightmost outgoing arc.  Raises
    :class:`TraversalError` if some vertex is never reached.
    """
    graph = diagram.graph
    sources = graph.sources()
    if not sources:
        raise GraphError("diagram has no source (cyclic or empty)")
    sources.sort(key=lambda v: diagram.screen(v)[0])
    remaining = {v: graph.in_degree(v) for v in graph.vertices()}
    items: List[TraversalItem] = []
    visited = 0
    for root in sources:
        items.append(Loop(root))
        visited += 1
        # Stack of (vertex, ordered successor list, next index).
        stack: List[List] = [[root, diagram.succs_left_to_right(root), 0]]
        while stack:
            frame = stack[-1]
            v, succs, i = frame
            if i >= len(succs):
                stack.pop()
                continue
            frame[2] += 1
            u = succs[i]
            items.append(Arc(v, u, last=(i == len(succs) - 1)))
            remaining[u] -= 1
            if remaining[u] == 0:
                items.append(Loop(u))
                visited += 1
                stack.append([u, diagram.succs_left_to_right(u), 0])
    if visited != graph.vertex_count:
        raise TraversalError(
            "traversal did not reach every vertex; the diagram is "
            "disconnected or not source-complete"
        )
    return items


def delayed_nonseparating_traversal(
    diagram: Diagram,
    reaches: Optional[Callable[[Hashable, Hashable], bool]] = None,
) -> List[TraversalItem]:
    """The delayed variant (Definition 3) of the diagram's traversal.

    ``reaches(x, t)`` defaults to an oracle built from the diagram's own
    digraph; pass one explicitly to reuse a precomputed
    :class:`~repro.lattice.poset.Poset`.
    """
    if reaches is None:
        reaches = Poset(diagram.graph).leq
    return delay_traversal(nonseparating_traversal(diagram), reaches)
