"""Planar monotone diagrams via dominance drawings.

Baker, Fishburn and Roberts [1] (Remark 3 of the paper): an order has
dimension at most 2 **iff** it has a planar monotonic diagram.  The
constructive direction is the classic *dominance drawing*: given a
realizer ``(L1, L2)``, place every vertex at integer coordinates

    ``(a, b) = (position in L1, position in L2)``

so that ``x ⊑ y`` iff ``a_x <= a_y`` and ``b_x <= b_y``.  Rotating 45°
(screen ``x = b - a``, screen ``y = a + b``) turns coordinate dominance
into "every directed path advances downwards" -- the monotone drawing of
Figure 3.  Left-to-right arc order around a vertex (what the
non-separating traversal follows) is the angular order of the straight
arc segments in this rotated picture.

:class:`Diagram` bundles a cover digraph with such coordinates and
exposes exactly what :mod:`repro.lattice.nonseparating` needs:
``succs_left_to_right`` / ``preds_left_to_right``.  A quadratic
segment-intersection check (:meth:`Diagram.check_planar`) certifies
planarity in tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Sequence, Tuple

from repro.errors import GraphError
from repro.lattice.digraph import Digraph
from repro.lattice.poset import Poset
from repro.lattice.realizer import poset_from_realizer, realizer_of

__all__ = ["Diagram"]

Vertex = Hashable


def _cross(ox: int, oy: int, ax: int, ay: int, bx: int, by: int) -> int:
    """Cross product of (a - o) x (b - o)."""
    return (ax - ox) * (by - oy) - (ay - oy) * (bx - ox)


class Diagram:
    """A planar monotone diagram: cover digraph + dominance coordinates.

    Construct via :meth:`from_realizer` or :meth:`from_poset`; the raw
    constructor accepts explicit dominance coordinates (one integer pair
    per vertex, all first components distinct, all second components
    distinct) and validates monotonicity of the arcs.
    """

    def __init__(self, graph: Digraph, coords: Dict[Vertex, Tuple[int, int]]):
        self.graph = graph
        self.coords = dict(coords)
        for v in graph.vertices():
            if v not in self.coords:
                raise GraphError(f"no coordinates for vertex {v!r}")
        for s, t in graph.arcs():
            sa, sb = self.coords[s]
            ta, tb = self.coords[t]
            if not (sa < ta and sb < tb):
                raise GraphError(
                    f"arc ({s!r}, {t!r}) is not monotone under the given "
                    "dominance coordinates"
                )
        self._l2r_succ: Dict[Vertex, List[Vertex]] = {}
        self._l2r_pred: Dict[Vertex, List[Vertex]] = {}

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_realizer(
        cls, l1: Sequence[Vertex], l2: Sequence[Vertex]
    ) -> "Diagram":
        """Dominance drawing of the intersection order of ``(L1, L2)``."""
        graph = poset_from_realizer(l1, l2)
        pos1 = {v: i for i, v in enumerate(l1)}
        pos2 = {v: i for i, v in enumerate(l2)}
        return cls(graph, {v: (pos1[v], pos2[v]) for v in l1})

    @classmethod
    def from_poset(cls, poset: Poset) -> "Diagram":
        """Diagram of a dimension-<=2 poset (realizer computed first).

        Raises :class:`NotATwoDimensionalLattice` when dimension > 2.
        The cover digraph of the *given* poset is reused so vertex
        identity is preserved.
        """
        l1, l2 = realizer_of(poset)
        graph = poset.graph.transitive_reduction()
        pos1 = {v: i for i, v in enumerate(l1)}
        pos2 = {v: i for i, v in enumerate(l2)}
        return cls(graph, {v: (pos1[v], pos2[v]) for v in l1})

    # -- geometry -------------------------------------------------------------

    def screen(self, v: Vertex) -> Tuple[int, int]:
        """Rotated drawing coordinates ``(x, y)``; down = larger ``y``."""
        a, b = self.coords[v]
        return (b - a, a + b)

    def _angular(self, v: Vertex, neighbours: List[Vertex], down: bool) -> List[Vertex]:
        """Sort arcs at ``v`` by angle, leftmost first.

        For outgoing arcs (``down=True``) all directions have positive
        ``dy``; leftmost = smallest ``dx/dy``, compared exactly with a
        cross product.  Incoming arcs are sorted by the reverse direction.
        """
        vx, vy = self.screen(v)

        def direction(u: Vertex) -> Tuple[int, int]:
            ux, uy = self.screen(u)
            dx, dy = ux - vx, uy - vy
            if not down:
                dx, dy = -dx, -dy
            assert dy > 0, "diagram is not monotone"
            return dx, dy

        import functools

        def cmp(u1: Vertex, u2: Vertex) -> int:
            d1x, d1y = direction(u1)
            d2x, d2y = direction(u2)
            c = d1x * d2y - d1y * d2x
            return -1 if c < 0 else (1 if c > 0 else 0)

        return sorted(neighbours, key=functools.cmp_to_key(cmp))

    def succs_left_to_right(self, v: Vertex) -> List[Vertex]:
        """Successors of ``v``, leftmost arc first."""
        cached = self._l2r_succ.get(v)
        if cached is None:
            cached = self._angular(v, self.graph.succs(v), down=True)
            self._l2r_succ[v] = cached
        return cached

    def preds_left_to_right(self, v: Vertex) -> List[Vertex]:
        """Predecessors of ``v``, leftmost arc first.

        Incoming arcs at ``v`` arrive from above; "leftmost" means the
        arc whose upward direction points furthest left.
        """
        cached = self._l2r_pred.get(v)
        if cached is None:
            preds = self._angular(v, self.graph.preds(v), down=False)
            # Upward directions sorted leftmost-first point *left* when
            # the incoming arc attaches on the left side, so reverse to
            # get the left-to-right order of arc attachment points.
            self._l2r_pred[v] = preds[::-1]
            cached = self._l2r_pred[v]
        return cached

    def leftmost_path_from(self, v: Vertex) -> List[Vertex]:
        """Follow leftmost outgoing arcs until a sink (proof of Lemma 1)."""
        path = [v]
        while self.graph.out_degree(v):
            v = self.succs_left_to_right(v)[0]
            path.append(v)
        return path

    def rightmost_path_from(self, v: Vertex) -> List[Vertex]:
        """Follow rightmost outgoing arcs (these are the last-arcs)."""
        path = [v]
        while self.graph.out_degree(v):
            v = self.succs_left_to_right(v)[-1]
            path.append(v)
        return path

    # -- validation -----------------------------------------------------------

    def check_planar(self) -> None:
        """Verify no two arc segments intersect except at shared endpoints.

        Quadratic in the number of arcs -- a test/debug utility, not used
        on the hot path.  Raises :class:`GraphError` on a crossing.
        """
        segs = [
            (s, t, self.screen(s), self.screen(t))
            for s, t in self.graph.arcs()
        ]
        for i in range(len(segs)):
            s1, t1, p1, q1 = segs[i]
            for j in range(i + 1, len(segs)):
                s2, t2, p2, q2 = segs[j]
                if {s1, t1} & {s2, t2}:
                    continue  # sharing an endpoint is allowed
                if _segments_intersect(p1, q1, p2, q2):
                    raise GraphError(
                        f"arcs ({s1!r},{t1!r}) and ({s2!r},{t2!r}) cross"
                    )

    def is_planar(self) -> bool:
        """Boolean form of :meth:`check_planar`."""
        try:
            self.check_planar()
        except GraphError:
            return False
        return True


def _on_segment(p: Tuple[int, int], q: Tuple[int, int], r: Tuple[int, int]) -> bool:
    """Whether collinear point ``q`` lies on segment ``pr``."""
    return (
        min(p[0], r[0]) <= q[0] <= max(p[0], r[0])
        and min(p[1], r[1]) <= q[1] <= max(p[1], r[1])
    )


def _segments_intersect(
    p1: Tuple[int, int],
    q1: Tuple[int, int],
    p2: Tuple[int, int],
    q2: Tuple[int, int],
) -> bool:
    """Exact integer segment-intersection test (proper or improper)."""
    d1 = _cross(p2[0], p2[1], q2[0], q2[1], p1[0], p1[1])
    d2 = _cross(p2[0], p2[1], q2[0], q2[1], q1[0], q1[1])
    d3 = _cross(p1[0], p1[1], q1[0], q1[1], p2[0], p2[1])
    d4 = _cross(p1[0], p1[1], q1[0], q1[1], q2[0], q2[1])
    if ((d1 > 0) != (d2 > 0)) and ((d3 > 0) != (d4 > 0)) and d1 and d2 and d3 and d4:
        return True
    if d1 == 0 and _on_segment(p2, p1, q2):
        return True
    if d2 == 0 and _on_segment(p2, q1, q2):
        return True
    if d3 == 0 and _on_segment(p1, p2, q1):
        return True
    if d4 == 0 and _on_segment(p1, q2, q1):
        return True
    return False
