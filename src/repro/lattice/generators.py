"""Generators for lattices, grids and witness posets.

These supply the test-suite and the benchmarks with:

* deterministic families with known structure -- chains, diamonds,
  grids (the task graph of a linear pipeline, Section 5), staircase
  sublattices of grids;
* randomised families -- staircase lattices and two-dimensional posets
  drawn from random realizers;
* *negative* witnesses -- the Boolean lattice ``B_3`` (a lattice of
  order dimension 3) and the standard examples ``S_n`` (dimension ``n``),
  which the dimension-2 machinery must reject.

Random generation takes an explicit :class:`random.Random` so every test
and benchmark is reproducible from a seed.
"""

from __future__ import annotations

import random
from itertools import product
from typing import List, Tuple

from repro.errors import WorkloadError
from repro.lattice.digraph import Digraph
from repro.lattice.dominance import Diagram
from repro.lattice.poset import Poset

__all__ = [
    "chain",
    "diamond",
    "grid_digraph",
    "grid_diagram",
    "staircase_digraph",
    "random_staircase",
    "random_two_dim_poset",
    "boolean_lattice",
    "standard_example",
    "figure3_lattice",
    "figure2_lattice",
]


def chain(n: int) -> Digraph:
    """A chain ``0 -> 1 -> ... -> n-1`` (the trivial lattice)."""
    if n < 1:
        raise WorkloadError("chain needs at least one vertex")
    g = Digraph()
    g.add_vertex(0)
    for i in range(n - 1):
        g.add_arc(i, i + 1)
    return g


def diamond() -> Digraph:
    """The four-element diamond: one source, two parallel, one sink."""
    return Digraph([(0, 1), (0, 2), (1, 3), (2, 3)])


def grid_digraph(rows: int, cols: int) -> Digraph:
    """Cover digraph of the product of two chains.

    Vertices are ``(i, j)`` pairs; arcs step down (``i+1``) or right
    (``j+1``).  This is the task-graph shape of a linear pipeline with
    ``rows`` items and ``cols`` stages (Section 5).
    """
    if rows < 1 or cols < 1:
        raise WorkloadError("grid needs positive dimensions")
    g = Digraph()
    g.add_vertex((0, 0))
    for i, j in product(range(rows), range(cols)):
        if i + 1 < rows:
            g.add_arc((i, j), (i + 1, j))
        if j + 1 < cols:
            g.add_arc((i, j), (i, j + 1))
    return g


def grid_diagram(rows: int, cols: int) -> Diagram:
    """The grid with its canonical dominance coordinates.

    Positions in the two lexicographic linear extensions (row-major and
    column-major) realize the grid order directly, so no realizer search
    is needed -- important for large benchmark grids.
    """
    g = grid_digraph(rows, cols)
    coords = {
        (i, j): (i * cols + j, j * rows + i)
        for i, j in product(range(rows), range(cols))
    }
    return Diagram(g, coords)


def staircase_digraph(lo: List[int], hi: List[int]) -> Digraph:
    """Cover digraph of a staircase sublattice of a grid.

    Row ``i`` contains columns ``lo[i]..hi[i]``; both bound sequences
    must be non-decreasing with ``lo[i] <= hi[i]`` and consecutive rows
    overlapping (``lo[i+1] <= hi[i]``), which makes the region closed
    under componentwise meet and join -- a genuine sublattice.  A global
    source/sink is guaranteed by the monotone bounds.
    """
    rows = len(lo)
    if rows != len(hi) or rows == 0:
        raise WorkloadError("lo and hi must be equal-length, non-empty")
    for i in range(rows):
        if lo[i] > hi[i]:
            raise WorkloadError(f"row {i}: lo > hi")
        if i + 1 < rows and (lo[i + 1] < lo[i] or hi[i + 1] < hi[i]):
            raise WorkloadError("bounds must be non-decreasing")
        if i + 1 < rows and lo[i + 1] > hi[i]:
            raise WorkloadError(f"rows {i},{i+1} do not overlap")
    cells = {
        (i, j) for i in range(rows) for j in range(lo[i], hi[i] + 1)
    }
    full = Digraph()
    for c in sorted(cells):
        full.add_vertex(c)
    for (i, j) in sorted(cells):
        for (x, y) in sorted(cells):
            if (x, y) != (i, j) and x >= i and y >= j:
                full.add_arc((i, j), (x, y))
    return full.transitive_reduction()


def random_staircase(
    rows: int, width: int, rng: random.Random
) -> Digraph:
    """A random staircase sublattice with ``rows`` rows, columns < ``width``."""
    lo = [0] * rows
    hi = [0] * rows
    cur_lo = 0
    cur_hi = rng.randrange(width)
    for i in range(rows):
        cur_hi = min(width - 1, cur_hi + rng.randrange(0, 3))
        cur_lo = min(cur_hi, max(cur_lo, cur_lo + rng.randrange(0, 2)))
        if cur_lo > (hi[i - 1] if i else cur_hi):
            cur_lo = hi[i - 1] if i else cur_hi
        lo[i], hi[i] = cur_lo, cur_hi
    return staircase_digraph(lo, hi)


def random_two_dim_poset(n: int, rng: random.Random) -> Digraph:
    """A random 2D *poset* (not necessarily a lattice) of ``n`` elements.

    Drawn as the intersection of the identity order with a uniformly
    random permutation -- the Dushnik-Miller construction itself.
    """
    from repro.lattice.realizer import poset_from_realizer

    l1 = list(range(n))
    l2 = list(range(n))
    rng.shuffle(l2)
    return poset_from_realizer(l1, l2)


def boolean_lattice(k: int) -> Digraph:
    """The Boolean lattice ``B_k`` (subsets of ``{0..k-1}``).

    ``B_3`` is the canonical lattice of order dimension 3 -- used as a
    negative witness for the dimension-2 machinery.  Vertices are
    frozensets.
    """
    g = Digraph()
    subsets = [
        frozenset(c)
        for r in range(k + 1)
        for c in _combinations(range(k), r)
    ]
    for s in subsets:
        g.add_vertex(s)
    for s in subsets:
        for e in range(k):
            if e not in s:
                g.add_arc(s, s | {e})
    return g


def _combinations(pool, r):
    from itertools import combinations

    return combinations(pool, r)


def standard_example(n: int) -> Digraph:
    """Dushnik-Miller standard example ``S_n`` (order dimension ``n``).

    Minimal elements ``('a', i)`` and maximal elements ``('b', j)`` with
    ``('a', i) < ('b', j)`` iff ``i != j``.  Not a lattice; dimension
    ``n`` for ``n >= 2``.
    """
    if n < 2:
        raise WorkloadError("standard example needs n >= 2")
    g = Digraph()
    for i in range(n):
        g.add_vertex(("a", i))
        g.add_vertex(("b", i))
    for i in range(n):
        for j in range(n):
            if i != j:
                g.add_arc(("a", i), ("b", j))
    return g


def figure3_lattice() -> Digraph:
    """The nine-vertex lattice of Figures 3, 4 and 7 of the paper."""
    return Digraph(
        [
            (1, 2), (2, 3), (3, 6), (2, 5), (1, 4), (4, 5),
            (5, 6), (6, 9), (5, 8), (4, 7), (7, 8), (8, 9),
        ]
    )


def figure2_lattice() -> Digraph:
    """The task graph of the fork-join program in Figure 2.

    Vertices (top to bottom in the figure): ``r`` is the initial fork,
    ``A``/``B`` the two reads, ``C``/``D`` the later operations, and
    ``w`` the final join.  ``A ∥ D`` (the race) while ``B ⊏ D``.
    """
    return Digraph(
        [
            ("r", "A"), ("r", "B"),
            ("A", "C"), ("B", "C"), ("B", "D"),
            ("C", "w"), ("D", "w"),
        ]
    )


def figure3_diagram() -> Diagram:
    """Figure 3's lattice with the paper's left-to-right orientation.

    The orientation is pinned so that the non-separating traversal equals
    the caption of Figure 4 verbatim.
    """
    from repro.lattice.realizer import realizer_of

    poset = Poset(figure3_lattice())
    l1, l2 = realizer_of(poset)
    d = Diagram.from_realizer(l1, l2)
    # Pick the mirror orientation whose traversal starts (1,1)(1,2)...
    if d.succs_left_to_right(1) != [2, 4]:
        d = Diagram.from_realizer(l2, l1)
    return d


__all__.append("figure3_diagram")
