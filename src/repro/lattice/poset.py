"""Brute-force poset oracles: reachability, suprema, infima, closures.

A :class:`Poset` wraps a DAG and answers order-theoretic queries by
explicit computation over bitmask-encoded up-sets and down-sets.  It is
the *reference implementation* against which the constant-space
algorithms of :mod:`repro.core` are validated -- correctness first, no
cleverness.  Bitmasks (Python big ints) keep the O(n^2/64)-ish costs
acceptable up to a few thousand vertices, which is ample for tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from repro.errors import GraphError
from repro.lattice.digraph import Digraph

__all__ = ["Poset"]

Vertex = Hashable


class Poset:
    """The reachability order of a DAG, with sup/inf/closure oracles.

    ``x <= y`` means ``y`` is reachable from ``x`` (the paper's
    ``x ⊑ y``).  All queries are answered from precomputed up-set and
    down-set bitmasks indexed by topological position.
    """

    def __init__(self, graph: Digraph) -> None:
        self.graph = graph
        self._order: List[Vertex] = graph.topological_order()
        self._index: Dict[Vertex, int] = {
            v: i for i, v in enumerate(self._order)
        }
        n = len(self._order)
        # up[i]: bitmask of vertices reachable from order[i] (incl. itself)
        up = [0] * n
        for i in range(n - 1, -1, -1):
            mask = 1 << i
            for t in graph.succs(self._order[i]):
                mask |= up[self._index[t]]
            up[i] = mask
        # down[i]: bitmask of vertices that reach order[i] (incl. itself)
        down = [0] * n
        for i in range(n):
            mask = 1 << i
            for s in graph.preds(self._order[i]):
                mask |= down[self._index[s]]
            down[i] = mask
        self._up = up
        self._down = down

    # -- basic order queries --------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, v: Vertex) -> bool:
        return v in self._index

    def vertices(self) -> List[Vertex]:
        """Vertices in topological order."""
        return list(self._order)

    def index(self, v: Vertex) -> int:
        """Topological position of ``v``."""
        return self._index[v]

    def leq(self, x: Vertex, y: Vertex) -> bool:
        """``x ⊑ y``: ``y`` reachable from ``x`` (reflexive)."""
        return bool(self._up[self._index[x]] >> self._index[y] & 1)

    def lt(self, x: Vertex, y: Vertex) -> bool:
        """Strict order ``x ⊏ y``."""
        return x != y and self.leq(x, y)

    def comparable(self, x: Vertex, y: Vertex) -> bool:
        """Whether ``x`` and ``y`` lie on a common directed path."""
        return self.leq(x, y) or self.leq(y, x)

    def up_set(self, x: Vertex) -> FrozenSet[Vertex]:
        """``{y : x ⊑ y}``."""
        return self._unmask(self._up[self._index[x]])

    def down_set(self, x: Vertex) -> FrozenSet[Vertex]:
        """``{y : y ⊑ x}``."""
        return self._unmask(self._down[self._index[x]])

    def _unmask(self, mask: int) -> FrozenSet[Vertex]:
        out = []
        i = 0
        while mask:
            if mask & 1:
                out.append(self._order[i])
            mask >>= 1
            i += 1
        return frozenset(out)

    # -- suprema / infima -------------------------------------------------------

    def _sup_mask(self, mask_bounds: int) -> Optional[int]:
        """Index of the least element of the given upper-bound mask.

        Returns ``None`` when the mask is empty or has no minimum.
        """
        if not mask_bounds:
            return None
        lowest = (mask_bounds & -mask_bounds).bit_length() - 1
        # lowest is the topologically-first upper bound; it is the least
        # element iff every other bound lies above it.
        if mask_bounds & ~self._up[lowest]:
            return None
        return lowest

    def sup(self, x: Vertex, y: Vertex) -> Optional[Vertex]:
        """``sup{x, y}`` or ``None`` when it does not exist."""
        return self.sup_of_set((x, y))

    def sup_of_set(self, xs: Iterable[Vertex]) -> Optional[Vertex]:
        """Least upper bound of a set (``None`` when absent).

        The supremum of the empty set is the poset's minimum, when one
        exists -- the unit of the join operation.
        """
        bounds = (1 << len(self._order)) - 1
        for x in xs:
            bounds &= self._up[self._index[x]]
        i = self._sup_mask(bounds)
        return None if i is None else self._order[i]

    def inf(self, x: Vertex, y: Vertex) -> Optional[Vertex]:
        """``inf{x, y}`` or ``None`` when it does not exist."""
        return self.inf_of_set((x, y))

    def inf_of_set(self, xs: Iterable[Vertex]) -> Optional[Vertex]:
        """Greatest lower bound of a set (``None`` when absent)."""
        bounds = (1 << len(self._order)) - 1
        for x in xs:
            bounds &= self._down[self._index[x]]
        if not bounds:
            return None
        highest = bounds.bit_length() - 1
        if bounds & ~self._down[highest]:
            return None
        return self._order[highest]

    def is_lattice(self) -> bool:
        """Every pair has a supremum and an infimum (O(n^2) pair scan)."""
        n = len(self._order)
        for i in range(n):
            for j in range(i + 1, n):
                both_up = self._up[i] & self._up[j]
                if self._sup_mask(both_up) is None:
                    return False
                both_down = self._down[i] & self._down[j]
                if not both_down:
                    return False
                highest = both_down.bit_length() - 1
                if both_down & ~self._down[highest]:
                    return False
        return True

    def closure(self, xs: Iterable[Vertex]) -> FrozenSet[Vertex]:
        """Smallest superset of ``xs`` closed under pairwise sup and inf.

        This is the "closure" of Section 3 used in the precondition of
        ``Sup`` queries.  Fixed-point iteration; fine at oracle scale.
        """
        cur = set(xs)
        for x in cur:
            if x not in self._index:
                raise GraphError(f"{x!r} not in poset")
        changed = True
        while changed:
            changed = False
            items = list(cur)
            for a in range(len(items)):
                for b in range(a + 1, len(items)):
                    for z in (
                        self.sup(items[a], items[b]),
                        self.inf(items[a], items[b]),
                    ):
                        if z is not None and z not in cur:
                            cur.add(z)
                            changed = True
        return frozenset(cur)

    # -- structure ------------------------------------------------------------

    def bottom(self) -> Optional[Vertex]:
        """The minimum element, if unique."""
        srcs = self.graph.sources()
        return srcs[0] if len(srcs) == 1 else None

    def top(self) -> Optional[Vertex]:
        """The maximum element, if unique."""
        snks = self.graph.sinks()
        return snks[0] if len(snks) == 1 else None

    def covers(self) -> List[Tuple[Vertex, Vertex]]:
        """The covering pairs (arcs of the transitive reduction)."""
        return list(self.graph.transitive_reduction().arcs())

    def incomparable_pairs(self) -> List[Tuple[Vertex, Vertex]]:
        """All unordered incomparable pairs ``(x, y)``, topo-ordered."""
        out = []
        n = len(self._order)
        for i in range(n):
            for j in range(i + 1, n):
                if not (self._up[i] >> j & 1) and not (
                    self._up[j] >> i & 1
                ):
                    out.append((self._order[i], self._order[j]))
        return out
