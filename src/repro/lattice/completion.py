"""Dedekind-MacNeille completion: embedding posets into lattices.

The paper's algorithms operate on two-dimensional *lattices*; arbitrary
2D posets (e.g. the raw intersection of two random linear orders) need
not have pairwise suprema.  The Dedekind-MacNeille completion is the
smallest lattice a poset order-embeds into, and -- crucially for us --
it **preserves order dimension** (a realizer of the poset extends to
one of the completion), so completing a random 2D poset yields a random
2D lattice.  This makes a far more diverse lattice generator than the
structured families (grids, staircases, SP graphs), which the
property-based tests exploit.

Construction (the classic cut construction):

* a *cut* is a pair ``(A, B)`` with ``A = lower(B)`` and
  ``B = upper(A)`` (each the set of lower/upper bounds of the other);
* cuts ordered by inclusion of their ``A`` components form the
  completion; ``x`` embeds as ``(down(x), up(x))``;
* we enumerate cuts as the closures ``lower(upper(S))`` reachable from
  element down-sets, computed over bitmask rows -- fine for the
  generator/test sizes this is meant for (tens of vertices).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional, Tuple

from repro.lattice.digraph import Digraph
from repro.lattice.poset import Poset

__all__ = ["macneille_completion", "random_2d_lattice"]


def macneille_completion(
    poset: Poset,
) -> Tuple[Poset, Dict[Hashable, int]]:
    """The Dedekind-MacNeille completion of ``poset``.

    Returns ``(completion, embedding)`` where the completion's vertices
    are dense integers (cut ids, topologically ordered) and
    ``embedding`` maps each original element to its cut.  The
    completion is a bounded lattice; the embedding preserves order and
    all existing suprema/infima.
    """
    n = len(poset)
    vs = poset.vertices()
    index = {v: i for i, v in enumerate(vs)}
    full = (1 << n) - 1

    up = [0] * n
    down = [0] * n
    for i, v in enumerate(vs):
        for w in poset.up_set(v):
            up[i] |= 1 << index[w]
        for w in poset.down_set(v):
            down[i] |= 1 << index[w]

    def upper(mask: int) -> int:
        out = full
        m = mask
        i = 0
        while m:
            if m & 1:
                out &= up[i]
            m >>= 1
            i += 1
        return out

    def lower(mask: int) -> int:
        out = full
        m = mask
        i = 0
        while m:
            if m & 1:
                out &= down[i]
            m >>= 1
            i += 1
        return out

    def close(mask: int) -> int:
        return lower(upper(mask))

    # Generate all cuts: start from bottom (closure of the empty set)
    # and close under "add one element and re-close".  Every cut is the
    # closure of some subset, and closures form a closure system, so
    # this exhaustive fixed-point enumeration finds all of them.
    cuts = {close(0), full}
    frontier = [close(0), full]
    while frontier:
        cur = frontier.pop()
        for i in range(n):
            if not (cur >> i) & 1:
                nxt = close(cur | (1 << i))
                if nxt not in cuts:
                    cuts.add(nxt)
                    frontier.append(nxt)

    ordered = sorted(cuts, key=lambda m: (bin(m).count("1"), m))
    cut_id = {m: k for k, m in enumerate(ordered)}

    # Cover relations by inclusion: a O(|cuts|^2) scan suffices here.
    g = Digraph()
    for k in range(len(ordered)):
        g.add_vertex(k)
    for a_id, a in enumerate(ordered):
        for b_id, b in enumerate(ordered):
            if a != b and a & b == a:
                # a < b; keep only covers (no c strictly between).
                if not any(
                    c != a and c != b and a & c == a and c & b == c
                    for c in ordered
                ):
                    g.add_arc(a_id, b_id)

    embedding = {v: cut_id[close(1 << index[v])] for v in vs}
    return Poset(g), embedding


def random_2d_lattice(
    n: int, rng: random.Random, max_size: Optional[int] = None
) -> Digraph:
    """A random bounded 2D lattice via completion of a random 2D poset.

    Draws the intersection of the identity order and a random
    permutation on ``n`` elements and completes it.  The completion can
    be larger than ``n``; ``max_size`` (default ``4 * n + 2``) rejects
    and redraws oversized results so test-time stays bounded.
    """
    from repro.lattice.realizer import poset_from_realizer

    limit = max_size if max_size is not None else 4 * n + 2
    while True:
        l2 = list(range(n))
        rng.shuffle(l2)
        base = Poset(poset_from_realizer(list(range(n)), l2))
        completion, _ = macneille_completion(base)
        if len(completion) <= limit:
            return completion.graph
