"""Lattice substrate: digraphs, posets, realizers, diagrams, traversals.

This subpackage implements everything Section 3 assumes as given:

* :mod:`repro.lattice.digraph` -- a minimal ordered-adjacency DAG (S6);
* :mod:`repro.lattice.poset` -- brute-force order oracles: reachability,
  suprema, infima, closures (S6);
* :mod:`repro.lattice.realizer` -- Dushnik-Miller dimension-2 machinery:
  realizers, conjugate orders, transitive orientation (S7);
* :mod:`repro.lattice.dominance` -- planar monotone diagrams via
  dominance drawings (S8);
* :mod:`repro.lattice.nonseparating` -- non-separating traversals from
  diagrams (S9);
* :mod:`repro.lattice.generators` / :mod:`repro.lattice.series_parallel`
  -- graph families for tests and benchmarks (S10).
"""

from repro.lattice.digraph import Digraph
from repro.lattice.poset import Poset
from repro.lattice.realizer import (
    poset_from_realizer,
    realizer_of,
    is_two_dimensional,
)
from repro.lattice.completion import macneille_completion, random_2d_lattice
from repro.lattice.dominance import Diagram
from repro.lattice.nonseparating import (
    delayed_nonseparating_traversal,
    nonseparating_traversal,
)

__all__ = [
    "Digraph",
    "Poset",
    "Diagram",
    "poset_from_realizer",
    "realizer_of",
    "is_two_dimensional",
    "nonseparating_traversal",
    "delayed_nonseparating_traversal",
    "macneille_completion",
    "random_2d_lattice",
]
