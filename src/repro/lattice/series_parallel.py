"""Series-parallel graphs: construction, recognition, decomposition.

Section 2.1 of the paper: an SP graph is a single-source single-sink DAG
that is either a base arc, a series composition ``S(G1, G2)`` (sink of
``G1`` glued to source of ``G2``) or a parallel composition ``P(G1, G2)``
(sources glued, sinks glued).  Spawn-sync and async-finish programs
produce exactly these task graphs, and SP-bags-style detectors are
restricted to them.

Every SP graph is a two-dimensional lattice (planar st-graph), so SP
families double as positive inputs for the 2D machinery, and the SP
decomposition tree drives the SP-bags baseline tests.

The decomposition trees here are tiny algebraic values::

    leaf()                       # a single arc
    series(t1, t2, ...)         # S-node
    parallel(t1, t2, ...)       # P-node

``sp_digraph`` materialises a *simple* DAG (parallel compositions of
bare arcs are subdivided with fresh vertices so no parallel arcs occur).
``is_series_parallel`` recognises SP DAGs by reducing them with the
classic series/parallel contractions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import GraphError, WorkloadError
from repro.lattice.digraph import Digraph

__all__ = [
    "SPLeaf",
    "SPSeries",
    "SPParallel",
    "SPTree",
    "leaf",
    "series",
    "parallel",
    "sp_digraph",
    "random_sp_tree",
    "is_series_parallel",
]


@dataclass(frozen=True)
class SPLeaf:
    """A base arc."""


@dataclass(frozen=True)
class SPSeries:
    """Series composition of two or more SP graphs."""

    children: Tuple["SPTree", ...]


@dataclass(frozen=True)
class SPParallel:
    """Parallel composition of two or more SP graphs."""

    children: Tuple["SPTree", ...]


SPTree = Union[SPLeaf, SPSeries, SPParallel]


def leaf() -> SPLeaf:
    return SPLeaf()


def series(*children: SPTree) -> SPSeries:
    if len(children) < 2:
        raise WorkloadError("series composition needs >= 2 children")
    return SPSeries(tuple(children))


def parallel(*children: SPTree) -> SPParallel:
    if len(children) < 2:
        raise WorkloadError("parallel composition needs >= 2 children")
    return SPParallel(tuple(children))


def leaf_count(tree: SPTree) -> int:
    """Number of base arcs in the decomposition tree."""
    if isinstance(tree, SPLeaf):
        return 1
    return sum(leaf_count(c) for c in tree.children)


__all__.append("leaf_count")


def sp_digraph(tree: SPTree) -> Digraph:
    """Materialise an SP decomposition tree as a simple DAG.

    Vertices are consecutive integers; the source is ``0``.  A parallel
    child that would contribute a bare source->sink arc is subdivided
    with a fresh middle vertex so the result has no parallel arcs.
    """
    g = Digraph()
    counter = [0]

    def fresh() -> int:
        counter[0] += 1
        return counter[0]

    def build(t: SPTree, s: int, k: int, subdivide: bool) -> None:
        if isinstance(t, SPLeaf):
            if subdivide:
                mid = fresh()
                g.add_arc(s, mid)
                g.add_arc(mid, k)
            else:
                g.add_arc(s, k)
        elif isinstance(t, SPSeries):
            cur = s
            for i, c in enumerate(t.children):
                nxt = k if i == len(t.children) - 1 else fresh()
                build(c, cur, nxt, subdivide=False)
                cur = nxt
        elif isinstance(t, SPParallel):
            for c in t.children:
                build(c, s, k, subdivide=True)
        else:  # pragma: no cover - defensive
            raise GraphError(f"not an SP tree node: {t!r}")

    source = 0
    g.add_vertex(source)
    sink = fresh()
    build(tree, source, sink, subdivide=False)
    return g


def random_sp_tree(
    n_leaves: int, rng: random.Random, p_parallel: float = 0.5
) -> SPTree:
    """A uniform-ish random SP decomposition tree with ``n_leaves`` arcs."""
    if n_leaves < 1:
        raise WorkloadError("need at least one leaf")
    if n_leaves == 1:
        return leaf()
    split = rng.randint(1, n_leaves - 1)
    a = random_sp_tree(split, rng, p_parallel)
    b = random_sp_tree(n_leaves - split, rng, p_parallel)
    if rng.random() < p_parallel:
        return parallel(a, b)
    return series(a, b)


def is_series_parallel(graph: Digraph) -> bool:
    """Recognise two-terminal SP DAGs by series/parallel reduction.

    Repeatedly (a) merges parallel arcs and (b) contracts interior
    vertices with in-degree 1 and out-degree 1.  The graph is SP iff the
    process terminates with the single arc source->sink.  Runs on a
    multigraph copy; the input is untouched.
    """
    sources = graph.sources()
    sinks = graph.sinks()
    if len(sources) != 1 or len(sinks) != 1:
        return False
    s0, t0 = sources[0], sinks[0]
    if graph.vertex_count == 1:
        return True

    # Multigraph as arc multiplicity counters.
    succ: Dict[object, Dict[object, int]] = {
        v: {} for v in graph.vertices()
    }
    pred: Dict[object, Dict[object, int]] = {
        v: {} for v in graph.vertices()
    }
    for a, b in graph.arcs():
        succ[a][b] = succ[a].get(b, 0) + 1
        pred[b][a] = pred[b].get(a, 0) + 1

    # Parallel reduction: collapse multiplicities to 1 (recorded lazily).
    def simplify(v) -> None:
        for u in succ[v]:
            succ[v][u] = 1
            pred[u][v] = 1

    for v in list(succ):
        simplify(v)

    # Series reduction worklist.
    work = [
        v
        for v in succ
        if v not in (s0, t0) and len(succ[v]) == 1 and len(pred[v]) == 1
    ]
    while work:
        v = work.pop()
        if v not in succ or v in (s0, t0):
            continue
        if len(succ[v]) != 1 or len(pred[v]) != 1:
            continue
        (a,) = pred[v]
        (b,) = succ[v]
        if a == b:
            return False  # would create a self-loop; not a DAG anyway
        del succ[v], pred[v]
        del succ[a][v], pred[b][v]
        succ[a][b] = 1  # parallel reduction folded in
        pred[b][a] = 1
        for u in (a, b):
            if (
                u not in (s0, t0)
                and len(succ[u]) == 1
                and len(pred[u]) == 1
            ):
                work.append(u)
    return len(succ) == 2 and succ.get(s0, {}).get(t0) == 1
