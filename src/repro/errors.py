"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still distinguishing structural violations of the paper's model from plain
usage mistakes.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "StructureError",
    "TraversalError",
    "QueryPreconditionError",
    "GraphError",
    "NotATwoDimensionalLattice",
    "ProgramError",
    "DeadTaskError",
    "TraceError",
    "DetectorError",
    "WorkloadError",
    "CheckpointError",
    "ServeError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class StructureError(ReproError):
    """A program violated the structured fork-join discipline of Section 5.

    The paper restricts fork-join so that a task may only join its
    *immediate left neighbour* in the task line ``L . x . R`` (Figure 9).
    Attempting to join any other task, or to join a task that is still
    running, raises this error.
    """


class TraversalError(ReproError):
    """A traversal is not (delayed) non-separating.

    Raised by validity checkers when a supplied traversal fails to be
    topological, depth-first, or left-to-right (Definitions 1 and 3).
    """


class QueryPreconditionError(ReproError):
    """A ``Sup(x, t)`` query violated precondition (1) of Section 3.

    The queried vertex ``x`` must belong to the closure of the traversal
    prefix ending in ``t``; otherwise Theorem 1 does not apply and the
    answer would be meaningless.
    """


class GraphError(ReproError):
    """Malformed graph input (cycles, missing vertices, multi-arcs...)."""


class NotATwoDimensionalLattice(GraphError):
    """The input order is not a two-dimensional lattice.

    Raised when a realizer cannot be constructed (order dimension > 2) or
    when the poset lacks pairwise suprema/infima.
    """


class ProgramError(ReproError):
    """A monitored program is malformed (e.g. yields an unknown effect)."""


class DeadTaskError(ProgramError):
    """An operation was attempted on a task that already halted."""


class TraceError(ProgramError):
    """A trace container is not exactly what it claims to be.

    Raised by the trace readers (:mod:`repro.engine.tracefile`,
    :mod:`repro.compress.container`) on unknown magic, unsupported
    versions, truncation, CRC mismatches, or headers that lie about
    section lengths.  Subclasses :class:`ProgramError` so existing
    ``except ProgramError`` call sites keep catching container
    corruption; new code should catch this type."""


class DetectorError(ReproError):
    """A race detector was driven with an event it cannot accept."""


class WorkloadError(ReproError):
    """A workload generator received inconsistent parameters."""


class CheckpointError(ReproError):
    """A checkpoint could not be written, or failed validation on load.

    Raised by :mod:`repro.engine.snapshot` whenever a checkpoint file is
    not exactly what it claims to be -- bad magic, unsupported version,
    CRC mismatch, truncation, or state that cannot be serialized.  A
    corrupted checkpoint is *never* silently loaded."""


class ServeError(ReproError):
    """A failure in the streaming ingest service (:mod:`repro.serve`)."""


class ProtocolError(ServeError):
    """A wire-protocol violation: bad magic, version mismatch, CRC
    failure, truncated or oversized frames, or a BATCH frame whose
    declared column lengths disagree with its payload size."""
