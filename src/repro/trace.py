"""Recording event streams to disk and replaying them later.

A *trace* is a JSON-lines file, one event per line, with a header line
carrying format metadata.  Traces decouple monitoring from execution:
record an execution once, then replay it through any detector (or a
newer detector version) without re-running the program --

::

    repro-race record prog.py -o run.jsonl
    repro-race replay run.jsonl --detector vectorclock

Locations are serialised with a small tagged encoding that round-trips
the location shapes the library uses (strings, ints, and nested tuples
thereof); anything else is stringified with a warning tag and will
still replay consistently, just under its string name.
"""

from __future__ import annotations

import json
from typing import Any, IO, Iterable, Iterator, List, Union

from repro.errors import ProgramError
from repro.events import (
    Event,
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)

__all__ = [
    "dump_events",
    "load_events",
    "dumps_event",
    "loads_event",
    "encode_location",
    "decode_location",
]

FORMAT = "repro-trace"
VERSION = 1


# -- location encoding --------------------------------------------------------


def _enc_loc(loc: Any) -> Any:
    if loc is None or isinstance(loc, (str, int, float, bool)):
        return loc
    if isinstance(loc, tuple):
        return {"t": [_enc_loc(x) for x in loc]}
    return {"s": str(loc)}


def _dec_loc(obj: Any) -> Any:
    if isinstance(obj, dict):
        if "t" in obj:
            return tuple(_dec_loc(x) for x in obj["t"])
        if "s" in obj:
            return obj["s"]
        raise ProgramError(f"bad location encoding: {obj!r}")
    return obj


#: public aliases -- the compact engine trace format
#: (:mod:`repro.engine.tracefile`) shares this location codec so both
#: formats round-trip the same location shapes.
encode_location = _enc_loc
decode_location = _dec_loc


# -- event encoding -----------------------------------------------------------


def dumps_event(ev: Event) -> str:
    """One event as a compact JSON line (no trailing newline)."""
    if isinstance(ev, ForkEvent):
        obj: dict = {"k": "fork", "p": ev.parent, "c": ev.child}
    elif isinstance(ev, JoinEvent):
        obj = {"k": "join", "j": ev.joiner, "d": ev.joined}
    elif isinstance(ev, HaltEvent):
        obj = {"k": "halt", "t": ev.task}
    elif isinstance(ev, StepEvent):
        obj = {"k": "step", "t": ev.task}
    elif isinstance(ev, ReadEvent):
        obj = {"k": "read", "t": ev.task, "l": _enc_loc(ev.loc)}
    elif isinstance(ev, WriteEvent):
        obj = {"k": "write", "t": ev.task, "l": _enc_loc(ev.loc)}
    else:
        raise ProgramError(f"not an event: {ev!r}")
    if ev.label:
        obj["b"] = ev.label
    return json.dumps(obj, separators=(",", ":"))


def loads_event(line: str) -> Event:
    """Parse one JSON line back into an event."""
    obj = json.loads(line)
    kind = obj.get("k")
    label = obj.get("b", "")
    if kind == "fork":
        return ForkEvent(obj["p"], obj["c"], label)
    if kind == "join":
        return JoinEvent(obj["j"], obj["d"], label)
    if kind == "halt":
        return HaltEvent(obj["t"], label)
    if kind == "step":
        return StepEvent(obj["t"], label)
    if kind == "read":
        return ReadEvent(obj["t"], _dec_loc(obj.get("l")), label)
    if kind == "write":
        return WriteEvent(obj["t"], _dec_loc(obj.get("l")), label)
    raise ProgramError(f"unknown event kind {kind!r}")


# -- file io --------------------------------------------------------------------


def dump_events(events: Iterable[Event], fp: Union[str, IO[str]]) -> int:
    """Write a trace file; returns the number of events written."""
    if isinstance(fp, str):
        with open(fp, "w", encoding="utf-8") as handle:
            return dump_events(events, handle)
    header = {"format": FORMAT, "version": VERSION}
    fp.write(json.dumps(header, separators=(",", ":")) + "\n")
    count = 0
    for ev in events:
        fp.write(dumps_event(ev) + "\n")
        count += 1
    return count


def load_events(fp: Union[str, IO[str]]) -> List[Event]:
    """Read a trace file back into an event list."""
    if isinstance(fp, str):
        with open(fp, "r", encoding="utf-8") as handle:
            return load_events(handle)
    lines = iter(fp)
    try:
        header = json.loads(next(lines))
    except StopIteration:
        raise ProgramError("empty trace file") from None
    if header.get("format") != FORMAT:
        raise ProgramError(
            f"not a {FORMAT} file (header: {header!r})"
        )
    if header.get("version") != VERSION:
        raise ProgramError(
            f"unsupported trace version {header.get('version')!r}"
        )
    return [loads_event(line) for line in lines if line.strip()]
