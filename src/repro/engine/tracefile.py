"""Compact binary trace files: capture once, replay into any detector.

The JSONL format of :mod:`repro.trace` is self-describing but pays JSON
encode/decode per event.  The engine's trace format stores the columnar
batch representation directly, so a 100k-event workload is written and
read back as three bulk array copies plus one small location table.

Layout (all header integers little-endian)::

    offset  size  field
    0       8     magic  b"RPR2TRC\\x01"
    8       1     endianness of the array payload (0=little, 1=big)
    9       3     reserved (zero)
    12      4     version (currently 1)
    16      8     n_events
    24      8     byte length L of the location table
    32      L     location table: UTF-8 JSON list, one entry per
                  interned location id, using the same tagged codec as
                  the JSONL format (:func:`repro.trace.encode_location`)
    32+L    n     opcode column   (u8[n])
    ...     4n    primary column  (i32[n])
    ...     4n    secondary column(i32[n])

The array payload is written native-endian for zero-copy speed; the
flag lets a reader on the other byte order ``byteswap()`` on load.
"""

from __future__ import annotations

import json
import struct
import sys
from array import array
from typing import IO, Tuple, Union

from repro.engine.batch import EventBatch, LocationInterner
from repro.errors import ProgramError
from repro.trace import decode_location, encode_location

__all__ = [
    "MAGIC",
    "VERSION",
    "write_trace",
    "read_trace",
    "record_trace",
    "is_tracefile",
]

MAGIC = b"RPR2TRC\x01"
VERSION = 1

_HEADER = struct.Struct("<8sB3xIQQ")


def write_trace(
    fp: Union[str, IO[bytes]], batch: EventBatch, interner: LocationInterner
) -> int:
    """Write one batch + its location table; returns events written."""
    if isinstance(fp, str):
        with open(fp, "wb") as handle:
            return write_trace(handle, batch, interner)
    table = json.dumps(
        [encode_location(loc) for loc in interner.locations()],
        separators=(",", ":"),
    ).encode("utf-8")
    endian = 0 if sys.byteorder == "little" else 1
    fp.write(_HEADER.pack(MAGIC, endian, VERSION, len(batch), len(table)))
    fp.write(table)
    fp.write(batch.ops.tobytes())
    fp.write(batch.a.tobytes())
    fp.write(batch.b.tobytes())
    return len(batch)


def _bytes_remaining(fp: IO[bytes]) -> Union[int, None]:
    """How many bytes are left on ``fp``, or None when unseekable."""
    try:
        pos = fp.tell()
        end = fp.seek(0, 2)
        fp.seek(pos)
    except (AttributeError, OSError, ValueError):
        return None
    return end - pos


def read_trace(
    fp: Union[str, IO[bytes]]
) -> Tuple[EventBatch, LocationInterner]:
    """Read a trace file back into ``(batch, interner)``.

    Every header field is validated before it sizes an allocation: a
    corrupt or adversarial ``n_events`` / ``table_len`` is rejected
    against the actual bytes remaining on a seekable stream rather
    than handed to ``read()``, and every corruption mode (bad magic,
    bad version, bad endian flag, truncated table or payload, a
    header that lies about lengths) raises :class:`ProgramError`.
    """
    if isinstance(fp, str):
        with open(fp, "rb") as handle:
            return read_trace(handle)
    head = fp.read(_HEADER.size)
    if len(head) < _HEADER.size:
        raise ProgramError("truncated engine trace header")
    magic, endian, version, n_events, table_len = _HEADER.unpack(head)
    if magic != MAGIC:
        raise ProgramError(f"not an engine trace (magic {magic!r})")
    if version != VERSION:
        raise ProgramError(f"unsupported engine trace version {version}")
    if endian not in (0, 1):
        raise ProgramError(f"bad endianness flag {endian} in engine trace")
    ops = array("B")
    av = array("i")
    bv = array("i")
    per_event = ops.itemsize + av.itemsize + bv.itemsize
    remaining = _bytes_remaining(fp)
    if remaining is not None:
        need = table_len + n_events * per_event
        if need > remaining:
            raise ProgramError(
                f"truncated or lying engine trace: header claims {need} "
                f"payload bytes ({n_events} events, {table_len}-byte "
                f"table) but only {remaining} remain"
            )
    raw_table = fp.read(table_len)
    if len(raw_table) != table_len:
        raise ProgramError("truncated engine trace location table")
    try:
        table = json.loads(raw_table.decode("utf-8"))
    except ValueError as exc:
        raise ProgramError(
            f"corrupt engine trace location table: {exc}"
        ) from None
    if not isinstance(table, list):
        raise ProgramError("corrupt engine trace location table: not a list")
    interner = LocationInterner()
    for encoded in table:
        interner.intern(decode_location(encoded))
    if len(interner) != len(table):
        raise ProgramError("duplicate locations in trace table")
    for column in (ops, av, bv):
        want = n_events * column.itemsize
        raw = fp.read(want)
        if len(raw) != want:
            raise ProgramError("truncated engine trace payload")
        column.frombytes(raw)
    mine = 0 if sys.byteorder == "little" else 1
    if endian != mine:
        av.byteswap()
        bv.byteswap()
    return EventBatch(ops, av, bv), interner


def record_trace(body, *args, path: Union[str, IO[bytes]]) -> int:
    """Run ``body`` under a :class:`~repro.engine.batch.BatchBuilder`
    and save the captured batch; returns the number of events."""
    from repro.engine.batch import BatchBuilder
    from repro.forkjoin.interpreter import run

    builder = BatchBuilder()
    run(body, *args, observers=[builder])
    return write_trace(path, builder.batch, builder.interner)


def is_tracefile(path: str) -> bool:
    """Cheap sniff: does ``path`` start with the engine-trace magic?"""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False
