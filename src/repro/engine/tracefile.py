"""Compact binary trace files: capture once, replay into any detector.

The JSONL format of :mod:`repro.trace` is self-describing but pays JSON
encode/decode per event.  The engine's trace format stores the columnar
batch representation directly, so a 100k-event workload is written and
read back as three bulk array copies plus one small location table.

Layout (all header integers little-endian)::

    offset  size  field
    0       8     magic  b"RPR2TRC\\x01"
    8       1     endianness of the array payload (0=little, 1=big)
    9       3     reserved (zero)
    12      4     version (currently 1)
    16      8     n_events
    24      8     byte length L of the location table
    32      L     location table: UTF-8 JSON list, one entry per
                  interned location id, using the same tagged codec as
                  the JSONL format (:func:`repro.trace.encode_location`)
    32+L    n     opcode column   (u8[n])
    ...     4n    primary column  (i32[n])
    ...     4n    secondary column(i32[n])

The array payload is written native-endian for zero-copy speed; the
flag lets a reader on the other byte order ``byteswap()`` on load.

Reading is zero-copy-friendly: :func:`read_trace` ``mmap``\\ s real
files, so each column is materialized with exactly one copy (straight
from the page cache into its ``array``), and a foreign-endian payload
is ``byteswap()``\\ ed *in place* on that single materialized array --
never via an intermediate bytes object.  :func:`map_trace` goes one
step further and hands out a :class:`MappedTrace`: the column
offset/length layout plus zero-copy ``memoryview`` slices over the
mapping, which is what the parallel engine ships to its shard workers
(each worker re-maps the file and reads only the slices it owns,
through the shared page cache, with no parent-side materialization).
"""

from __future__ import annotations

import json
import mmap as _mmap
import struct
import sys
from array import array
from typing import IO, Optional, Tuple, Union

from repro.engine.batch import EventBatch, LocationInterner
from repro.errors import TraceError
from repro.trace import decode_location, encode_location

__all__ = [
    "MAGIC",
    "MAGIC_COMPRESSED",
    "VERSION",
    "write_trace",
    "read_trace",
    "record_trace",
    "is_tracefile",
    "is_compressed_tracefile",
    "map_trace",
    "MappedTrace",
]

MAGIC = b"RPR2TRC\x01"
#: magic of the grammar-compressed container (:mod:`repro.compress`);
#: defined here so the magic-sniffing dispatch below owns both formats
MAGIC_COMPRESSED = b"RPR2TRZ\x01"
VERSION = 1

_HEADER = struct.Struct("<8sB3xIQQ")


def write_trace(
    fp: Union[str, IO[bytes]], batch: EventBatch, interner: LocationInterner
) -> int:
    """Write one batch + its location table; returns events written."""
    if isinstance(fp, str):
        with open(fp, "wb") as handle:
            return write_trace(handle, batch, interner)
    table = _encode_table(interner)
    endian = 0 if sys.byteorder == "little" else 1
    fp.write(_HEADER.pack(MAGIC, endian, VERSION, len(batch), len(table)))
    fp.write(table)
    fp.write(batch.ops.tobytes())
    fp.write(batch.a.tobytes())
    fp.write(batch.b.tobytes())
    return len(batch)


#: column item sizes, fixed by the format (u8 / i32 / i32)
_OPS_SIZE = array("B").itemsize
_INT_SIZE = array("i").itemsize
_PER_EVENT = _OPS_SIZE + 2 * _INT_SIZE


def _native_flag() -> int:
    return 0 if sys.byteorder == "little" else 1


def _bytes_remaining(fp: IO[bytes]) -> Union[int, None]:
    """How many bytes are left on ``fp``, or None when unseekable."""
    try:
        pos = fp.tell()
        end = fp.seek(0, 2)
        fp.seek(pos)
    except (AttributeError, OSError, ValueError):
        return None
    return end - pos


def _check_header(head: bytes) -> Tuple[int, int, int]:
    """Unpack + validate a header; returns (endian, n_events, table_len)."""
    if len(head) < _HEADER.size:
        raise TraceError("truncated engine trace header")
    magic, endian, version, n_events, table_len = _HEADER.unpack(head)
    if magic != MAGIC:
        raise TraceError(f"not an engine trace (magic {magic!r})")
    if version != VERSION:
        raise TraceError(f"unsupported engine trace version {version}")
    if endian not in (0, 1):
        raise TraceError(f"bad endianness flag {endian} in engine trace")
    return endian, n_events, table_len


def _check_bound(n_events: int, table_len: int, remaining: int) -> None:
    need = table_len + n_events * _PER_EVENT
    if need > remaining:
        raise TraceError(
            f"truncated or lying engine trace: header claims {need} "
            f"payload bytes ({n_events} events, {table_len}-byte "
            f"table) but only {remaining} remain"
        )


def _encode_table(interner: LocationInterner) -> bytes:
    return json.dumps(
        [encode_location(loc) for loc in interner.locations()],
        separators=(",", ":"),
    ).encode("utf-8")


def _decode_table(raw_table: bytes) -> LocationInterner:
    try:
        table = json.loads(raw_table.decode("utf-8"))
    except ValueError as exc:
        raise TraceError(
            f"corrupt engine trace location table: {exc}"
        ) from None
    if not isinstance(table, list):
        raise TraceError("corrupt engine trace location table: not a list")
    interner = LocationInterner()
    for encoded in table:
        interner.intern(decode_location(encoded))
    if len(interner) != len(table):
        raise TraceError("duplicate locations in trace table")
    return interner


def _try_mmap(fp: IO[bytes]) -> Optional[Tuple[_mmap.mmap, int]]:
    """Map ``fp`` read-only if it is a real file; returns ``(mmap,
    current position)`` or None when the stream cannot be mapped
    (pipe, BytesIO, zero-length file, ...)."""
    try:
        fileno = fp.fileno()
        pos = fp.tell()
        mm = _mmap.mmap(fileno, 0, access=_mmap.ACCESS_READ)
    except (AttributeError, OSError, ValueError):
        return None
    return mm, pos


def read_trace(
    fp: Union[str, IO[bytes]]
) -> Tuple[EventBatch, LocationInterner]:
    """Read a trace file back into ``(batch, interner)``.

    This is the one magic-sniffing entry point for both container
    formats: raw ``RPR2TRC`` traces are read directly, compressed
    ``RPR2TRZ`` traces (:mod:`repro.compress`) are read and
    decompressed, and anything else raises a typed
    :class:`~repro.errors.TraceError` -- never a ``ValueError`` or a
    bare ``struct`` error.  Callers that want the compressed trace
    *without* decompression use
    :func:`repro.compress.container.read_tracez` directly.

    Every header field is validated before it sizes an allocation: a
    corrupt or adversarial ``n_events`` / ``table_len`` is rejected
    against the actual bytes remaining on a seekable stream rather
    than handed to ``read()``, and every corruption mode (bad magic,
    bad version, bad endian flag, truncated table or payload, a
    header that lies about lengths) raises :class:`TraceError`.

    Real files are ``mmap``\\ ed, so each column is built with a single
    copy out of the page cache and a foreign-endian payload is swapped
    in place on the materialized array.  Unmappable streams (pipes,
    ``BytesIO``) take a ``read()``-based path with the same checks.
    """
    if isinstance(fp, str):
        with open(fp, "rb") as handle:
            return read_trace(handle)
    head = fp.read(len(MAGIC))
    try:
        fp.seek(-len(head), 1)
        consumed = b""
    except (AttributeError, OSError, ValueError):
        # Unseekable stream (pipe, socket): pass the consumed prefix
        # down so the chosen reader stitches its header back together.
        consumed = head
    if head == MAGIC_COMPRESSED:
        from repro.compress.container import read_tracez

        ctrace, interner = read_tracez(fp, head=consumed)
        return ctrace.decompress(), interner
    if len(head) == len(MAGIC) and head != MAGIC:
        raise TraceError(f"not an engine trace (magic {head!r})")
    return _read_trace_raw(fp, consumed)


def _read_trace_raw(
    fp: IO[bytes], head: bytes = b""
) -> Tuple[EventBatch, LocationInterner]:
    """The raw ``RPR2TRC`` read path (``head``: already-consumed
    prefix of an unseekable stream)."""
    mapped = _try_mmap(fp)
    if mapped is None:
        return _read_trace_stream(fp, head)
    mm, base = mapped
    try:
        view = memoryview(mm)
        try:
            endian, n_events, table_len = _check_header(
                bytes(view[base : base + _HEADER.size])
            )
            _check_bound(n_events, table_len, len(mm) - base - _HEADER.size)
            table_off = base + _HEADER.size
            ops_off = table_off + table_len
            a_off = ops_off + n_events * _OPS_SIZE
            b_off = a_off + n_events * _INT_SIZE
            end = b_off + n_events * _INT_SIZE
            interner = _decode_table(
                bytes(view[table_off : table_off + table_len])
            )
            ops = array("B")
            av = array("i")
            bv = array("i")
            # One copy per column: straight from the mapping into the
            # array buffer, no intermediate bytes objects.
            ops.frombytes(view[ops_off:a_off])
            av.frombytes(view[a_off:b_off])
            bv.frombytes(view[b_off:end])
        finally:
            view.release()
        fp.seek(end)
    finally:
        mm.close()
    if endian != _native_flag():
        av.byteswap()
        bv.byteswap()
    return EventBatch(ops, av, bv), interner


def _read_trace_stream(
    fp: IO[bytes], head: bytes = b""
) -> Tuple[EventBatch, LocationInterner]:
    """The ``read()``-based path for streams that cannot be mapped."""
    endian, n_events, table_len = _check_header(
        head + fp.read(_HEADER.size - len(head))
    )
    remaining = _bytes_remaining(fp)
    if remaining is not None:
        _check_bound(n_events, table_len, remaining)
    raw_table = fp.read(table_len)
    if len(raw_table) != table_len:
        raise TraceError("truncated engine trace location table")
    interner = _decode_table(raw_table)
    ops = array("B")
    av = array("i")
    bv = array("i")
    for column in (ops, av, bv):
        want = n_events * column.itemsize
        raw = fp.read(want)
        if len(raw) != want:
            raise TraceError("truncated engine trace payload")
        column.frombytes(raw)
    if endian != _native_flag():
        # In place on the one materialized array -- never via an
        # intermediate swapped copy.
        av.byteswap()
        bv.byteswap()
    return EventBatch(ops, av, bv), interner


class MappedTrace:
    """A trace file mapped read-only, exposing its column layout.

    Instead of materializing arrays, this keeps the file ``mmap``\\ ed
    and hands out zero-copy :func:`memoryview` slices over the raw
    columns.  The parallel engine uses the offset attributes to let
    each shard worker re-map the file itself and read only the event
    range it owns -- through the shared page cache, with nothing
    materialized in the parent.

    Attributes
    ----------
    path:         the mapped file
    n_events:     events in the trace (also ``len(self)``)
    endian:       payload byte-order flag (0=little, 1=big)
    native:       whether the payload matches this host's byte order
    interner:     decoded location table
    ops_offset / a_offset / b_offset:
                  absolute byte offsets of the three columns

    Use as a context manager, or :meth:`close` explicitly; column
    views must be released before closing.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._fp: Optional[IO[bytes]] = open(path, "rb")
        try:
            self._mm: Optional[_mmap.mmap] = _mmap.mmap(
                self._fp.fileno(), 0, access=_mmap.ACCESS_READ
            )
        except ValueError:
            self._fp.close()
            self._fp = None
            self._mm = None
            raise TraceError("truncated engine trace header") from None
        try:
            view = memoryview(self._mm)
            try:
                self.endian, self.n_events, table_len = _check_header(
                    bytes(view[: _HEADER.size])
                )
                _check_bound(
                    self.n_events, table_len, len(self._mm) - _HEADER.size
                )
                self.ops_offset = _HEADER.size + table_len
                self.a_offset = self.ops_offset + self.n_events * _OPS_SIZE
                self.b_offset = self.a_offset + self.n_events * _INT_SIZE
                self.interner = _decode_table(
                    bytes(view[_HEADER.size : self.ops_offset])
                )
            finally:
                view.release()
        except BaseException:
            self.close()
            raise
        self.native = self.endian == _native_flag()

    def __len__(self) -> int:
        return self.n_events

    @property
    def closed(self) -> bool:
        return self._mm is None

    def columns(
        self, start: int = 0, stop: Optional[int] = None
    ) -> Tuple[memoryview, memoryview, memoryview]:
        """Zero-copy views over events ``[start, stop)`` of each column
        (ops, a, b).  Release them before :meth:`close`."""
        if stop is None:
            stop = self.n_events
        if not 0 <= start <= stop <= self.n_events:
            raise TraceError(
                f"bad trace slice [{start}:{stop}) of "
                f"{self.n_events} events"
            )
        if self._mm is None:
            raise TraceError(f"mapped trace {self.path!r} is closed")
        mv = memoryview(self._mm)
        try:
            # Slices take their own buffer on the mmap, so the parent
            # view can be released immediately.
            return (
                mv[self.ops_offset + start : self.ops_offset + stop],
                mv[
                    self.a_offset + start * _INT_SIZE
                    : self.a_offset + stop * _INT_SIZE
                ],
                mv[
                    self.b_offset + start * _INT_SIZE
                    : self.b_offset + stop * _INT_SIZE
                ],
            )
        finally:
            mv.release()

    def batch(
        self, start: int = 0, stop: Optional[int] = None
    ) -> EventBatch:
        """Materialize events ``[start, stop)`` as an
        :class:`EventBatch` (one copy per column, byteswapped in place
        when the payload is foreign-endian)."""
        ops_v, a_v, b_v = self.columns(start, stop)
        try:
            ops = array("B")
            av = array("i")
            bv = array("i")
            ops.frombytes(ops_v)
            av.frombytes(a_v)
            bv.frombytes(b_v)
        finally:
            ops_v.release()
            a_v.release()
            b_v.release()
        if not self.native:
            av.byteswap()
            bv.byteswap()
        return EventBatch(ops, av, bv)

    def close(self) -> None:
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._fp is not None:
            self._fp.close()
            self._fp = None

    def __enter__(self) -> "MappedTrace":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"MappedTrace({self.path!r}, n_events={self.n_events}, "
            f"{state})"
        )


def map_trace(path: str):
    """Map a trace file without materializing its raw columns.

    The same magic-sniffing dispatch as :func:`read_trace`: raw
    ``RPR2TRC`` files yield a :class:`MappedTrace`, compressed
    ``RPR2TRZ`` files a
    :class:`~repro.compress.container.MappedCompressedTrace` (same
    ``n_events`` / ``interner`` / ``batch()`` / context-manager
    surface), and unknown magic raises
    :class:`~repro.errors.TraceError` via the header check."""
    if is_compressed_tracefile(path):
        from repro.compress.container import MappedCompressedTrace

        return MappedCompressedTrace(path)
    return MappedTrace(path)


def record_trace(body, *args, path: Union[str, IO[bytes]]) -> int:
    """Run ``body`` under a :class:`~repro.engine.batch.BatchBuilder`
    and save the captured batch; returns the number of events."""
    from repro.engine.batch import BatchBuilder
    from repro.forkjoin.interpreter import run

    builder = BatchBuilder()
    run(body, *args, observers=[builder])
    return write_trace(path, builder.batch, builder.interner)


def _sniff(path: str) -> bytes:
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC))
    except OSError:
        return b""


def is_tracefile(path: str) -> bool:
    """Cheap sniff: does ``path`` start with either engine-trace magic
    (raw ``RPR2TRC`` or compressed ``RPR2TRZ``)?"""
    return _sniff(path) in (MAGIC, MAGIC_COMPRESSED)


def is_compressed_tracefile(path: str) -> bool:
    """Cheap sniff: is ``path`` a compressed ``RPR2TRZ`` container?"""
    return _sniff(path) == MAGIC_COMPRESSED
