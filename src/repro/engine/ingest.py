"""Batched ingestion: the tight per-batch loop over a detector.

:class:`BatchEngine` drives one detector through an
:class:`~repro.engine.batch.EventBatch`.  Two paths:

* a **generic loop** for any observer-protocol detector: methods
  pre-bound to locals, flat integer opcode dispatch, locations already
  interned to dense ints;
* a **specialised kernel** for :class:`RaceDetector2D` (the common
  case) that inlines the detector's Figure-6 access rules and Figure-8
  union-find directly over the detector's own state: no per-event
  method calls, no per-access shadow accounting (entry counts are
  reconciled once per batch -- cells only ever grow, so the final
  counts and peaks are identical), and the union-find ``find`` unrolled
  into the loop.  The kernel leaves the detector in *exactly* the state
  the per-event calls would -- same races (including ``op_index``),
  same op counters, same shadow accounting -- which
  :mod:`repro.engine.differential` cross-checks on every benchmark run.

:class:`ShardedBatchEngine` partitions the *shadow map* by location id:
shard ``k`` owns locations with ``lid % num_shards == k`` and runs its
own detector instance over the lifecycle stream plus only its own
accesses.  Lifecycle events (fork/join/halt/step) are replicated to
every shard -- they carry the happens-before structure all shards need
-- so sharding costs ``O(shards x lifecycle)`` extra work in exchange
for location ranges that can be processed independently (separate
processes, machines, or simply bounded working sets).  Verdicts are
unaffected: an access only ever interacts with its own location's
history, and every shard sees the full ordering structure.
"""

from __future__ import annotations

from array import array
from dataclasses import replace
from typing import Any, Callable, Iterable, List, Optional

try:  # numpy accelerates the shard split; everything degrades without it
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.core.detector import RaceDetector2D
from repro.core.reports import AccessKind, RaceReport
from repro.detectors.depa import DePaDetector
from repro.detectors.shb import SHBDetector
from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_STEP,
    OP_WRITE,
    EventBatch,
    LocationInterner,
)
from repro.engine.vectorized import ingest_depa
from repro.errors import DetectorError, ProgramError
from repro.obs.phases import get_tracer
from repro.obs.registry import MetricsRegistry, get_registry

__all__ = ["BatchEngine", "ShardedBatchEngine", "BACKENDS"]

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE

#: engine ingest backends selectable by name (``BatchEngine(backend=...)``
#: and the CLI ``--backend`` flag): the paper's union-find detector
#: behind the inlined kernel, or the array-native DePa backend behind
#: the vectorized kernel.
BACKENDS = ("lattice2d", "depa")


def _ingest_generic(det: Any, batch: EventBatch) -> None:
    """Pre-bound dispatch loop for arbitrary observer-protocol detectors."""
    on_fork = det.on_fork
    on_join = det.on_join
    on_halt = det.on_halt
    on_step = det.on_step
    on_read = det.on_read
    on_write = det.on_write
    read_op, write_op = OP_READ, OP_WRITE
    fork_op, join_op, halt_op = OP_FORK, OP_JOIN, OP_HALT
    step_op = OP_STEP
    for op, a, b in zip(batch.ops, batch.a, batch.b):
        if op == read_op:
            on_read(a, b)
        elif op == write_op:
            on_write(a, b)
        elif op == fork_op:
            on_fork(a, b)
        elif op == join_op:
            on_join(a, b)
        elif op == halt_op:
            on_halt(a)
        elif op == step_op:
            on_step(a)
        else:
            # Corrupt or hostile batches (e.g. off the serve wire) must
            # be rejected, not absorbed as step events.
            raise ProgramError(f"unknown opcode {op}")


def _ingest_fast(det: RaceDetector2D, batch: EventBatch) -> None:
    """The inlined :class:`RaceDetector2D` kernel (see module docstring).

    Mirrors ``on_fork/on_join/on_halt/on_step/on_read/on_write`` and the
    ``sup`` query line by line; any behavioural change to the detector
    must be replicated here (the differential harness will catch a
    missed one).

    When the detector's access-epoch cache is enabled (the default),
    the kernel additionally keeps, per location, the encoded
    ``(task, kind)`` of the last *clean* access -- one that reported no
    race and left the relevant supremum at the task itself -- and skips
    the ``Sup`` machinery entirely when the same task repeats the same
    kind of access.  The skip is sound because happens-before is
    monotone (once the tracked history is ordered before a live task it
    stays ordered) and state-preserving because the fold
    ``Sup(t, t) = t`` is the identity for a live task; only the
    union-find ``find``/hop counters (and compressed parent pointers)
    can differ from the per-event run.  Racing repeats are never cached,
    so repeated reports are emitted exactly like the per-event path.
    """
    uf = det._uf
    parent = uf._parent
    rank = uf._rank
    label = uf._label
    compress = uf.path_compression
    by_rank = uf.link_by_rank
    finds = 0
    hops = 0
    unions = 0

    visited = det._visited
    halted = det._halted
    joined_flags = det._joined
    shadow = det.shadow
    cells = shadow._cells
    races = det.races
    op_index = det.op_index
    epoch = det._epoch  # None: same-epoch fast path disabled
    touched: set = set()

    read_op, write_op = OP_READ, OP_WRITE
    fork_op, join_op, halt_op = OP_FORK, OP_JOIN, OP_HALT
    step_op = OP_STEP
    kind_read, kind_write = _READ, _WRITE
    n_threads = len(visited)

    try:
        for op, t, b in zip(batch.ops, batch.a, batch.b):
            if op == read_op or op == write_op:
                if t >= n_threads or t < 0:
                    raise DetectorError(f"unknown thread id {t}")
                if halted[t]:
                    raise DetectorError(f"thread {t} already halted")
                op_index += 1
                visited[t] = True
                cell = cells.get(b)
                if cell is None:
                    # First access to this location: no suprema to query,
                    # the access simply becomes the relevant supremum.
                    if op == read_op:
                        cells[b] = [t, None]
                    else:
                        cells[b] = [None, t]
                    touched.add(b)
                    continue
                key = (t << 1) | (op - read_op)
                if epoch is not None and epoch.get(b) == key:
                    # Same-epoch repeat of a clean access: verdict and
                    # state are provably unchanged (see docstring).
                    continue
                touched.add(b)
                r, w = cell
                if op == read_op:
                    # on_read: check against the write supremum, fold the
                    # read into the read supremum.
                    raced = False
                    if w is not None:
                        finds += 1
                        x = w
                        while parent[x] != x:
                            x = parent[x]
                            hops += 1
                        if compress:
                            i = w
                            while parent[i] != x:
                                parent[i], i = x, parent[i]
                        sup_w = t if visited[label[x]] else label[x]
                        if sup_w != t:
                            races.append(
                                RaceReport(
                                    loc=b, task=t, kind=kind_read,
                                    prior_kind=kind_write, prior_repr=w,
                                    op_index=op_index,
                                )
                            )
                            raced = True
                    if r is None:
                        cell[0] = t
                    else:
                        finds += 1
                        x = r
                        while parent[x] != x:
                            x = parent[x]
                            hops += 1
                        if compress:
                            i = r
                            while parent[i] != x:
                                parent[i], i = x, parent[i]
                        cell[0] = t if visited[label[x]] else label[x]
                    if epoch is not None:
                        epoch[b] = (
                            key if not raced and cell[0] == t else -1
                        )
                else:
                    # on_write: check both suprema, fold the write into
                    # the write supremum.  Mirrors the detector's exact
                    # find sequence (including the repeated sup(w, t) in
                    # check and update) so the union-find op counters
                    # come out identical; the repeat is one hop after
                    # compression.
                    reported = False
                    if r is not None:
                        finds += 1
                        x = r
                        while parent[x] != x:
                            x = parent[x]
                            hops += 1
                        if compress:
                            i = r
                            while parent[i] != x:
                                parent[i], i = x, parent[i]
                        if (t if visited[label[x]] else label[x]) != t:
                            races.append(
                                RaceReport(
                                    loc=b, task=t, kind=kind_write,
                                    prior_kind=kind_read, prior_repr=r,
                                    op_index=op_index,
                                )
                            )
                            reported = True
                    if not reported and w is not None:
                        finds += 1
                        x = w
                        while parent[x] != x:
                            x = parent[x]
                            hops += 1
                        if compress:
                            i = w
                            while parent[i] != x:
                                parent[i], i = x, parent[i]
                        if (t if visited[label[x]] else label[x]) != t:
                            races.append(
                                RaceReport(
                                    loc=b, task=t, kind=kind_write,
                                    prior_kind=kind_write, prior_repr=w,
                                    op_index=op_index,
                                )
                            )
                            reported = True
                    if w is None:
                        cell[1] = t
                    else:
                        finds += 1
                        x = w
                        while parent[x] != x:
                            x = parent[x]
                            hops += 1
                        if compress:
                            i = w
                            while parent[i] != x:
                                parent[i], i = x, parent[i]
                        cell[1] = t if visited[label[x]] else label[x]
                    if epoch is not None:
                        epoch[b] = (
                            key if not reported and cell[1] == t else -1
                        )
            elif op == fork_op:
                if t >= n_threads or t < 0:
                    raise DetectorError(f"unknown thread id {t}")
                if halted[t]:
                    raise DetectorError(f"thread {t} already halted")
                op_index += 1
                visited[t] = True
                tid = n_threads
                parent.append(tid)
                rank.append(0)
                label.append(tid)
                visited.append(False)
                halted.append(False)
                joined_flags.append(False)
                n_threads += 1
                if b != tid:
                    raise DetectorError(
                        f"fork id mismatch: interpreter says {b}, detector "
                        f"allocated {tid}"
                    )
            elif op == join_op:
                if t >= n_threads or t < 0:
                    raise DetectorError(f"unknown thread id {t}")
                if halted[t]:
                    raise DetectorError(f"thread {t} already halted")
                if b >= n_threads or b < 0:
                    raise DetectorError(f"unknown thread id {b}")
                if not halted[b]:
                    raise DetectorError(f"joining running thread {b}")
                if joined_flags[b]:
                    raise DetectorError(f"thread {b} joined twice")
                joined_flags[b] = True
                op_index += 1
                # Union(joiner, joined) under the joiner's set label.
                unions += 1
                rt = t
                while parent[rt] != rt:
                    rt = parent[rt]
                    hops += 1
                if compress:
                    i = t
                    while parent[i] != rt:
                        parent[i], i = rt, parent[i]
                rs = b
                while parent[rs] != rs:
                    rs = parent[rs]
                    hops += 1
                if compress:
                    i = b
                    while parent[i] != rs:
                        parent[i], i = rs, parent[i]
                lab = label[rt]
                if rt != rs:
                    if by_rank:
                        if rank[rt] < rank[rs]:
                            rt, rs = rs, rt
                        elif rank[rt] == rank[rs]:
                            rank[rt] += 1
                    parent[rs] = rt
                    label[rt] = lab
                visited[t] = True
            elif op == halt_op:
                if t >= n_threads or t < 0:
                    raise DetectorError(f"unknown thread id {t}")
                if halted[t]:
                    raise DetectorError(f"thread {t} already halted")
                op_index += 1
                halted[t] = True
                visited[t] = False
            elif op == step_op:
                if t >= n_threads or t < 0:
                    raise DetectorError(f"unknown thread id {t}")
                if halted[t]:
                    raise DetectorError(f"thread {t} already halted")
                op_index += 1
                visited[t] = True
            else:
                raise ProgramError(f"unknown opcode {op}")
    finally:
        # Reconcile the deferred bookkeeping even on error, so partially
        # ingested state stays consistent with the per-event semantics.
        det.op_index = op_index
        uf.find_count += finds
        uf.hop_count += hops
        uf.union_count += unions
        # Shadow accounting: 2D cells only ever gain entries, so the
        # final per-location counts (and thus the peak) match what
        # per-access touch() calls would have accumulated.
        with get_tracer().span("shadow-update"):
            entries = shadow._entries
            peak = shadow.peak_entries_per_loc
            for lid in touched:
                cell = cells[lid]
                n = (cell[0] is not None) + (cell[1] is not None)
                entries[lid] = n
                if n > peak:
                    peak = n
            shadow.peak_entries_per_loc = peak


def _ingest_predict(det: SHBDetector, batch: EventBatch) -> None:
    """The predict-mode ingest path: batch-level validation, then the
    generic loop over the SHB detector.

    The candidate-pair window must never silently absorb rows the
    columnar accounting does not recognise, so the batch's
    ``counts()``/``access_count()`` are reconciled *once, up front*:
    a batch carrying any unknown opcode is rejected whole -- naming the
    first offending row -- before a single event mutates the window.
    (Bad *thread ids* are still per-event conditions and raise
    :class:`~repro.errors.DetectorError` mid-stream at the exact
    ``op_index``, like every other detector.)
    """
    counts = batch.counts()
    accesses = counts.get("read", 0) + counts.get("write", 0)
    if accesses != batch.access_count():
        raise ProgramError(
            f"inconsistent batch accounting: counts() sees {accesses} "
            f"accesses but access_count() reports {batch.access_count()}"
        )
    if counts.get("unknown"):
        for i, op in enumerate(batch.ops):
            if op < OP_FORK or op > OP_WRITE:
                raise ProgramError(
                    f"unknown opcode {op} at batch row {i}; predict mode "
                    "rejects the batch before any row reaches the "
                    "candidate-pair window"
                )
    _ingest_generic(det, batch)


def _ingest_batch(det: Any, batch: EventBatch) -> str:
    """Route a batch to the fastest loop that applies.

    Returns the dispatch path taken (``"kernel"``, ``"vectorized"``,
    ``"predict"`` or ``"generic"``) so callers can count how often each
    loop actually runs.
    """
    if type(det) is RaceDetector2D and not det._literal:
        _ingest_fast(det, batch)
        return "kernel"
    if isinstance(det, DePaDetector):
        return ingest_depa(det, batch)
    if isinstance(det, SHBDetector):
        _ingest_predict(det, batch)
        return "predict"
    _ingest_generic(det, batch)
    return "generic"


_DISPATCH_PATHS = ("kernel", "vectorized", "predict", "generic", "memo")


def _default_detector() -> RaceDetector2D:
    det = RaceDetector2D()
    det.spawn_root()
    return det


def _backend_detector(backend: str) -> Any:
    """A root-announced detector instance for a named engine backend."""
    if backend == "lattice2d":
        return _default_detector()
    if backend == "depa":
        det = DePaDetector()
        det.on_root(0)
        return det
    raise ProgramError(
        f"unknown engine backend {backend!r}; expected one of {BACKENDS}"
    )


class BatchEngine:
    """Feed columnar batches to one detector as fast as Python allows.

    Parameters
    ----------
    detector:
        Any observer-protocol detector (``on_fork``/``on_join``/...).
        Defaults to a fresh :class:`RaceDetector2D` with its root task
        already spawned.  A detector you pass in must already know task
        0 (call ``on_root(0)`` / ``spawn_root`` yourself).  Plain
        :class:`RaceDetector2D` instances (without the Figure-6-literal
        erratum knob) get the inlined kernel,
        :class:`~repro.detectors.depa.DePaDetector` instances get the
        vectorized kernel; everything else gets the generic pre-bound
        loop.
    backend:
        Alternative to ``detector``: a backend name from
        :data:`BACKENDS` (``"lattice2d"``, the default, or ``"depa"``).
        The engine constructs and root-announces the detector itself.
    predict:
        Alternative to both: run the engine in sound race-*prediction*
        mode over a fresh :class:`~repro.detectors.shb.SHBDetector`
        (one report per feasibly-reorderable racing pair rather than
        one per flagged access; see ``docs/PREDICTION.md``).  Mutually
        exclusive with ``detector`` and ``backend``.
    interner:
        The :class:`LocationInterner` the batches were built with; only
        needed to decode locations in :meth:`races`.
    registry:
        The :class:`~repro.obs.registry.MetricsRegistry` to count
        against (events, batches, races, dispatch path; all labelled
        ``engine="batch"``).  Defaults to the process registry; pass
        :data:`~repro.obs.registry.NULL_REGISTRY` to opt out.
    """

    __slots__ = (
        "detector",
        "interner",
        "events_ingested",
        "registry",
        "_memo",
        "_c_events",
        "_c_batches",
        "_c_races",
        "_c_dispatch",
        "_c_memo_hits",
        "_c_memo_misses",
    )

    def __init__(
        self,
        detector: Optional[Any] = None,
        *,
        backend: Optional[str] = None,
        predict: bool = False,
        interner: Optional[LocationInterner] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if detector is not None and backend is not None:
            raise ProgramError(
                "pass either a detector instance or a backend name, not both"
            )
        if predict and (detector is not None or backend is not None):
            raise ProgramError(
                "predict mode constructs its own shb detector; drop the "
                "detector/backend argument or drop predict=True"
            )
        if predict:
            detector = SHBDetector()
            detector.on_root(0)
        if detector is None:
            detector = _backend_detector(backend or "lattice2d")
        self.detector = detector
        self.interner = interner
        self.events_ingested = 0
        reg = registry if registry is not None else get_registry()
        self.registry = reg
        labels = {"engine": "batch"}
        self._c_events = reg.counter(
            "engine_events_total", "events ingested", labels=labels
        )
        self._c_batches = reg.counter(
            "engine_batches_total", "batches ingested", labels=labels
        )
        self._c_races = reg.counter(
            "engine_races_total", "race reports found during ingestion",
            labels=labels,
        )
        self._c_dispatch = {
            path: reg.counter(
                "engine_dispatch_total",
                "batches per dispatch loop",
                labels={**labels, "path": path},
            )
            for path in _DISPATCH_PATHS
        }
        self._memo = None
        self._c_memo_hits = reg.counter(
            "engine_memo_hits_total",
            "compressed blocks replayed from a cached transition",
            labels=labels,
        )
        self._c_memo_misses = reg.counter(
            "engine_memo_misses_total",
            "compressed blocks scanned and recorded by the memo",
            labels=labels,
        )

    def ingest(self, batch: EventBatch) -> int:
        """Process one batch; returns the number of events consumed."""
        det = self.detector
        races_before = len(det.races)
        with get_tracer().span("ingest"):
            with get_tracer().span("dispatch"):
                path = _ingest_batch(det, batch)
        n = len(batch)
        self.events_ingested += n
        self._c_events.inc(n)
        self._c_batches.inc()
        self._c_dispatch[path].inc()
        self._c_races.inc(len(det.races) - races_before)
        return n

    def ingest_all(self, batches: Iterable[EventBatch]) -> int:
        """Process a sequence of batches; returns total events consumed."""
        return sum(self.ingest(batch) for batch in batches)

    def ingest_compressed(self, ctrace: Any) -> int:
        """Process one :class:`~repro.compress.blocks.CompressedTrace`
        *without decompressing it*: repeated blocks replay as cached
        state transitions (see :mod:`repro.compress.memo`).  The memo
        persists across calls, so identical blocks arriving in later
        containers (successive serve CBATCH frames) stay cached.
        Verdicts are exactly those of ingesting the expanded stream;
        returns the number of (expanded) events consumed."""
        from repro.compress.memo import BlockMemo

        memo = self._memo
        if memo is None or memo.detector is not self.detector:
            memo = self._memo = BlockMemo(self.detector)
        det = self.detector
        races_before = len(det.races)
        hits, misses = memo.hits, memo.misses
        with get_tracer().span("ingest"):
            with get_tracer().span("dispatch"):
                n = memo.run(ctrace)
        self.events_ingested += n
        self._c_events.inc(n)
        self._c_batches.inc()
        self._c_dispatch["memo"].inc()
        self._c_memo_hits.inc(memo.hits - hits)
        self._c_memo_misses.inc(memo.misses - misses)
        self._c_races.inc(len(det.races) - races_before)
        return n

    def races(self) -> List[RaceReport]:
        """The detector's reports, with location ids decoded back to the
        original locations when an interner is available."""
        reports = list(self.detector.races)
        if self.interner is None:
            return reports
        location = self.interner.location
        return [replace(r, loc=location(r.loc)) for r in reports]


def split_batch(batch: EventBatch, n_shards: int) -> List[EventBatch]:
    """Partition one batch into ``n_shards`` per-location sub-batches.

    Accesses go to shard ``lid % n_shards``; structural events (fork,
    join, halt -- everything below ``OP_READ``) are replicated to every
    shard so each one sees the full series-parallel skeleton.  Because
    a race is always witnessed at a single location, running each
    sub-batch through an independent detector finds exactly the races
    of the whole batch (the per-location argument of the paper, §3-4).

    The shard-index column is computed once, vectorized, and each
    sub-batch is materialized with bulk ``array`` copies -- no
    per-event Python dispatch.  Falls back to a plain loop for tiny
    batches or when numpy is unavailable.  This is both the in-process
    routing step of :class:`ShardedBatchEngine` and the network-level
    routing step of the :mod:`repro.serve.cluster` gateway.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    if _np is None or len(batch) < 128:
        return _split_batch_py(batch, n_shards)
    ops_np = _np.frombuffer(batch.ops, dtype=_np.uint8)
    a_np = _np.frombuffer(batch.a, dtype=_np.int32)
    b_np = _np.frombuffer(batch.b, dtype=_np.int32)
    # One pass for the routing column: accesses go to lid % K, the
    # structural rest is replicated to every shard.
    structural = ops_np < OP_READ
    shard = b_np % n_shards
    subs: List[EventBatch] = []
    for k in range(n_shards):
        mask = structural | (shard == k)
        subs.append(
            EventBatch(
                array("B", ops_np[mask].tobytes()),
                array("i", a_np[mask].tobytes()),
                array("i", b_np[mask].tobytes()),
            )
        )
    return subs


def _split_batch_py(batch: EventBatch, n_shards: int) -> List[EventBatch]:
    """Per-event fallback split (small batches, no numpy)."""
    subs = [EventBatch() for _ in range(n_shards)]
    appends = [
        (sub.ops.append, sub.a.append, sub.b.append) for sub in subs
    ]
    read_op, write_op = OP_READ, OP_WRITE
    for op, a, b in zip(batch.ops, batch.a, batch.b):
        if op == read_op or op == write_op:
            ap_op, ap_a, ap_b = appends[b % n_shards]
            ap_op(op)
            ap_a(a)
            ap_b(b)
        else:
            for ap_op, ap_a, ap_b in appends:
                ap_op(op)
                ap_a(a)
                ap_b(b)
    return subs


class ShardedBatchEngine:
    """Shadow-map partitioning over independent detector instances.

    See the module docstring for the model.  ``detector_factory`` must
    produce observer-protocol detectors that have *not* seen the root
    yet; the engine announces task 0 to every shard itself.
    Alternatively pass ``backend`` (a name from :data:`BACKENDS`) to let
    the engine pick the factory -- sharding composes with the DePa
    backend unchanged, because every shard still sees the full
    lifecycle stream and hence the same fork-first structure.

    Each incoming batch is split once into per-shard sub-batches
    (lifecycle events replicated, accesses routed by ``lid % shards``)
    and each shard then consumes its sub-batch through the same kernel
    a :class:`BatchEngine` would use -- the split is the only extra
    cost, and it is what a multi-process deployment would ship over a
    queue per shard.
    """

    __slots__ = (
        "num_shards",
        "shards",
        "interner",
        "events_ingested",
        "registry",
        "_c_events",
        "_c_batches",
        "_c_races",
        "_c_dispatch",
        "_c_routed",
        "_c_lifecycle",
    )

    def __init__(
        self,
        num_shards: int,
        *,
        detector_factory: Optional[Callable[[], Any]] = None,
        backend: Optional[str] = None,
        predict: bool = False,
        interner: Optional[LocationInterner] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if num_shards < 1:
            raise ProgramError(f"need at least one shard, got {num_shards}")
        if detector_factory is not None and backend is not None:
            raise ProgramError(
                "pass either a detector factory or a backend name, not both"
            )
        if predict and (detector_factory is not None or backend is not None):
            raise ProgramError(
                "predict mode constructs its own shb detectors; drop the "
                "factory/backend argument or drop predict=True"
            )
        if predict:
            # Sharding composes with prediction unchanged: lifecycle
            # events replicate to every shard, so each shard's vector
            # clocks see the full happens-before structure and its
            # windows cover exactly its own locations.
            detector_factory = SHBDetector
        if detector_factory is None:
            if backend is None:
                factory: Callable[[], Any] = RaceDetector2D
            elif backend == "lattice2d":
                factory = RaceDetector2D
            elif backend == "depa":
                factory = DePaDetector
            else:
                raise ProgramError(
                    f"unknown engine backend {backend!r}; "
                    f"expected one of {BACKENDS}"
                )
        else:
            factory = detector_factory
        self.num_shards = num_shards
        self.shards: List[Any] = [factory() for _ in range(num_shards)]
        for det in self.shards:
            det.on_root(0)
        self.interner = interner
        self.events_ingested = 0
        reg = registry if registry is not None else get_registry()
        self.registry = reg
        labels = {"engine": "sharded"}
        self._c_events = reg.counter(
            "engine_events_total", "events ingested", labels=labels
        )
        self._c_batches = reg.counter(
            "engine_batches_total", "batches ingested", labels=labels
        )
        self._c_races = reg.counter(
            "engine_races_total", "race reports found during ingestion",
            labels=labels,
        )
        self._c_dispatch = {
            path: reg.counter(
                "engine_dispatch_total",
                "per-shard sub-batches per dispatch loop",
                labels={**labels, "path": path},
            )
            for path in _DISPATCH_PATHS
        }
        # The routing counters partition every incoming event exactly
        # once: an access counts against its owner shard, a lifecycle
        # event (which split() replicates to every shard) counts once
        # here.  Their sum is therefore always the ingested length.
        self._c_routed = [
            reg.counter(
                "engine_shard_accesses_total",
                "accesses routed to this shard (lid % num_shards)",
                labels={**labels, "shard": str(k)},
            )
            for k in range(num_shards)
        ]
        self._c_lifecycle = reg.counter(
            "engine_shard_lifecycle_total",
            "lifecycle events replicated to every shard (counted once)",
            labels=labels,
        )

    def shard_of(self, loc_id: int) -> int:
        """Which shard owns interned location ``loc_id``."""
        return loc_id % self.num_shards

    def split(self, batch: EventBatch) -> List[EventBatch]:
        """Partition one batch into per-shard sub-batches (see
        :func:`split_batch` -- the same routine the cluster gateway
        uses to route column slices over the network)."""
        return split_batch(batch, self.num_shards)

    def _split_py(self, batch: EventBatch) -> List[EventBatch]:
        """Per-event fallback split (small batches, no numpy)."""
        return _split_batch_py(batch, self.num_shards)

    def ingest(self, batch: EventBatch) -> int:
        """Route one batch: accesses to their shard, lifecycle to all."""
        tracer = get_tracer()
        races_before = sum(len(det.races) for det in self.shards)
        with tracer.span("ingest"):
            if self.num_shards == 1:
                accesses = batch.access_count()
                self._c_routed[0].inc(accesses)
                self._c_lifecycle.inc(len(batch) - accesses)
                with tracer.span("dispatch"):
                    path = _ingest_batch(self.shards[0], batch)
                self._c_dispatch[path].inc()
            else:
                with tracer.span("split"):
                    subs = self.split(batch)
                lifecycle = len(batch) - batch.access_count()
                self._c_lifecycle.inc(lifecycle)
                for k, (det, sub) in enumerate(zip(self.shards, subs)):
                    self._c_routed[k].inc(len(sub) - lifecycle)
                    with tracer.span("dispatch"):
                        path = _ingest_batch(det, sub)
                    self._c_dispatch[path].inc()
        n = len(batch)
        self.events_ingested += n
        self._c_events.inc(n)
        self._c_batches.inc()
        self._c_races.inc(
            sum(len(det.races) for det in self.shards) - races_before
        )
        return n

    def ingest_all(self, batches: Iterable[EventBatch]) -> int:
        return sum(self.ingest(batch) for batch in batches)

    def ingest_compressed(self, ctrace: Any) -> int:
        """Process one compressed trace block by block.

        Sharding routes accesses by location, so a compressed block's
        single-task structure does not survive the split and per-shard
        memoization would mostly miss; the sharded engine therefore
        walks the rule stream and feeds each block occurrence through
        its ordinary split-and-dispatch path.  Verdicts match the
        expanded stream exactly; returns the expanded event count.
        """
        for bid, rep in ctrace.rules:
            block = ctrace.blocks[bid]
            for _ in range(rep):
                self.ingest(block)
        return ctrace.n_events

    def races(self) -> List[RaceReport]:
        """All shards' reports, merged (decoded when possible).

        Shards process disjoint location sets, so reports never overlap;
        the merge is ordered by shard then detection order.  Note that
        ``op_index`` values are per-shard stream positions, not global
        ones -- compare reports by ``(task, loc, kind)`` across engines.
        """
        out: List[RaceReport] = []
        location = self.interner.location if self.interner else None
        for det in self.shards:
            for r in det.races:
                out.append(
                    r if location is None else replace(r, loc=location(r.loc))
                )
        return out
