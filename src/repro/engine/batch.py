"""Dense columnar event batches -- the engine's wire format.

The per-event API (``RaceDetector2D.on_read(task, loc)`` and friends)
pays full Python dispatch per access: one event object, one isinstance
chain, one tuple/string hash for the location.  At serving scale that
dominates the detector itself.  Following the compressed-trace playbook
(DePa; Kini/Mathur/Viswanathan), the engine instead moves events in
*batches of parallel arrays*:

* ``ops``  -- one opcode byte per event (:data:`OP_FORK` ...);
* ``a``    -- the primary id: forking parent, joiner, or accessing task;
* ``b``    -- the secondary id: forked child, joined task, or the
  *interned* location id of a read/write (``-1`` for halt/step).

Locations are interned once, at batch-build time, by a
:class:`LocationInterner`; after that every shadow-map operation hashes
a small dense ``int`` instead of an arbitrary hashable.  Labels are
deliberately dropped on this path (reports name tasks and locations;
re-run the slow path when you need source labels).

:class:`BatchBuilder` speaks the interpreter's observer protocol, so
recording a workload is just ``run(body, observers=[builder])``.
"""

from __future__ import annotations

from array import array
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.errors import ProgramError
from repro.events import (
    Event,
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)

__all__ = [
    "OP_FORK",
    "OP_JOIN",
    "OP_HALT",
    "OP_STEP",
    "OP_READ",
    "OP_WRITE",
    "OPCODE_NAMES",
    "LocationInterner",
    "EventBatch",
    "BatchBuilder",
    "batch_from_events",
    "events_from_batch",
]

OP_FORK, OP_JOIN, OP_HALT, OP_STEP, OP_READ, OP_WRITE = range(6)

OPCODE_NAMES: Tuple[str, ...] = (
    "fork", "join", "halt", "step", "read", "write",
)


class LocationInterner:
    """Bijective ``location <-> dense int`` table.

    Ids are handed out in first-seen order, so the same event stream
    always produces the same table (batches are reproducible).
    """

    __slots__ = ("_ids", "_locs")

    def __init__(self) -> None:
        self._ids: Dict[Hashable, int] = {}
        self._locs: List[Hashable] = []

    def __len__(self) -> int:
        return len(self._locs)

    def __contains__(self, loc: Hashable) -> bool:
        return loc in self._ids

    def intern(self, loc: Hashable) -> int:
        """Return the id for ``loc``, allocating one on first sight."""
        lid = self._ids.get(loc)
        if lid is None:
            lid = len(self._locs)
            self._ids[loc] = lid
            self._locs.append(loc)
        return lid

    def location(self, lid: int) -> Hashable:
        """Inverse lookup; raises :class:`KeyError` on unknown ids."""
        if 0 <= lid < len(self._locs):
            return self._locs[lid]
        raise KeyError(f"unknown location id {lid}")

    def locations(self) -> List[Hashable]:
        """All interned locations, in id order (a copy)."""
        return list(self._locs)


class EventBatch:
    """Three parallel arrays of events (see the module docstring).

    ``ops`` is an ``array('B')``; ``a`` and ``b`` are ``array('i')``.
    Batches are append-only; slice them with :meth:`slices` to bound
    the unit of work handed to an engine.
    """

    __slots__ = ("ops", "a", "b")

    def __init__(
        self,
        ops: Optional[array] = None,
        a: Optional[array] = None,
        b: Optional[array] = None,
    ) -> None:
        self.ops = ops if ops is not None else array("B")
        self.a = a if a is not None else array("i")
        self.b = b if b is not None else array("i")
        if not (len(self.ops) == len(self.a) == len(self.b)):
            raise ProgramError("batch columns have mismatched lengths")

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: int, a: int, b: int) -> None:
        self.ops.append(op)
        self.a.append(a)
        self.b.append(b)

    def extend(self, other: "EventBatch") -> None:
        self.ops.extend(other.ops)
        self.a.extend(other.a)
        self.b.extend(other.b)

    def slices(self, size: int) -> Iterator["EventBatch"]:
        """Yield consecutive sub-batches of at most ``size`` events."""
        if size <= 0:
            raise ProgramError(f"batch size must be positive, got {size}")
        for lo in range(0, len(self.ops), size):
            hi = lo + size
            yield EventBatch(self.ops[lo:hi], self.a[lo:hi], self.b[lo:hi])

    def counts(self) -> Dict[str, int]:
        """Events per opcode name (diagnostics).

        Opcodes outside the known range are tallied under an
        ``"unknown"`` key rather than crashing the diagnostic -- a
        corrupt batch should be *reported* here and *rejected* by the
        ingest paths.
        """
        ops = self.ops
        count = ops.count
        out = {name: count(op) for op, name in enumerate(OPCODE_NAMES)}
        unknown = len(ops) - sum(out.values())
        if unknown:
            out["unknown"] = unknown
        return out

    def access_count(self) -> int:
        """Number of read/write slots."""
        ops = self.ops
        return ops.count(OP_READ) + ops.count(OP_WRITE)


class BatchBuilder:
    """Accumulates an :class:`EventBatch` via the observer protocol.

    Attach one to the interpreter to capture a workload directly in
    columnar form::

        builder = BatchBuilder()
        run(body, observers=[builder])
        batch, interner = builder.batch, builder.interner
    """

    __slots__ = ("batch", "interner")

    def __init__(self, interner: Optional[LocationInterner] = None) -> None:
        self.batch = EventBatch()
        self.interner = interner if interner is not None else LocationInterner()

    # -- observer protocol --------------------------------------------------

    def on_root(self, root: int) -> None:
        pass  # the root (task 0) is implicit in the format

    def on_fork(self, parent: int, child: int) -> None:
        self.batch.append(OP_FORK, parent, child)

    def on_join(self, joiner: int, joined: int) -> None:
        self.batch.append(OP_JOIN, joiner, joined)

    def on_halt(self, task: int) -> None:
        self.batch.append(OP_HALT, task, -1)

    def on_step(self, task: int) -> None:
        self.batch.append(OP_STEP, task, -1)

    def on_read(self, task: int, loc: Hashable, label: str = "") -> None:
        self.batch.append(OP_READ, task, self.interner.intern(loc))

    def on_write(self, task: int, loc: Hashable, label: str = "") -> None:
        self.batch.append(OP_WRITE, task, self.interner.intern(loc))


def batch_from_events(
    events: Iterable[Event],
    interner: Optional[LocationInterner] = None,
) -> Tuple[EventBatch, LocationInterner]:
    """Encode an event stream as one columnar batch (labels dropped)."""
    builder = BatchBuilder(interner)
    batch = builder.batch
    intern = builder.interner.intern
    for ev in events:
        if isinstance(ev, ReadEvent):
            batch.append(OP_READ, ev.task, intern(ev.loc))
        elif isinstance(ev, WriteEvent):
            batch.append(OP_WRITE, ev.task, intern(ev.loc))
        elif isinstance(ev, ForkEvent):
            batch.append(OP_FORK, ev.parent, ev.child)
        elif isinstance(ev, JoinEvent):
            batch.append(OP_JOIN, ev.joiner, ev.joined)
        elif isinstance(ev, HaltEvent):
            batch.append(OP_HALT, ev.task, -1)
        elif isinstance(ev, StepEvent):
            batch.append(OP_STEP, ev.task, -1)
        else:
            raise ProgramError(f"not an event: {ev!r}")
    return batch, builder.interner


def events_from_batch(
    batch: EventBatch, interner: LocationInterner
) -> List[Event]:
    """Decode a batch back to event objects (for the slow-path tools)."""
    out: List[Event] = []
    location = interner.location
    for op, a, b in zip(batch.ops, batch.a, batch.b):
        if op == OP_READ:
            out.append(ReadEvent(a, location(b)))
        elif op == OP_WRITE:
            out.append(WriteEvent(a, location(b)))
        elif op == OP_FORK:
            out.append(ForkEvent(a, b))
        elif op == OP_JOIN:
            out.append(JoinEvent(a, b))
        elif op == OP_HALT:
            out.append(HaltEvent(a))
        elif op == OP_STEP:
            out.append(StepEvent(a))
        else:  # pragma: no cover - defensive
            raise ProgramError(f"unknown opcode {op}")
    return out
