"""Differential cross-checking: one trace, many detectors, one verdict.

The engine exists to make ingestion faster *without changing answers*.
This module is the gate that enforces it: replay the same columnar
trace through several detectors in lockstep and compare the per-access
verdict -- "did this read/write get flagged as racing?" -- at every
access.  Any disagreement is reported with the exact stream position,
so a perf PR that bends a detector shows up as a one-line divergence
instead of a statistics drift.

Two comparisons are provided:

* :func:`replay_differential` -- detector vs detector (by default the
  paper's ``lattice2d`` against the ``fasttrack`` and ``spbags``
  baselines).  Only feed ``spbags`` spawn-sync-shaped traces; it is
  unsound outside SP task graphs (see its module docstring).
* :func:`cross_check_sharded` -- the sharded fast path vs one unsharded
  reference detector, compared on the multiset of flagged accesses
  (per-shard streams renumber ``op_index``, so positions are compared
  by ``(task, loc, kind)``).
* :func:`cross_check_parallel` -- the multi-process engine vs the same
  unsharded reference, on the race multiset *and* the per-shard routing
  counters (the parent's routing decisions vs what each worker's kernel
  actually consumed).
* :func:`cross_check_predict` -- the sound-prediction engine
  (``BatchEngine(predict=True)``) vs the observed-order backends.
  Prediction enumerates racing *pairs* across feasible reorderings, so
  equality is the wrong gate; the soundness invariant is inclusion:
  every access an observed-order detector flags must also be flagged
  by prediction (multiset ``<=`` on ``(task, loc, kind)``).

Both operate on interned batches, so detectors hash dense ints; the
verdict only depends on ordering structure, never on what a location
*is*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Counter as CounterT, Dict, Hashable, List, Optional, Sequence, Tuple
from collections import Counter

from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_STEP,
    OP_WRITE,
    OPCODE_NAMES,
    EventBatch,
    LocationInterner,
)
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.errors import ProgramError

__all__ = [
    "DEFAULT_DETECTORS",
    "Divergence",
    "DifferentialReport",
    "replay_differential",
    "cross_check_sharded",
    "cross_check_parallel",
    "cross_check_backend",
    "cross_check_predict",
    "cross_check_compressed",
]

#: the trio the acceptance gate runs: the paper's detector against the
#: epoch-optimised and SP-bags baselines
DEFAULT_DETECTORS: Tuple[str, ...] = ("lattice2d", "fasttrack", "spbags")


@dataclass(frozen=True)
class Divergence:
    """One access on which the detectors disagreed."""

    index: int  #: position in the event stream
    op: str  #: "read" or "write"
    task: int
    loc: Hashable
    flagged: Tuple[str, ...]  #: detectors that reported a race here
    silent: Tuple[str, ...]  #: detectors that did not

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"event {self.index}: {self.op} of {self.loc!r} by task "
            f"{self.task}: flagged by {list(self.flagged)}, "
            f"silent in {list(self.silent)}"
        )


@dataclass
class DifferentialReport:
    """Outcome of one lockstep replay."""

    detectors: List[str]
    events: int
    accesses: int
    races: Dict[str, int]  #: per-detector total reports
    divergences: List[Divergence] = field(default_factory=list)

    @property
    def agreed(self) -> bool:
        """True iff every access got the same verdict everywhere."""
        return not self.divergences

    def summary(self) -> str:
        verdict = (
            "all detectors agree"
            if self.agreed
            else f"{len(self.divergences)} DISAGREEMENT(S)"
        )
        counts = ", ".join(
            f"{name}={self.races[name]}" for name in self.detectors
        )
        return (
            f"{self.events} events ({self.accesses} accesses) -> "
            f"races: {counts}; {verdict}"
        )


def _make_detectors(names: Sequence[str]) -> List[Any]:
    from repro.bench.harness import DETECTOR_FACTORIES

    dets = []
    for name in names:
        try:
            dets.append(DETECTOR_FACTORIES[name]())
        except KeyError:
            raise ProgramError(f"unknown detector {name!r}") from None
    return dets


def replay_differential(
    batch: EventBatch,
    interner: Optional[LocationInterner] = None,
    detectors: Sequence[str] = DEFAULT_DETECTORS,
) -> DifferentialReport:
    """Replay ``batch`` through every named detector in lockstep.

    After each read/write slot the per-detector verdict is the boolean
    "did your race list grow on this access"; any split vote becomes a
    :class:`Divergence`.  The location ``interner`` is only used to
    name locations in divergences (pass ``None`` to report raw ids).
    """
    from repro.obs.registry import get_registry

    names = list(detectors)
    dets = _make_detectors(names)
    for det in dets:
        det.on_root(0)
    seen: List[int] = [0] * len(dets)
    report = DifferentialReport(
        detectors=names,
        events=len(batch),
        accesses=0,
        races=dict.fromkeys(names, 0),
    )
    ops = batch.ops
    av = batch.a
    bv = batch.b
    for i in range(len(ops)):
        op = ops[i]
        a = av[i]
        b = bv[i]
        if op == OP_READ or op == OP_WRITE:
            report.accesses += 1
            verdicts: List[bool] = []
            for k, det in enumerate(dets):
                if op == OP_READ:
                    det.on_read(a, b)
                else:
                    det.on_write(a, b)
                n = len(det.races)
                verdicts.append(n > seen[k])
                seen[k] = n
            if any(verdicts) and not all(verdicts):
                loc: Hashable = b if interner is None else interner.location(b)
                report.divergences.append(
                    Divergence(
                        index=i,
                        op=OPCODE_NAMES[op],
                        task=a,
                        loc=loc,
                        flagged=tuple(
                            n for n, v in zip(names, verdicts) if v
                        ),
                        silent=tuple(
                            n for n, v in zip(names, verdicts) if not v
                        ),
                    )
                )
        elif op == OP_FORK:
            for det in dets:
                det.on_fork(a, b)
        elif op == OP_JOIN:
            for det in dets:
                det.on_join(a, b)
        elif op == OP_HALT:
            for det in dets:
                det.on_halt(a)
        else:
            for det in dets:
                det.on_step(a)
    for name, det in zip(names, dets):
        report.races[name] = len(det.races)
    registry = get_registry()
    registry.counter(
        "differential_replays_total", "lockstep replays performed"
    ).inc()
    registry.counter(
        "differential_events_total", "events replayed in lockstep"
    ).inc(report.events)
    registry.counter(
        "differential_accesses_total", "accesses compared in lockstep"
    ).inc(report.accesses)
    registry.counter(
        "differential_divergences_total",
        "per-access verdict disagreements found",
    ).inc(len(report.divergences))
    for name in names:
        registry.gauge(
            "differential_races",
            "race reports per detector in the last lockstep replay",
            labels={"detector": name},
        ).set(report.races[name])
    return report


def _flag_multiset(races: Sequence[Any]) -> "CounterT[Tuple[Any, ...]]":
    return Counter((r.task, r.loc, r.kind) for r in races)


def cross_check_sharded(
    batch: EventBatch,
    interner: Optional[LocationInterner] = None,
    *,
    num_shards: int = 4,
    batch_size: Optional[int] = None,
) -> Tuple[bool, List[Any], List[Any]]:
    """Sharded vs unsharded fast path on one trace.

    Replays ``batch`` through a plain :class:`BatchEngine` and a
    :class:`ShardedBatchEngine` (optionally re-sliced into sub-batches
    of ``batch_size``) and compares the multiset of flagged accesses.
    Returns ``(agree, reference_races, sharded_races)``.
    """
    ref = BatchEngine(interner=interner)
    sharded = ShardedBatchEngine(num_shards, interner=interner)
    if batch_size is None:
        ref.ingest(batch)
        sharded.ingest(batch)
    else:
        ref.ingest_all(batch.slices(batch_size))
        sharded.ingest_all(batch.slices(batch_size))
    ref_races = ref.races()
    sharded_races = sharded.races()
    agree = _flag_multiset(ref_races) == _flag_multiset(sharded_races)
    return agree, ref_races, sharded_races


def cross_check_backend(
    batch: EventBatch,
    interner: Optional[LocationInterner] = None,
    *,
    backend: str = "depa",
    batch_size: Optional[int] = None,
) -> Tuple[bool, List[Any], List[Any]]:
    """An alternative engine backend vs the union-find referee.

    Replays ``batch`` through the default (``lattice2d``) fast kernel
    and through ``BatchEngine(backend=...)`` and compares the multiset
    of flagged accesses (the backends may name different prior
    representatives from the same conflicting set, so reports are
    compared by ``(task, loc, kind)``).  Returns
    ``(agree, reference_races, backend_races)``.
    """
    ref = BatchEngine(interner=interner)
    alt = BatchEngine(interner=interner, backend=backend)
    if batch_size is None:
        ref.ingest(batch)
        alt.ingest(batch)
    else:
        ref.ingest_all(batch.slices(batch_size))
        alt.ingest_all(batch.slices(batch_size))
    ref_races = ref.races()
    alt_races = alt.races()
    agree = _flag_multiset(ref_races) == _flag_multiset(alt_races)
    return agree, ref_races, alt_races


def cross_check_predict(
    batch: EventBatch,
    interner: Optional[LocationInterner] = None,
    *,
    observed: Sequence[str] = ("lattice2d", "depa"),
    batch_size: Optional[int] = None,
) -> Tuple[bool, List[Any], Dict[str, List[Any]]]:
    """The prediction engine vs the observed-order backends.

    Replays ``batch`` through ``BatchEngine(predict=True)`` and through
    one ``BatchEngine(backend=name)`` per ``observed`` name, then
    asserts the soundness invariant *predicted races include every
    observed race*: for each observed backend, its multiset of flagged
    ``(task, loc, kind)`` accesses must be ``<=`` the predicted
    multiset.  (Prediction reports one race per feasibly-reorderable
    pair, so it may legitimately exceed the observed set -- that
    surplus is the point.)

    ``observed`` defaults to both engine backends; pass
    ``("lattice2d",)`` for traces that are structured but not serial
    fork-first, which the ``depa`` backend rejects by design.  Returns
    ``(sound, predicted_races, observed_races_by_backend)``.
    """
    pred = BatchEngine(interner=interner, predict=True)
    if batch_size is None:
        pred.ingest(batch)
    else:
        pred.ingest_all(batch.slices(batch_size))
    predicted_races = pred.races()
    predicted = _flag_multiset(predicted_races)
    sound = True
    observed_races: Dict[str, List[Any]] = {}
    for name in observed:
        ref = BatchEngine(interner=interner, backend=name)
        if batch_size is None:
            ref.ingest(batch)
        else:
            ref.ingest_all(batch.slices(batch_size))
        races = ref.races()
        observed_races[name] = races
        if not _flag_multiset(races) <= predicted:
            sound = False
    return sound, predicted_races, observed_races


def cross_check_compressed(
    batch: EventBatch,
    interner: Optional[LocationInterner] = None,
    *,
    block_width: Optional[int] = None,
    batch_size: Optional[int] = None,
    num_shards: int = 4,
) -> Tuple[bool, List[Any], Dict[str, List[Any]]]:
    """Memoized detection over the compressed form vs the raw fast path.

    Compresses ``batch`` (:func:`repro.compress.blocks.compress`) and
    replays the compressed trace -- never decompressed -- through the
    memoized ingest of a ``lattice2d`` engine, a ``depa`` engine, and a
    :class:`ShardedBatchEngine`, comparing each against the raw batched
    referee's multiset of flagged accesses.  The serial paths must also
    agree on exact report order and stream positions (``op_index``),
    which is the memo's replay-exactness claim; sharded positions are
    per-shard, so that engine is held to the multiset only.  Returns
    ``(agree, reference_races, compressed_races_by_path)``.
    """
    from repro.compress.blocks import compress as _compress

    if block_width is None:
        ctrace = _compress(batch)
    else:
        ctrace = _compress(batch, block_width)
    ref = BatchEngine(interner=interner)
    if batch_size is None:
        ref.ingest(batch)
    else:
        ref.ingest_all(batch.slices(batch_size))
    ref_races = ref.races()
    reference = _flag_multiset(ref_races)

    def exact(races: Sequence[Any]) -> List[Tuple[Any, ...]]:
        return [
            (r.task, r.loc, r.kind, r.prior_kind, r.op_index) for r in races
        ]

    agree = True
    by_path: Dict[str, List[Any]] = {}
    for backend in ("lattice2d", "depa"):
        engine = BatchEngine(interner=interner, backend=backend)
        engine.ingest_compressed(ctrace)
        races = engine.races()
        by_path[backend] = races
        if _flag_multiset(races) != reference:
            agree = False
        if backend == "lattice2d" and exact(races) != exact(ref_races):
            agree = False
    sharded = ShardedBatchEngine(num_shards, interner=interner)
    sharded.ingest_compressed(ctrace)
    races = sharded.races()
    by_path["sharded"] = races
    if _flag_multiset(races) != reference:
        agree = False
    return agree, ref_races, by_path


def cross_check_parallel(
    batch: EventBatch,
    interner: Optional[LocationInterner] = None,
    *,
    num_workers: int = 4,
    batch_size: Optional[int] = None,
    backend: str = "lattice2d",
) -> Tuple[bool, List[Any], List[Any]]:
    """Multi-process engine vs the serial fast path on one trace.

    Replays ``batch`` through a plain :class:`BatchEngine` and a
    :class:`~repro.engine.parallel.ParallelShardedEngine` and demands
    both (a) the same multiset of flagged accesses and (b) exact
    agreement between the parent's per-shard routing counters and the
    access counts each worker's kernel reports having consumed.
    ``backend`` selects the worker kernel (``"lattice2d"`` or
    ``"depa"``); the reference stays the serial lattice2d engine either
    way, so a depa pool is checked against the exact union-find answer.
    Returns ``(agree, reference_races, parallel_races)``.
    """
    from repro.engine.parallel import ParallelShardedEngine

    ref = BatchEngine(interner=interner)
    with ParallelShardedEngine(
        num_workers, interner=interner, backend=backend
    ) as par:
        if batch_size is None:
            ref.ingest(batch)
            par.ingest(batch)
        else:
            ref.ingest_all(batch.slices(batch_size))
            par.ingest_all(batch.slices(batch_size))
        ref_races = ref.races()
        par_races = par.races()
        routing_agrees = (
            par.routing_counts() == par.worker_access_counts()
        )
    agree = routing_agrees and (
        _flag_multiset(ref_races) == _flag_multiset(par_races)
    )
    return agree, ref_races, par_races
