"""numpy batch kernel for the DePa backend.

:func:`ingest_depa` drives a :class:`~repro.detectors.depa.DePaDetector`
through an :class:`~repro.engine.batch.EventBatch` by *segments*: the
maximal runs of read/write events between structural events (fork,
join, halt -- and step, which is rare and handled scalar).  Within a
segment the acting task is fixed (the stack top) and no precedence
relation changes, so every event's verdict is a pure function of the
cell state at the segment start:

* a read races iff the location's write supremum exists and is
  unordered;
* a write races with the read supremum first, else the write supremum
  (at most one report per write);
* a clean access folds the cell to the acting task, a racing access
  leaves the old value -- and since the acting task is the same for the
  whole segment, the fold lands on the same value no matter how many
  events repeat it.

That constancy is the batch-level form of the access-epoch idea the
union-find kernel uses per event: repeats of the same ``(loc, task,
kind)`` triple inside a segment need no re-checking, so the kernel
answers the whole segment with a handful of array operations -- one
gather of the read/write cells, one vectorized precedence query, and
one scatter for the folds.  Racing events still produce one report
*per occurrence*, exactly like the per-event path.

The precedence query leans on the detector's flat columns and two
fork-first invariants: a task is live iff it is on the stack, and the
stack's absorbed halt intervals are globally sorted.  The ``LIVE``
sentinel (-1) lands inside the permanent ``[-2, -1]`` guard interval of
the ``g_lo``/``g_hi`` columns, so "live" and "absorbed halt" are the
*same* test; in the steady state where the absorbed set is one range
contiguous with the guard, the whole query is a scalar-threshold
compare, and otherwise one ``searchsorted`` answers every "is this
prior ordered?" question in the segment at once.

Validation is hoisted to batch level: opcodes and location ids are
checked in one comparison each, and the acting task of every access
row is checked against a pure-Python *stack simulation* of the batch's
structural events (forks allocate ids in detector order, halts pop).
Only when the simulation or the comparison disagrees with the batch --
a corrupt or hostile stream -- does the kernel fall back to per-segment
checks so the offending event raises its exact scalar error.

Zero-copy numpy views of the detector's ``array`` columns are rebuilt
when the columns may have resized and never outlive the ingest call --
a held view would make ``array`` refuse to grow.  Cells are pre-grown
once per batch (to the batch's largest location id), so the cell views
stay valid across every segment and scalar span of the call.

Without numpy, or for tiny batches where the array overhead loses,
everything falls back to the detector's scalar methods with identical
results.
"""

from __future__ import annotations

try:  # optional: the scalar fallback keeps the backend available
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.core.reports import AccessKind, RaceReport
from repro.detectors.depa import DePaDetector
from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_STEP,
    OP_WRITE,
    EventBatch,
)
from repro.errors import ProgramError

__all__ = ["ingest_depa", "HAVE_NUMPY"]

HAVE_NUMPY = _np is not None

#: segments shorter than this go through the scalar methods -- numpy
#: call overhead dominates below a few dozen events.
_SCALAR_CUTOFF = 24

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE


def _scalar_span(det: DePaDetector, batch: EventBatch, s: int, e: int) -> None:
    """Drive events ``[s, e)`` through the detector's scalar methods."""
    ops, col_a, col_b = batch.ops, batch.a, batch.b
    for i in range(s, e):
        op = ops[i]
        a = col_a[i]
        if op == OP_READ:
            det.on_read(a, col_b[i])
        elif op == OP_WRITE:
            det.on_write(a, col_b[i])
        elif op == OP_FORK:
            det.on_fork(a, col_b[i])
        elif op == OP_JOIN:
            det.on_join(a, col_b[i])
        elif op == OP_HALT:
            det.on_halt(a)
        elif op == OP_STEP:
            det.on_step(a)
        else:
            raise ProgramError(f"unknown opcode {op}")


def _run_segment(
    det, r_all, col_a, col_b, cell_r, cell_w, batch, s, e, checked
) -> None:
    """Process one pure read/write segment ``[s, e)``.

    ``checked`` is True when the batch-level stack simulation already
    validated every access row's acting task; otherwise the segment
    re-checks before trusting the vectorized verdicts.
    """
    if e - s < _SCALAR_CUTOFF or not det._stack:
        # Tiny segment, or no current task (the scalar replay raises
        # the precise DetectorError for the latter).
        _scalar_span(det, batch, s, e)
        return
    t = det._stack[-1]
    if not checked and not (col_a[s:e] == t).all():
        # Some event names a task that is not the stack top: replay
        # scalar so the offending event raises its exact error.
        _scalar_span(det, batch, s, e)
        return
    locs = col_b[s:e]
    r_pre = cell_r.take(locs)
    w_pre = cell_w.take(locs)
    # Vectorized ``ordered``: a prior is ordered iff its halt_seq falls
    # inside an absorbed interval of the stack.  Live priors carry
    # halt_seq == LIVE == -1, which lands inside the permanent [-2, -1]
    # guard interval -- correct, because live tasks are on the stack
    # (fork-first) and hence ordered.  Empty lanes (pre == -1) are
    # gathered with mode="clip", landing on the root -- live (hence
    # ordered, hence not racing) for as long as the stack is non-empty,
    # exactly the right verdict for "no prior".
    halt_seq = _np.frombuffer(det._halt_seq, dtype=_np.int64)
    hs_r = halt_seq.take(r_pre, mode="clip")
    hs_w = halt_seq.take(w_pre, mode="clip")
    g_lo, g_hi = det._g_lo, det._g_hi
    if g_lo[-1] <= 0:
        # The absorbed set is one range contiguous with the guard --
        # [-2, g_hi[-1]] -- which is the steady state once joins
        # coalesce (a second interval would have to start above the
        # first's non-negative hi).  The whole precedence query is a
        # threshold compare, and two scalar maxima decide the clean
        # case without building any mask.
        hi = g_hi[-1]
        if int(hs_r.max()) <= hi and int(hs_w.max()) <= hi:
            cell_r[locs[r_all[s:e]]] = t
            cell_w[locs[~r_all[s:e]]] = t
            det.op_index += e - s
            return
        unord_r = hs_r > hi
        unord_w = hs_w > hi
    else:
        glo = _np.frombuffer(g_lo, dtype=_np.int64)
        ghi = _np.frombuffer(g_hi, dtype=_np.int64)
        idx = glo.searchsorted(hs_r, side="right")
        idx -= 1
        unord_r = ~(hs_r <= ghi[idx])
        idx = glo.searchsorted(hs_w, side="right")
        idx -= 1
        unord_w = ~(hs_w <= ghi[idx])
        if not unord_r.any() and not unord_w.any():
            cell_r[locs[r_all[s:e]]] = t
            cell_w[locs[~r_all[s:e]]] = t
            det.op_index += e - s
            return
    r_mask = r_all[s:e]
    w_mask = ~r_mask
    read_racy = r_mask & unord_w
    wr_racy = w_mask & unord_r
    ww_racy = w_mask & unord_w & ~wr_racy
    racy = read_racy | wr_racy | ww_racy
    if bool(racy.any()):
        races = det.races
        base = det.op_index
        for k in map(int, _np.flatnonzero(racy)):
            if read_racy[k]:
                kind, prior_kind, prior = _READ, _WRITE, int(w_pre[k])
            elif wr_racy[k]:
                kind, prior_kind, prior = _WRITE, _READ, int(r_pre[k])
            else:
                kind, prior_kind, prior = _WRITE, _WRITE, int(w_pre[k])
            races.append(
                RaceReport(
                    loc=int(locs[k]),
                    task=t,
                    kind=kind,
                    prior_kind=prior_kind,
                    prior_repr=prior,
                    op_index=base + k + 1,
                )
            )
    cell_r[locs[r_mask & ~unord_r]] = t
    cell_w[locs[w_mask & ~unord_w]] = t
    det.op_index += e - s


def ingest_depa(det: DePaDetector, batch: EventBatch) -> str:
    """Ingest one batch; returns the dispatch path actually taken
    (``"vectorized"`` or ``"generic"`` for the scalar fallback)."""
    n = len(batch)
    if _np is None or n < _SCALAR_CUTOFF:
        _scalar_span(det, batch, 0, n)
        return "generic"
    ops = _np.frombuffer(batch.ops, dtype=_np.uint8)
    if int(ops.max(initial=0)) > OP_WRITE:
        bad = int(ops[ops > OP_WRITE][0])
        raise ProgramError(f"unknown opcode {bad}")
    col_a = _np.frombuffer(batch.a, dtype=_np.int32)
    col_b = _np.frombuffer(batch.b, dtype=_np.int32)
    # Validate location ids for the whole batch up front (halt/step
    # rows legitimately carry b == -1, so only access rows count);
    # segments can then gather cells without re-checking.
    acc = ops >= OP_READ
    bad_loc = (col_b < 0) & acc
    if bool(bad_loc.any()):
        mn = int(col_b[bad_loc].min())
        raise ProgramError(f"negative location id {mn} in batch")
    r_all = ops == OP_READ
    # Pre-grow the cell columns to the batch's largest b value (an
    # over-approximation of the largest location id -- structural
    # events put task ids there, which are comparatively few), so the
    # zero-copy cell views below stay valid for the whole call.
    det._ensure_loc(int(col_b.max(initial=0)))
    cell_r = _np.frombuffer(det._cell_r, dtype=_np.int64)
    cell_w = _np.frombuffer(det._cell_w, dtype=_np.int64)
    # Structural events (plus the rare steps) are the segment barriers;
    # their columns are pulled into plain ints once, up front.
    barriers = _np.flatnonzero(ops < OP_READ)
    b_pos = barriers.tolist()
    b_op = ops[barriers].tolist()
    b_a = col_a[barriers].tolist()
    b_b = col_b[barriers].tolist()
    # Simulate the fork-first stack over the barriers (forks allocate
    # the next detector id, halts pop) to learn every segment's acting
    # task, then validate all access rows in one vectorized compare.
    # Any disagreement -- structural or per-access -- drops ``checked``
    # and the segments re-check themselves so the offending event
    # raises its exact scalar error.
    sim = list(det._stack)
    nxt = det.thread_count
    tops = []
    lens = []
    checked = True
    pos = 0
    for end, op, a in zip(b_pos, b_op, b_a):
        if end > pos:
            if not sim:
                checked = False
                break
            tops.append(sim[-1])
            lens.append(end - pos)
        if not sim or sim[-1] != a:
            checked = False
            break
        if op == OP_FORK:
            sim.append(nxt)
            nxt += 1
        elif op == OP_HALT:
            sim.pop()
        pos = end + 1
    else:
        if pos < n:
            if sim:
                tops.append(sim[-1])
                lens.append(n - pos)
            else:
                checked = False
    if checked and tops:
        expected = _np.repeat(
            _np.asarray(tops, dtype=_np.int32),
            _np.asarray(lens, dtype=_np.int64),
        )
        if not _np.array_equal(col_a[acc], expected):
            checked = False
    on_fork, on_join = det.on_fork, det.on_join
    on_halt, on_step = det.on_halt, det.on_step
    pos = 0
    for end, op, a, b in zip(b_pos, b_op, b_a, b_b):
        if end > pos:
            _run_segment(
                det, r_all, col_a, col_b, cell_r, cell_w, batch,
                pos, end, checked,
            )
        if op == OP_FORK:
            on_fork(a, b)
        elif op == OP_JOIN:
            on_join(a, b)
        elif op == OP_HALT:
            on_halt(a)
        else:
            on_step(a)
        pos = end + 1
    if pos < n:
        _run_segment(
            det, r_all, col_a, col_b, cell_r, cell_w, batch, pos, n, checked
        )
    return "vectorized"
