"""numpy batch kernel for the DePa backend.

:func:`ingest_depa` drives a :class:`~repro.detectors.depa.DePaDetector`
through an :class:`~repro.engine.batch.EventBatch` by *segments*: the
maximal runs of read/write events between structural events (fork,
join, halt -- and step, which is rare and handled scalar).  Within a
segment the acting task is fixed (the stack top) and no precedence
relation changes, so every event's verdict is a pure function of the
cell state at the segment start:

* a read races iff the location's write supremum exists and is
  unordered;
* a write races with the read supremum first, else the write supremum
  (at most one report per write);
* a clean access folds the cell to the acting task, a racing access
  leaves the old value -- and since the acting task is the same for the
  whole segment, the fold lands on the same value no matter how many
  events repeat it.

That constancy is the batch-level form of the access-epoch idea the
union-find kernel uses per event: repeats of the same ``(loc, task,
kind)`` triple inside a segment need no re-checking, so the kernel
answers the whole segment with a handful of array operations -- one
gather of the read/write cells, one vectorized precedence query, and
one scatter for the folds.  Racing events still produce one report
*per occurrence*, exactly like the per-event path.

The precedence query leans on the detector's flat columns and two
fork-first invariants: a task is live iff it is on the stack, and the
stack's absorbed halt intervals are globally sorted.  The ``LIVE``
sentinel (-1) lands inside the permanent ``[-2, -1]`` guard interval of
the ``g_lo``/``g_hi`` columns, so "live" and "absorbed halt" are the
*same* test; in the steady state where the absorbed set is one range
contiguous with the guard, the whole query is a scalar-threshold
compare, and otherwise one ``searchsorted`` answers every "is this
prior ordered?" question in the segment at once.

Validation is hoisted but never simulated in Python: opcodes and
location ids are checked in one whole-batch comparison each, and every
dispatch piece -- a leaf burst, an access segment, a structural run --
validates its own rows with a handful of C-level vector compares
against the detector's live state right before it applies (fork
parents are the stack top, fork children are the ids the detector
would allocate next, halts and joins name the tasks the stream
implies, access rows act as the task the enclosing piece proved).  A
piece whose compares disagree with the batch -- a corrupt or hostile
stream -- is dropped to the detector's self-validating scalar calls,
so the offending event raises its exact error at its exact
``op_index`` while every already-applied piece stands.

Zero-copy numpy views of the detector's ``array`` columns are rebuilt
when the columns may have resized and never outlive the ingest call --
a held view would make ``array`` refuse to grow.  Cells are pre-grown
once per batch (to the batch's largest location id), so the cell views
stay valid across every segment and scalar span of the call.

Without numpy, or for tiny batches where the array overhead loses,
everything falls back to the detector's scalar methods with identical
results.
"""

from __future__ import annotations

try:  # optional: the scalar fallback keeps the backend available
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.core.reports import AccessKind, RaceReport
from repro.detectors.depa import DePaDetector
from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_STEP,
    OP_WRITE,
    EventBatch,
)
from repro.errors import ProgramError

__all__ = ["ingest_depa", "HAVE_NUMPY"]

HAVE_NUMPY = _np is not None

#: segments shorter than this go through the scalar methods -- numpy
#: call overhead dominates below a few dozen events.
_SCALAR_CUTOFF = 24

#: cap on (fork, halt) pairs absorbed per leaf-burst attempt; bounds
#: the chain scan, and bursts chain anyway -- the next attempt picks
#: up right where a capped one ended.
_BURST_MAX = 256

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE


def _scalar_span(det: DePaDetector, batch: EventBatch, s: int, e: int) -> None:
    """Drive events ``[s, e)`` through the detector's scalar methods."""
    ops, col_a, col_b = batch.ops, batch.a, batch.b
    for i in range(s, e):
        op = ops[i]
        a = col_a[i]
        if op == OP_READ:
            det.on_read(a, col_b[i])
        elif op == OP_WRITE:
            det.on_write(a, col_b[i])
        elif op == OP_FORK:
            det.on_fork(a, col_b[i])
        elif op == OP_JOIN:
            det.on_join(a, col_b[i])
        elif op == OP_HALT:
            det.on_halt(a)
        elif op == OP_STEP:
            det.on_step(a)
        else:
            raise ProgramError(f"unknown opcode {op}")


def _run_segment(
    det, r_all, col_a, col_b, cells, batch, s, e
) -> None:
    """Process one pure read/write segment ``[s, e)``.

    Validates the acting task of every row in one compare before
    trusting the vectorized verdicts; a mismatch replays scalar so the
    offending event raises its exact error.
    """
    if e - s < _SCALAR_CUTOFF or not det._stack:
        # Tiny segment, or no current task (the scalar replay raises
        # the precise DetectorError for the latter).
        _scalar_span(det, batch, s, e)
        return
    t = det._stack[-1]
    if not (col_a[s:e] == t).all():
        # Some event names a task that is not the stack top: replay
        # scalar so the offending event raises its exact error.
        _scalar_span(det, batch, s, e)
        return
    locs = col_b[s:e]
    idx2 = locs.astype(_np.int64)
    idx2 += idx2
    idxw = idx2 + 1
    r_pre = cells.take(idx2)
    w_pre = cells.take(idxw)
    # Vectorized ``ordered``: a prior is ordered iff its halt_seq falls
    # inside an absorbed interval of the stack.  Live priors carry
    # halt_seq == LIVE == -1, which lands inside the permanent [-2, -1]
    # guard interval -- correct, because live tasks are on the stack
    # (fork-first) and hence ordered.  Empty lanes (pre == -1) are
    # gathered with mode="clip", landing on the root -- live (hence
    # ordered, hence not racing) for as long as the stack is non-empty,
    # exactly the right verdict for "no prior".
    halt_seq = _np.frombuffer(det._halt_seq, dtype=_np.int64)
    hs_r = halt_seq.take(r_pre, mode="clip")
    hs_w = halt_seq.take(w_pre, mode="clip")
    g_lo, g_hi = det._g_lo, det._g_hi
    # ``unord_r``/``unord_w`` stay None while the corresponding cell
    # column has no stale lane at all -- the usual case, and the
    # one-sided cases below each skip half the mask algebra.
    unord_r = unord_w = None
    if g_lo[-1] <= 0:
        # The absorbed set is one range contiguous with the guard --
        # [-2, g_hi[-1]] -- which is the steady state once joins
        # coalesce (a second interval would have to start above the
        # first's non-negative hi).  The whole precedence query is a
        # threshold compare, and two scalar maxima decide the clean
        # case without building any mask.
        hi = g_hi[-1]
        if hs_r.max() > hi:
            unord_r = hs_r > hi
        if hs_w.max() > hi:
            unord_w = hs_w > hi
    else:
        glo = _np.frombuffer(g_lo, dtype=_np.int64)
        ghi = _np.frombuffer(g_hi, dtype=_np.int64)
        idx = glo.searchsorted(hs_r, side="right")
        idx -= 1
        unord = hs_r > ghi[idx]
        if unord.any():
            unord_r = unord
        idx = glo.searchsorted(hs_w, side="right")
        idx -= 1
        unord = hs_w > ghi[idx]
        if unord.any():
            unord_w = unord
    r_seg = r_all[s:e]
    if unord_r is None and unord_w is None:
        cells[idx2[r_seg]] = t
        cells[idxw[~r_seg]] = t
        det.op_index += e - s
        return
    w_seg = ~r_seg
    races = det.races
    base = det.op_index
    if unord_w is None:
        # Only read cells are stale: a read never races against a read
        # supremum, so just the writes report, and every write cell
        # folds (their suprema are all ordered).
        wr_racy = w_seg & unord_r
        if bool(wr_racy.any()):
            for k in map(int, _np.flatnonzero(wr_racy)):
                races.append(
                    RaceReport(
                        loc=int(locs[k]),
                        task=t,
                        kind=_WRITE,
                        prior_kind=_READ,
                        prior_repr=int(r_pre[k]),
                        op_index=base + k + 1,
                    )
                )
        cells[idx2[r_seg & ~unord_r]] = t
        cells[idxw[w_seg]] = t
    elif unord_r is None:
        # Only write cells are stale: every stale lane races (reads as
        # read-after-write, writes as write-after-write), and every
        # read cell folds.
        for k in map(int, _np.flatnonzero(unord_w)):
            races.append(
                RaceReport(
                    loc=int(locs[k]),
                    task=t,
                    kind=_READ if r_seg[k] else _WRITE,
                    prior_kind=_WRITE,
                    prior_repr=int(w_pre[k]),
                    op_index=base + k + 1,
                )
            )
        cells[idx2[r_seg]] = t
        cells[idxw[w_seg & ~unord_w]] = t
    else:
        read_racy = r_seg & unord_w
        wr_racy = w_seg & unord_r
        ww_racy = w_seg & unord_w & ~wr_racy
        racy = read_racy | wr_racy | ww_racy
        if bool(racy.any()):
            for k in map(int, _np.flatnonzero(racy)):
                if read_racy[k]:
                    kind, prior_kind, prior = _READ, _WRITE, int(w_pre[k])
                elif wr_racy[k]:
                    kind, prior_kind, prior = _WRITE, _READ, int(r_pre[k])
                else:
                    kind, prior_kind, prior = _WRITE, _WRITE, int(w_pre[k])
                races.append(
                    RaceReport(
                        loc=int(locs[k]),
                        task=t,
                        kind=kind,
                        prior_kind=prior_kind,
                        prior_repr=prior,
                        op_index=base + k + 1,
                    )
                )
        cells[idx2[r_seg & ~unord_r]] = t
        cells[idxw[w_seg & ~unord_w]] = t
    det.op_index += e - s


def _run_segment_fast(det, a_seg, loc2, widx, f_idx, r_mask, cells) -> bool:
    """Steady-state fast path for one segment.

    ``a_seg`` is the segment's acting-task column; one compare against
    the stack top validates every row at once (a mismatch declines,
    and the general path's own re-check routes the offending event to
    its exact scalar error).

    ``loc2``/``widx``/``f_idx``/``r_mask`` are zero-cost views into
    per-slice precomputes over the interleaved cell column (read
    supremum of ``loc`` at ``2 * loc``, write supremum at ``2 * loc +
    1``): each lane's read-cell index, write-cell index, fold-cell
    index (read cell for reads, write cell for writes), and kind.

    The race test and the fold mask share one gather: a read lane's
    *read* supremum never produces a race (read/read pairs are not
    races), only its fold decision, so "no race anywhere" is exactly
    "every write cell, plus every read cell under a write lane, is
    ordered" -- and the surviving stale read cells under read lanes
    (e.g. halted-but-unjoined sibling readers) are precisely the lanes
    whose fold keeps its old value.  Empty cells (-1) gathered with
    mode="clip" land on the root -- live, hence ordered, exactly the
    verdict for "no prior".  Returns False without touching any state
    when the segment needs the general path: a fragmented absorbed
    set, a mismatched acting task, or any stale prior that a race
    verdict could depend on.
    """
    g_lo = det._g_lo
    if g_lo[-1] > 0:
        return False
    t = det._stack[-1]
    if not (a_seg == t).all():
        return False
    hi = det._g_hi[-1]
    halt_seq = _np.frombuffer(det._halt_seq, dtype=_np.int64)
    if int(halt_seq.take(cells.take(widx), mode="clip").max(initial=-1)) > hi:
        return False
    rpre = cells.take(loc2)
    st = halt_seq.take(rpre, mode="clip") > hi
    if bool(st.any()):
        if bool((st & ~r_mask).any()):
            return False
        # Stale read suprema under read lanes keep their old value,
        # exactly like the scalar fold rule; everything else folds to
        # the acting task.  One fused scatter covers both kinds.
        cells[f_idx] = _np.where(st, rpre, t)
    else:
        cells[f_idx] = t
    det.op_index += len(loc2)
    return True


def _run_burst_fast(det, k, a_reg, loc2, widx, f_idx, ids, r_mask, cells,
                    scratch) -> bool:
    """Steady-state fast path for a validated *leaf burst*: ``k``
    consecutive (fork, accesses, halt) triples, each child halting
    before the next fork.

    The burst never touches the global interval columns (leaf halts
    park their own one-point interval; no joins occur), so "is this
    prior ordered?" is one fixed threshold for every lane even though
    the acting task changes from triple to triple -- ``a_reg`` carries
    the per-lane acting tasks (the validated ``a`` column).

    Intra-burst same-location interactions are the one sequential
    dependency: an earlier sibling's fold changes what a later lane
    sees.  A collision group whose members are all reads is still
    exact against burst-start cells -- the write supremum they race
    against cannot change, and the scalar outcome (only the first
    reader can fold) is reproduced by scattering the folds in reverse
    lane order.  Any write-involved collision declines to the scalar
    replay, as does any stale race-relevant prior (the race test and
    the stale-fold mask share one gather, as in
    :func:`_run_segment_fast`).  Returns False with no state touched
    on decline.
    """
    g_lo = det._g_lo
    if g_lo[-1] > 0:
        return False
    hi = det._g_hi[-1]
    scratch[loc2] = ids
    got = scratch.take(loc2)
    coll = got != ids
    if bool(coll.any()):
        if bool((coll & ~r_mask).any()):
            return False
        if not bool(r_mask.take(got[coll] - ids[0]).all()):
            return False
    halt_seq = _np.frombuffer(det._halt_seq, dtype=_np.int64)
    if int(halt_seq.take(cells.take(widx), mode="clip").max(initial=-1)) > hi:
        del halt_seq
        return False
    rpre = cells.take(loc2)
    st = halt_seq.take(rpre, mode="clip") > hi
    if bool(st.any()):
        if bool((st & ~r_mask).any()):
            del halt_seq
            return False
        vals = _np.where(st, rpre, a_reg)
        cells[f_idx[::-1]] = vals[::-1]
    else:
        cells[f_idx[::-1]] = a_reg[::-1]
    del halt_seq  # the view must not outlive the column growth below
    det._bulk_leaf_triples(k)
    det.op_index += len(loc2)
    return True


def ingest_depa(det: DePaDetector, batch: EventBatch) -> str:
    """Ingest one batch; returns the dispatch path actually taken
    (``"vectorized"`` or ``"generic"`` for the scalar fallback)."""
    n = len(batch)
    if _np is None or n < _SCALAR_CUTOFF:
        _scalar_span(det, batch, 0, n)
        return "generic"
    ops = _np.frombuffer(batch.ops, dtype=_np.uint8)
    if int(ops.max(initial=0)) > OP_WRITE:
        bad = int(ops[ops > OP_WRITE][0])
        raise ProgramError(f"unknown opcode {bad}")
    col_a = _np.frombuffer(batch.a, dtype=_np.int32)
    col_b = _np.frombuffer(batch.b, dtype=_np.int32)
    # Validate location ids for the whole batch up front (halt/step
    # rows legitimately carry b == -1, so only access rows count);
    # segments can then gather cells without re-checking.  The check
    # rides the access gather the precomputes below need anyway.
    acc = ops >= OP_READ
    locs_acc = col_b[acc]
    if int(locs_acc.min(initial=0)) < 0:
        mn = int(locs_acc.min())
        raise ProgramError(f"negative location id {mn} in batch")
    r_all = ops == OP_READ
    # Pre-grow the cell columns to the batch's largest b value (an
    # over-approximation of the largest location id -- structural
    # events put task ids there, which are comparatively few), so the
    # zero-copy cell views below stay valid for the whole call.
    det._ensure_loc(int(col_b.max(initial=0)))
    cells = _np.frombuffer(det._cells, dtype=_np.int64)
    # Structural events (plus the rare steps) are the segment barriers;
    # their columns are pulled into plain ints once, up front.  There
    # is no up-front stack simulation: each dispatch piece (burst,
    # segment, structural run) validates itself with a handful of
    # C-level compares right before it applies, and any mismatch drops
    # just that piece to the self-validating scalar calls so the
    # offending event raises its exact error at its exact op_index.
    barriers = _np.flatnonzero(ops < OP_READ)
    b_op_arr = ops[barriers]
    b_pos = barriers.tolist()
    b_op = b_op_arr.tolist()
    b_a = col_a[barriers].tolist()
    b_b = col_b[barriers].tolist()
    nb = len(b_pos)
    # One prefix sum over the access mask plus pre-scaled interleaved
    # cell indices make every segment's and burst's gather/scatter
    # index lists zero-cost views, so the fast paths never do
    # per-segment boolean indexing or index arithmetic.
    a_acc = col_a[acc]
    loc2_acc = locs_acc.astype(_np.int64)
    loc2_acc += loc2_acc
    widx_acc = loc2_acc + 1
    r_acc = r_all[acc]
    # Fold-cell index per lane: the read cell for reads, the write
    # cell for writes -- precomputed once so the fast paths' fused
    # fold scatter needs no per-piece mask select.
    fold_acc = loc2_acc + ~r_acc
    ids_acc = _np.arange(len(a_acc), dtype=_np.int32)
    scratch = _np.empty(len(cells), dtype=_np.int32)
    ax = _np.empty(n + 1, dtype=_np.int64)
    ax[0] = 0
    _np.cumsum(acc, out=ax[1:])
    # Leaf-burst chain mask: ``chain[p]`` says barrier pair (p, p+1) is
    # a (fork, halt) pair whose fork is adjacent to the previous
    # barrier, so a burst reaching pair ``p`` extends through it.  With
    # the mask precomputed, each burst's extent is one strided argmin
    # instead of a Python loop over the pairs.
    if nb >= 2:
        chain = (b_op_arr[:-1] == OP_FORK) & (b_op_arr[1:] == OP_HALT)
        chain[1:] &= barriers[1:-1] == barriers[:-2] + 1
    else:
        chain = None
    stk = det._stack
    i = 0
    pos = 0
    while i < nb:
        end = b_pos[i]
        if end > pos:
            if end - pos < _SCALAR_CUTOFF or not stk:
                _scalar_span(det, batch, pos, end)
            else:
                a0 = ax[pos]
                a1 = ax[end]
                if not _run_segment_fast(
                    det,
                    a_acc[a0:a1],
                    loc2_acc[a0:a1],
                    widx_acc[a0:a1],
                    fold_acc[a0:a1],
                    r_acc[a0:a1],
                    cells,
                ):
                    _run_segment(
                        det, r_all, col_a, col_b, cells, batch, pos, end
                    )
            pos = end
        # Leaf-burst attempt: a maximal run of (fork, halt) barrier
        # pairs with only access rows between each fork and its halt
        # and each next fork adjacent to the previous halt.  The
        # structural validation is a handful of vector compares: fork
        # parents are all the stack top (fork-first: each leaf halts
        # before the next fork), fork children are the ids the detector
        # would allocate, halts name those children, and the access
        # rows between each pair act as that pair's child.
        if (
            stk
            and b_op[i] == OP_FORK
            and i + 1 < nb
            and b_op[i + 1] == OP_HALT
        ):
            u = i + 2
            if chain is not None:
                ext = chain[u:u + 2 * _BURST_MAX - 2:2]
                if ext.size:
                    stop = int(ext.argmin())
                    if stop == 0 and ext[0]:
                        stop = ext.size
                    u += 2 * stop
            e_reg = b_pos[u - 1] + 1
            if e_reg - pos >= _SCALAR_CUTOFF:
                kk = (u - i) // 2
                nxt = len(det._halt_seq)
                kid_list = list(range(nxt, nxt + kk))
                a0 = ax[pos]
                a1 = ax[e_reg]
                a_seg = a_acc[a0:a1]
                # Fork parents, fork children, and halt actors are
                # validated on the already-materialized barrier lists
                # -- plain list compares over kk elements beat four
                # numpy launches on these short runs.  The per-access
                # acting tasks stay a vector compare: one repeat of
                # the child ids by each pair's access count.
                if (
                    b_a[i:u:2].count(stk[-1]) == kk
                    and b_b[i:u:2] == kid_list
                    and b_a[i + 1:u:2] == kid_list
                ):
                    fk = barriers[i:u:2]
                    ht = barriers[i + 1:u:2]
                    kids = _np.arange(nxt, nxt + kk, dtype=_np.int32)
                    rep = _np.repeat(kids, ht - fk - 1)
                    if (
                        len(a_seg) == len(rep)
                        and bool((a_seg == rep).all())
                        and _run_burst_fast(
                            det,
                            kk,
                            a_seg,
                            loc2_acc[a0:a1],
                            widx_acc[a0:a1],
                            fold_acc[a0:a1],
                            ids_acc[a0:a1],
                            r_acc[a0:a1],
                            cells,
                            scratch,
                        )
                    ):
                        pos = e_reg
                        i = u
                        continue
        j = i + 1
        while j < nb and b_pos[j] == b_pos[j - 1] + 1:
            j += 1
        # A fork trailing the run (e.g. the first fork of a round right
        # after the previous round's joins) may open a leaf burst whose
        # halt is the next barrier: leave it for the next iteration so
        # the burst pattern above can see it.
        if j - 1 > i and b_op[j - 1] == OP_FORK and j < nb and (
            b_op[j] == OP_HALT
        ):
            j -= 1
        # Maximal same-opcode sub-runs become one amortized bulk state
        # update each, so a deep-fanout stream no longer pays one
        # Python method call per fork/halt/join.  Each sub-run's
        # validation is an O(run) C-level list compare against what the
        # detector's own scalar calls would require (fork runs push
        # fork-first, so each fork's parent is the previous child;
        # halt runs pop a stack suffix; join/step runs all act as the
        # stack top); _bulk_joins additionally validates the join
        # targets itself.  Any mismatch replays that sub-run scalar.
        k = i
        while k < j:
            op = b_op[k]
            m = k + 1
            while m < j and b_op[m] == op:
                m += 1
            cnt = m - k
            if op == OP_FORK:
                if cnt == 1:
                    det.on_fork(b_a[k], b_b[k])
                else:
                    nxt = len(det._halt_seq)
                    if (
                        stk
                        and b_a[k] == stk[-1]
                        and b_b[k:m] == list(range(nxt, nxt + cnt))
                        and b_a[k + 1:m] == list(range(nxt, nxt + cnt - 1))
                    ):
                        det._bulk_forks(cnt)
                    else:
                        for x in range(k, m):
                            det.on_fork(b_a[x], b_b[x])
            elif op == OP_HALT:
                if cnt == 1:
                    det.on_halt(b_a[k])
                elif len(stk) >= cnt and b_a[k:m] == stk[:-cnt - 1:-1]:
                    det._bulk_halts(cnt)
                else:
                    for x in range(k, m):
                        det.on_halt(b_a[x])
            elif op == OP_JOIN:
                if cnt == 1:
                    det.on_join(b_a[k], b_b[k])
                elif not (
                    stk
                    and b_a[k:m].count(stk[-1]) == cnt
                    and det._bulk_joins(b_a[k], b_b[k:m])
                ):
                    for x in range(k, m):
                        det.on_join(b_a[x], b_b[x])
            else:  # step: only moves op_index once validated
                if stk and b_a[k:m].count(stk[-1]) == cnt:
                    det.op_index += cnt
                else:
                    for x in range(k, m):
                        det.on_step(b_a[x])
            k = m
        pos = b_pos[j - 1] + 1
        i = j
    if pos < n:
        if n - pos < _SCALAR_CUTOFF or not stk:
            _scalar_span(det, batch, pos, n)
        else:
            a0 = ax[pos]
            a1 = ax[n]
            if not _run_segment_fast(
                det,
                a_acc[a0:a1],
                loc2_acc[a0:a1],
                widx_acc[a0:a1],
                fold_acc[a0:a1],
                r_acc[a0:a1],
                cells,
            ):
                _run_segment(
                    det, r_all, col_a, col_b, cells, batch, pos, n
                )
    return "vectorized"
