"""Multi-process sharded detection: shard workers over shared memory.

:class:`ParallelShardedEngine` is the process-parallel sibling of
:class:`~repro.engine.ingest.ShardedBatchEngine`: K persistent worker
processes each own the shadow state of the locations with
``loc_id % K == k`` and consume the full structural (fork/join/halt/
step) stream plus only their own accesses.  The paper's Θ(1)-per-
location shadow cells make this embarrassingly parallel -- an access
only ever interacts with its own location's history, and every worker
replays the complete ordering structure -- so verdicts are unaffected
by the partitioning (the differential harness cross-checks this on
every benchmark run).

Data flow per :meth:`~ParallelShardedEngine.ingest` call::

    parent                                   worker k (of K)
    ------                                   ---------------
    validate batch (vectorized)   ----+
    write columns into one            |
    shared_memory segment             |
    broadcast (name, n) to all  --->  attach segment
                                      self-select:  structural | b%K==k
                                      relaxed kernel over selection
    await K acks               <----  ack(n_selected)
    close + unlink segment

The division of labour is deliberate:

* the **parent validates, workers trust**.  Stream well-formedness
  (dense fork ids, no use-after-halt, no double join...) is checked
  once, vectorized over numpy columns, before anything is shipped;
  the per-shard kernel then runs with no per-event bounds or liveness
  checks at all.  Combined with the access-epoch fast path this makes
  the per-shard kernel cheaper than the serial exact kernel per event
  -- which is what lets the parallel engine win even on a single core,
  and scale with cores when they exist.
* the **payload crosses the process boundary once**.  The parent
  writes each column into the shared-memory segment directly from the
  batch's buffers (no pickling of event data); workers self-select
  with one vectorized mask instead of the parent materializing K
  sub-batches.
* **traces never materialize in the parent at all**:
  :meth:`~ParallelShardedEngine.ingest_trace` maps an RPR2TRC file
  (:func:`~repro.engine.tracefile.map_trace`), validates the columns
  through zero-copy views, and sends workers only the column
  *offsets*; each worker re-maps the file and reads through the shared
  page cache.

Results merge deterministically: at collect time each worker ships its
race tuples (in local detection order), its per-worker
:class:`~repro.obs.registry.MetricsRegistry` export, and its routing
counts; the parent merges races in shard order, folds the registries
into its own (:meth:`~repro.obs.registry.MetricsRegistry.merge_state`)
and cross-checks the worker-side access counts against its own routing
counters.  A worker that dies or hangs surfaces as a clean
:class:`~repro.errors.DetectorError`, never a deadlock.
"""

from __future__ import annotations

import json as _json
import mmap as _mmaplib
import multiprocessing as _mp
import os as _os
import queue as _queue
import time as _time
import zlib as _zlib
from array import array
from multiprocessing import shared_memory as _shm
from typing import Any, Dict, Iterable, List, Optional, Tuple

try:  # numpy vectorizes validation and worker self-selection
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a declared dependency
    _np = None

from repro.core.reports import AccessKind, RaceReport
from repro.detectors.depa import DePaDetector
from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_WRITE,
    EventBatch,
    LocationInterner,
)
from repro.engine.vectorized import ingest_depa
from repro.engine.snapshot import (
    pack_state,
    read_checkpoint_file,
    unpack_state,
    write_checkpoint_file,
)
from repro.engine.tracefile import map_trace
from repro.errors import CheckpointError, DetectorError, ProgramError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.trace import decode_location, encode_location

__all__ = ["ParallelShardedEngine"]

_READ = AccessKind.READ
_WRITE = AccessKind.WRITE

#: align the i32 columns inside a shared-memory segment
def _pad4(n: int) -> int:
    return (n + 3) & ~3


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------


class _ShardState:
    """One worker's detector state: the relaxed-kernel equivalent of a
    :class:`~repro.core.detector.RaceDetector2D` with the root spawned.

    Plain lists and dicts, no methods on the hot path; the parent's
    pre-validation is what makes dropping the per-event checks sound.
    """

    __slots__ = (
        "shard",
        "num_shards",
        "parent",
        "rank",
        "label",
        "visited",
        "cells",
        "epoch",
        "races",
        "op_index",
        "accesses",
        "epoch_hits",
    )

    def __init__(self, shard: int, num_shards: int) -> None:
        self.shard = shard
        self.num_shards = num_shards
        self.reset()

    def reset(self) -> None:
        # Root task 0, exactly like RaceDetector2D.spawn_root().
        self.parent = [0]
        self.rank = [0]
        self.label = [0]
        self.visited = [False]
        self.cells: dict = {}
        self.epoch: dict = {}
        #: race tuples ``(loc, task, kind, prior_kind, prior_repr,
        #: local_op_index)`` with kind encoded 0=read / 1=write
        self.races: list = []
        self.op_index = 0
        self.accesses = 0
        self.epoch_hits = 0

    def race_tuples(self) -> list:
        return self.races


class _DepaShardState:
    """One worker's detector state for the array-native ``depa``
    backend: an exact :class:`~repro.detectors.depa.DePaDetector`
    driven by the vectorized segment kernel over the worker's
    sub-stream (full structure plus own accesses).

    Selection never disturbs the fork-first structural skeleton --
    dropping another shard's accesses cannot change which task sits on
    top of the serial stack -- so a depa-compatible stream stays
    depa-compatible on every sub-stream and verdicts match the serial
    backend per location.
    """

    __slots__ = ("shard", "num_shards", "det", "accesses", "epoch_hits")

    def __init__(self, shard: int, num_shards: int) -> None:
        self.shard = shard
        self.num_shards = num_shards
        self.reset()

    def reset(self) -> None:
        det = DePaDetector()
        det.on_root(0)
        self.det = det
        self.accesses = 0
        self.epoch_hits = 0  # no epoch cache on this backend

    def race_tuples(self) -> list:
        """Reports in the parallel wire format (kind encoded 0/1)."""
        return [
            (
                r.loc,
                r.task,
                0 if r.kind is _READ else 1,
                0 if r.prior_kind is _READ else 1,
                r.prior_repr,
                r.op_index,
            )
            for r in self.det.races
        ]


def _make_shard_state(backend: str, shard: int, num_shards: int):
    if backend == "depa":
        return _DepaShardState(shard, num_shards)
    return _ShardState(shard, num_shards)


def _shard_ingest(st, ops, a_col, b_col) -> Tuple[int, int]:
    """Run the backend's kernel over one selected sub-stream; returns
    ``(events_selected, epoch_cache_hits)``."""
    if type(st) is _DepaShardState:
        n_sel = len(ops)
        if n_sel:
            if _np is not None:
                acc = int(
                    (_np.frombuffer(ops, dtype=_np.uint8) >= OP_READ).sum()
                )
            else:
                read_op = OP_READ
                acc = sum(1 for op in ops if op >= read_op)
            ingest_depa(st.det, EventBatch(ops, a_col, b_col))
            st.accesses += acc
        return n_sel, 0
    hits = _relaxed_ingest(st, ops, a_col, b_col)
    return len(ops), hits


def _relaxed_ingest(st: _ShardState, ops, a_col, b_col) -> int:
    """The trusted per-shard kernel; returns epoch-cache hits.

    Mirrors the exact kernel of :func:`repro.engine.ingest._ingest_fast`
    minus everything the parent already guaranteed or nobody will read:
    no bounds/liveness checks, no union-find op counters, no deferred
    shadow accounting.  Verdicts, shadow cells and the union-find
    partition come out identical to the exact kernel on the worker's
    sub-stream -- the property tests drive both and compare.
    """
    parent = st.parent
    rank = st.rank
    label = st.label
    visited = st.visited
    cells = st.cells
    epoch = st.epoch
    races = st.races
    op_index = st.op_index
    hits = 0
    accesses = 0
    read_op = OP_READ
    fork_op, join_op, halt_op = OP_FORK, OP_JOIN, OP_HALT

    for op, t, b in zip(ops, a_col, b_col):
        op_index += 1
        if op >= read_op:  # read or write
            accesses += 1
            visited[t] = True
            cell = cells.get(b)
            if cell is None:
                cells[b] = [t, None] if op == read_op else [None, t]
                continue
            key = (t << 1) | (op - read_op)
            if epoch.get(b) == key:
                hits += 1
                continue
            r, w = cell
            if op == read_op:
                raced = False
                if w is not None:
                    x = w
                    while parent[x] != x:
                        x = parent[x]
                    i = w
                    while parent[i] != x:
                        parent[i], i = x, parent[i]
                    if (t if visited[label[x]] else label[x]) != t:
                        races.append((b, t, 0, 1, w, op_index))
                        raced = True
                if r is None:
                    cell[0] = t
                else:
                    x = r
                    while parent[x] != x:
                        x = parent[x]
                    i = r
                    while parent[i] != x:
                        parent[i], i = x, parent[i]
                    cell[0] = t if visited[label[x]] else label[x]
                epoch[b] = key if not raced and cell[0] == t else -1
            else:
                reported = False
                if r is not None:
                    x = r
                    while parent[x] != x:
                        x = parent[x]
                    i = r
                    while parent[i] != x:
                        parent[i], i = x, parent[i]
                    if (t if visited[label[x]] else label[x]) != t:
                        races.append((b, t, 1, 0, r, op_index))
                        reported = True
                if not reported and w is not None:
                    x = w
                    while parent[x] != x:
                        x = parent[x]
                    i = w
                    while parent[i] != x:
                        parent[i], i = x, parent[i]
                    if (t if visited[label[x]] else label[x]) != t:
                        races.append((b, t, 1, 1, w, op_index))
                        reported = True
                if w is None:
                    cell[1] = t
                else:
                    x = w
                    while parent[x] != x:
                        x = parent[x]
                    i = w
                    while parent[i] != x:
                        parent[i], i = x, parent[i]
                    cell[1] = t if visited[label[x]] else label[x]
                epoch[b] = key if not reported and cell[1] == t else -1
        elif op == fork_op:
            visited[t] = True
            tid = len(parent)
            parent.append(tid)
            rank.append(0)
            label.append(tid)
            visited.append(False)
        elif op == join_op:
            rt = t
            while parent[rt] != rt:
                rt = parent[rt]
            i = t
            while parent[i] != rt:
                parent[i], i = rt, parent[i]
            rs = b
            while parent[rs] != rs:
                rs = parent[rs]
            i = b
            while parent[i] != rs:
                parent[i], i = rs, parent[i]
            if rt != rs:
                lab = label[rt]
                if rank[rt] < rank[rs]:
                    rt, rs = rs, rt
                elif rank[rt] == rank[rs]:
                    rank[rt] += 1
                parent[rs] = rt
                label[rt] = lab
            visited[t] = True
        elif op == halt_op:
            visited[t] = False
        else:  # step
            visited[t] = True

    st.op_index = op_index
    st.accesses += accesses
    st.epoch_hits += hits
    return hits


def _select_np(st, ops_np, a_np, b_np):
    """Self-select this shard's sub-stream with one vectorized mask."""
    if st.num_shards == 1:
        mask = None
        ops_sel, a_sel, b_sel = ops_np, a_np, b_np
    else:
        mask = (ops_np < OP_READ) | ((b_np % st.num_shards) == st.shard)
        ops_sel = ops_np[mask]
        a_sel = a_np[mask]
        b_sel = b_np[mask]
    # Materialize as stdlib arrays: the kernel iterates array objects
    # faster than numpy scalars.
    return (
        array("B", ops_sel.tobytes()),
        array("i", a_sel.astype(_np.int32, copy=False).tobytes()),
        array("i", b_sel.astype(_np.int32, copy=False).tobytes()),
    )


def _select_py(st, ops, a_col, b_col):
    """Per-event fallback selection (no numpy)."""
    if st.num_shards == 1:
        return ops, a_col, b_col
    sub_ops = array("B")
    sub_a = array("i")
    sub_b = array("i")
    ap_op = sub_ops.append
    ap_a = sub_a.append
    ap_b = sub_b.append
    read_op = OP_READ
    k = st.shard
    n_shards = st.num_shards
    for op, a, b in zip(ops, a_col, b_col):
        if op < read_op or b % n_shards == k:
            ap_op(op)
            ap_a(a)
            ap_b(b)
    return sub_ops, sub_a, sub_b


def _worker_ingest_shm(st, name: str, n: int) -> Tuple[int, int]:
    """Attach a shared-memory segment, ingest this shard's share."""
    seg = _shm.SharedMemory(name=name)
    a_off = _pad4(n)
    b_off = a_off + 4 * n
    try:
        if _np is not None:
            buf = seg.buf
            ops_np = _np.frombuffer(buf, dtype=_np.uint8, count=n, offset=0)
            a_np = _np.frombuffer(buf, dtype=_np.int32, count=n, offset=a_off)
            b_np = _np.frombuffer(buf, dtype=_np.int32, count=n, offset=b_off)
            try:
                ops, a_col, b_col = _select_np(st, ops_np, a_np, b_np)
            finally:
                # Release the buffer exports before seg.close().
                ops_np = a_np = b_np = buf = None
        else:
            view = seg.buf
            ops_all = array("B")
            a_all = array("i")
            b_all = array("i")
            ops_all.frombytes(view[0:n])
            a_all.frombytes(view[a_off:b_off])
            b_all.frombytes(view[b_off : b_off + 4 * n])
            view = None
            ops, a_col, b_col = _select_py(st, ops_all, a_all, b_all)
    finally:
        seg.close()
    return _shard_ingest(st, ops, a_col, b_col)


def _worker_ingest_trace(
    st,
    path: str,
    n: int,
    ops_off: int,
    a_off: int,
    b_off: int,
    native: bool,
) -> Tuple[int, int]:
    """Re-map a trace file and ingest this shard's share of its events.

    The columns are read straight off the page cache the parent already
    warmed; only the shard's selection is ever materialized.
    """
    with open(path, "rb") as handle:
        mm = _mmaplib.mmap(handle.fileno(), 0, access=_mmaplib.ACCESS_READ)
        try:
            if _np is not None:
                int_dt = _np.dtype(_np.int32)
                if not native:
                    int_dt = int_dt.newbyteorder()
                ops_np = _np.frombuffer(
                    mm, dtype=_np.uint8, count=n, offset=ops_off
                )
                a_np = _np.frombuffer(mm, dtype=int_dt, count=n, offset=a_off)
                b_np = _np.frombuffer(mm, dtype=int_dt, count=n, offset=b_off)
                if not native:
                    a_np = a_np.astype(_np.int32)
                    b_np = b_np.astype(_np.int32)
                try:
                    ops, a_col, b_col = _select_np(st, ops_np, a_np, b_np)
                finally:
                    ops_np = a_np = b_np = None
            else:
                ops_all = array("B")
                a_all = array("i")
                b_all = array("i")
                ops_all.frombytes(mm[ops_off : ops_off + n])
                a_all.frombytes(mm[a_off : a_off + 4 * n])
                b_all.frombytes(mm[b_off : b_off + 4 * n])
                if not native:
                    a_all.byteswap()
                    b_all.byteswap()
                ops, a_col, b_col = _select_py(st, ops_all, a_all, b_all)
        finally:
            mm.close()
    return _shard_ingest(st, ops, a_col, b_col)


def _segment_name(shard: int) -> str:
    return f"shard-{shard}.ckpt"


def _shard_to_blob(st) -> bytes:
    """Serialize one worker's detector state into an RPR2CKPT blob."""
    if type(st) is _DepaShardState:
        # The parent refuses first; this guard keeps a direct command
        # from silently writing a lattice2d-shaped segment.
        raise CheckpointError(
            "depa shard state cannot be checkpointed; only the "
            "lattice2d backend supports parallel checkpoints"
        )
    lids = array("q")
    rsup = array("i")
    wsup = array("i")
    for lid, (r, w) in st.cells.items():
        lids.append(lid)
        rsup.append(-1 if r is None else r)
        wsup.append(-1 if w is None else w)
    obj = {
        "kind": "shard",
        "shard": st.shard,
        "num_shards": st.num_shards,
        "op_index": st.op_index,
        "accesses": st.accesses,
        "epoch_hits": st.epoch_hits,
        "races": [list(r) for r in st.races],
    }
    sections = [
        ("parent", array("i", st.parent)),
        ("rank", array("i", st.rank)),
        ("label", array("i", st.label)),
        ("visited", array("B", st.visited)),
        ("cell_lid", lids),
        ("cell_r", rsup),
        ("cell_w", wsup),
        ("epoch_key", array("q", st.epoch.keys())),
        ("epoch_val", array("q", st.epoch.values())),
    ]
    return pack_state(obj, sections)


def _shard_from_blob(st: "_ShardState", blob: bytes) -> None:
    """Replace ``st`` with the state a blob captured; validated first."""
    head, arrays = unpack_state(blob)
    if head.get("kind") != "shard":
        raise CheckpointError(
            f"segment holds {head.get('kind')!r} state, not a shard"
        )
    if head.get("shard") != st.shard or head.get("num_shards") != st.num_shards:
        raise CheckpointError(
            f"segment belongs to shard {head.get('shard')}/"
            f"{head.get('num_shards')}, this worker is "
            f"{st.shard}/{st.num_shards}"
        )
    try:
        st.parent = list(arrays["parent"])
        st.rank = list(arrays["rank"])
        st.label = list(arrays["label"])
        st.visited = [bool(x) for x in arrays["visited"]]
        st.cells = {
            lid: [None if r < 0 else r, None if w < 0 else w]
            for lid, r, w in zip(
                arrays["cell_lid"], arrays["cell_r"], arrays["cell_w"]
            )
        }
        st.epoch = dict(zip(arrays["epoch_key"], arrays["epoch_val"]))
        st.races = [tuple(r) for r in head["races"]]
        st.op_index = head["op_index"]
        st.accesses = head["accesses"]
        st.epoch_hits = head["epoch_hits"]
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed shard segment: {exc!r}") from None


def _worker_main(shard: int, num_shards: int, backend: str, cmd_q, res_q) -> None:
    """Command loop of one shard worker process."""
    import traceback

    registry = MetricsRegistry()
    labels = {"engine": "parallel", "shard": str(shard)}
    c_events = registry.counter(
        "engine_worker_events_total",
        "events this shard worker ingested (after self-selection)",
        labels=labels,
    )
    c_batches = registry.counter(
        "engine_worker_batches_total",
        "payloads this shard worker ingested",
        labels=labels,
    )
    c_epoch = registry.counter(
        "engine_worker_epoch_hits_total",
        "accesses served from the access-epoch cache",
        labels=labels,
    )
    state = _make_shard_state(backend, shard, num_shards)
    while True:
        try:
            cmd = cmd_q.get()
        except (EOFError, KeyboardInterrupt):  # pragma: no cover
            break
        tag = cmd[0]
        if tag == "stop":
            break
        try:
            if tag == "shm":
                n_sel, hits = _worker_ingest_shm(state, cmd[1], cmd[2])
                c_events.inc(n_sel)
                c_batches.inc()
                c_epoch.inc(hits)
                res_q.put(("ok", shard, n_sel))
            elif tag == "trace":
                n_sel, hits = _worker_ingest_trace(state, *cmd[1:])
                c_events.inc(n_sel)
                c_batches.inc()
                c_epoch.inc(hits)
                res_q.put(("ok", shard, n_sel))
            elif tag == "collect":
                res_q.put(
                    (
                        "result",
                        shard,
                        state.race_tuples(),
                        state.accesses,
                        registry.export_state(),
                    )
                )
            elif tag == "peek":
                # Non-destructive snapshot: races so far, no registry
                # export and no state transition -- ingestion continues.
                res_q.put(
                    ("result", shard, state.race_tuples(), state.accesses)
                )
            elif tag == "snapshot":
                blob = _shard_to_blob(state)
                path = _os.path.join(cmd[1], _segment_name(shard))
                write_checkpoint_file(path, blob)
                res_q.put(
                    (
                        "result",
                        shard,
                        {
                            "file": _segment_name(shard),
                            "bytes": len(blob),
                            "crc": _zlib.crc32(blob),
                        },
                    )
                )
            elif tag == "restore":
                blob = read_checkpoint_file(
                    _os.path.join(cmd[1], _segment_name(shard))
                )
                _shard_from_blob(state, blob)
                res_q.put(("ok", shard, 0))
            elif tag == "reset":
                state.reset()
                res_q.put(("ok", shard, 0))
            else:
                res_q.put(("error", shard, f"unknown command {tag!r}"))
        except Exception:
            res_q.put(("error", shard, traceback.format_exc()))


# ---------------------------------------------------------------------------
# parent side
# ---------------------------------------------------------------------------


class ParallelShardedEngine:
    """Location-sharded detection over a persistent process pool.

    See the module docstring for the architecture.  Usage::

        with ParallelShardedEngine(4, interner=interner) as engine:
            engine.ingest(batch)          # or engine.ingest_trace(path)
            races = engine.races()        # collects + merges workers

    After :meth:`races` (or any other collecting accessor) the workers
    hold merged-out state; call :meth:`reset` to start a fresh run on
    the same pool (what the benchmark harness does between repeats).

    Parameters
    ----------
    num_workers:
        Shard worker processes; location ``lid`` is owned by worker
        ``lid % num_workers``.
    interner:
        Decodes location ids in :meth:`races` (optional).
    registry:
        Parent-side metrics home; worker registries are merged into it
        at collect time.  Defaults to the process registry.
    timeout:
        Seconds to wait on any single worker reply before declaring the
        pool wedged (:class:`DetectorError`).
    backend:
        Per-worker kernel, a name from
        :data:`~repro.engine.ingest.BACKENDS`: ``"lattice2d"`` (the
        default relaxed union-find kernel) or ``"depa"`` (the
        array-native segment kernel; requires fork-first serial
        streams and does not support checkpoints).
    """

    def __init__(
        self,
        num_workers: int,
        *,
        interner: Optional[LocationInterner] = None,
        registry: Optional[MetricsRegistry] = None,
        timeout: float = 60.0,
        backend: str = "lattice2d",
    ) -> None:
        from repro.engine.ingest import BACKENDS

        if num_workers < 1:
            raise ProgramError(
                f"need at least one worker, got {num_workers}"
            )
        if backend not in BACKENDS:
            raise ProgramError(
                f"unknown engine backend {backend!r}; "
                f"expected one of {BACKENDS}"
            )
        self.backend = backend
        self.num_workers = num_workers
        self.interner = interner
        self.timeout = timeout
        self.events_ingested = 0
        reg = registry if registry is not None else get_registry()
        self.registry = reg
        labels = {"engine": "parallel"}
        self._c_events = reg.counter(
            "engine_events_total", "events ingested", labels=labels
        )
        self._c_batches = reg.counter(
            "engine_batches_total", "batches ingested", labels=labels
        )
        self._c_races = reg.counter(
            "engine_races_total",
            "race reports found during ingestion",
            labels=labels,
        )
        self._c_routed = [
            reg.counter(
                "engine_shard_accesses_total",
                "accesses routed to this shard (lid % num_workers)",
                labels={**labels, "shard": str(k)},
            )
            for k in range(num_workers)
        ]
        self._c_lifecycle = reg.counter(
            "engine_shard_lifecycle_total",
            "lifecycle events replicated to every shard (counted once)",
            labels=labels,
        )
        # Parent-side mirror of the structural stream, for validation.
        self._n_threads = 1
        self._halted: List[bool] = [False]
        self._joined: List[bool] = [False]
        self._routed_events: List[int] = [0] * num_workers
        self._collected: Optional[List[tuple]] = None
        self._closed = False
        try:
            # Start the shared-memory resource tracker *before* forking:
            # workers then inherit it and their attach-time registrations
            # deduplicate against the parent's create-time one (a worker
            # that lazily spawns its own tracker would instead warn about
            # "leaked" segments the parent already unlinked).
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        except (ImportError, AttributeError, OSError):  # pragma: no cover
            pass
        methods = _mp.get_all_start_methods()
        ctx = _mp.get_context("fork" if "fork" in methods else None)
        self._workers: List[Any] = []
        self._cmd_qs: List[Any] = []
        self._res_qs: List[Any] = []
        try:
            for k in range(num_workers):
                cmd_q = ctx.Queue()
                res_q = ctx.Queue()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(k, num_workers, backend, cmd_q, res_q),
                    name=f"repro-shard-{k}",
                    daemon=True,
                )
                proc.start()
                self._workers.append(proc)
                self._cmd_qs.append(cmd_q)
                self._res_qs.append(res_q)
        except BaseException:
            self.close()
            raise

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "ParallelShardedEngine":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        """Stop the pool; idempotent.  The engine is unusable after."""
        if self._closed:
            return
        self._closed = True
        for cmd_q in self._cmd_qs:
            try:
                cmd_q.put(("stop",))
            except (OSError, ValueError):
                pass
        for proc in self._workers:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2.0)
        for q in self._cmd_qs + self._res_qs:
            try:
                q.close()
                q.cancel_join_thread()
            except (OSError, ValueError):
                pass

    def _require_open(self) -> None:
        if self._closed:
            raise ProgramError("parallel engine is closed")

    def _abort(self, why: str) -> "DetectorError":
        self.close()
        return DetectorError(why)

    def _recv(self, k: int) -> tuple:
        """One reply from worker ``k``, with liveness and deadline
        checks -- a dead or wedged worker raises instead of hanging."""
        deadline = _time.monotonic() + self.timeout
        proc = self._workers[k]
        res_q = self._res_qs[k]
        while True:
            try:
                msg = res_q.get(timeout=0.05)
                break
            except _queue.Empty:
                if not proc.is_alive():
                    raise self._abort(
                        f"parallel shard worker {k} died (exit code "
                        f"{proc.exitcode}); partial results discarded"
                    ) from None
                if _time.monotonic() > deadline:
                    raise self._abort(
                        f"parallel shard worker {k} gave no reply "
                        f"within {self.timeout}s"
                    ) from None
        if msg[0] == "error":
            raise self._abort(
                f"parallel shard worker {k} failed:\n{msg[2]}"
            )
        return msg

    def _broadcast(self, cmd: tuple) -> List[tuple]:
        self._require_open()
        for cmd_q in self._cmd_qs:
            cmd_q.put(cmd)
        return [self._recv(k) for k in range(self.num_workers)]

    # -- validation (the workers run a trusted kernel) -----------------------

    def _validate(self, ops, a_col, b_col, n: int) -> Tuple[List[int], int]:
        """Check stream well-formedness against the parent's structural
        mirror; commits the batch's forks/halts/joins on success.

        Raises exactly where the exact kernel would (unknown ids, use
        after halt, fork id skew, joining a running thread, double
        join) so the trusted worker kernel never sees garbage.  Returns
        per-shard access counts and the access total.
        """
        if _np is not None and n >= 64:
            if not isinstance(ops, _np.ndarray):
                ops = _np.frombuffer(ops, dtype=_np.uint8)
                a_col = _np.frombuffer(a_col, dtype=_np.int32)
                b_col = _np.frombuffer(b_col, dtype=_np.int32)
            return self._validate_np(ops, a_col, b_col, n)
        return self._validate_py(ops, a_col, b_col)

    def _validate_np(self, ops_np, a_np, b_np, n: int) -> Tuple[List[int], int]:
        pos = _np.arange(n, dtype=_np.int64)
        is_fork = ops_np == OP_FORK
        is_join = ops_np == OP_JOIN
        is_halt = ops_np == OP_HALT
        n0 = self._n_threads
        fork_pos = pos[is_fork]
        n1 = n0 + len(fork_pos)
        a64 = a_np.astype(_np.int64)
        if n and (a64.min() < 0 or a64.max() >= n1):
            bad = int(a64.min()) if a64.min() < 0 else int(a64.max())
            raise DetectorError(f"unknown thread id {bad}")
        kids = b_np[is_fork].astype(_np.int64)
        want = _np.arange(n0, n1, dtype=_np.int64)
        if not _np.array_equal(kids, want):
            at = int(_np.nonzero(kids != want)[0][0])
            raise DetectorError(
                f"fork id mismatch: interpreter says {int(kids[at])}, "
                f"detector allocated {int(want[at])}"
            )
        born = _np.full(n1, -1, dtype=_np.int64)
        born[n0:] = fork_pos
        halt_pos = _np.full(n1, n, dtype=_np.int64)
        if n0:
            halt_pos[:n0][_np.array(self._halted, dtype=bool)] = -1
        halt_actors = a64[is_halt]
        if len(halt_actors):
            uniq, counts = _np.unique(halt_actors, return_counts=True)
            if counts.max() > 1 or _np.any(halt_pos[uniq] != n):
                raise DetectorError("thread already halted")
            halt_pos[halt_actors] = pos[is_halt]
        used_before_born = born[a64] >= pos
        if _np.any(used_before_born):
            at = int(_np.nonzero(used_before_born)[0][0])
            raise DetectorError(f"unknown thread id {int(a64[at])}")
        after_halt = pos > halt_pos[a64]
        if _np.any(after_halt):
            at = int(_np.nonzero(after_halt)[0][0])
            raise DetectorError(f"thread {int(a64[at])} already halted")
        join_pos = pos[is_join]
        targets = b_np[is_join].astype(_np.int64)
        if len(targets):
            if targets.min() < 0 or targets.max() >= n1:
                raise DetectorError(
                    f"unknown thread id {int(targets.max())}"
                )
            if _np.any(halt_pos[targets] >= join_pos):
                at = int(
                    _np.nonzero(halt_pos[targets] >= join_pos)[0][0]
                )
                raise DetectorError(
                    f"joining running thread {int(targets[at])}"
                )
            uniq, counts = _np.unique(targets, return_counts=True)
            joined_np = _np.array(self._joined, dtype=bool)
            old = uniq[uniq < n0]
            if counts.max() > 1 or (len(old) and _np.any(joined_np[old])):
                raise DetectorError("thread joined twice")
        # Commit the structural effects.
        self._n_threads = n1
        self._halted.extend([False] * (n1 - n0))
        for t in halt_actors.tolist():
            self._halted[t] = True
        self._joined.extend([False] * (n1 - n0))
        for t in targets.tolist():
            self._joined[t] = True
        acc_mask = ops_np >= OP_READ
        acc_b = b_np[acc_mask]
        routed = _np.bincount(
            acc_b % self.num_workers, minlength=self.num_workers
        ).tolist()
        return routed, int(acc_mask.sum())

    def _validate_py(self, ops, a_col, b_col) -> Tuple[List[int], int]:
        """Per-event fallback validation (tiny batches, no numpy)."""
        n_threads = self._n_threads
        halted = list(self._halted)
        joined = list(self._joined)
        routed = [0] * self.num_workers
        accesses = 0
        read_op = OP_READ
        fork_op, join_op, halt_op = OP_FORK, OP_JOIN, OP_HALT
        for op, t, b in zip(ops, a_col, b_col):
            if t < 0 or t >= n_threads:
                raise DetectorError(f"unknown thread id {t}")
            if halted[t]:
                raise DetectorError(f"thread {t} already halted")
            if op >= read_op:
                accesses += 1
                routed[b % self.num_workers] += 1
            elif op == fork_op:
                if b != n_threads:
                    raise DetectorError(
                        f"fork id mismatch: interpreter says {b}, "
                        f"detector allocated {n_threads}"
                    )
                n_threads += 1
                halted.append(False)
                joined.append(False)
            elif op == join_op:
                if b < 0 or b >= n_threads:
                    raise DetectorError(f"unknown thread id {b}")
                if not halted[b]:
                    raise DetectorError(f"joining running thread {b}")
                if joined[b]:
                    raise DetectorError(f"thread {b} joined twice")
                joined[b] = True
            elif op == halt_op:
                halted[t] = True
        self._n_threads = n_threads
        self._halted = halted
        self._joined = joined
        return routed, accesses

    # -- ingestion -----------------------------------------------------------

    def ingest(self, batch: EventBatch) -> int:
        """Validate one batch, ship it through shared memory, await all
        shard acks; returns the number of events consumed."""
        self._require_open()
        if self._collected is not None:
            raise ProgramError(
                "parallel engine already collected; call reset() first"
            )
        n = len(batch)
        if n == 0:
            self._c_batches.inc()
            return 0
        routed, accesses = self._validate(batch.ops, batch.a, batch.b, n)
        a_off = _pad4(n)
        seg = _shm.SharedMemory(create=True, size=a_off + 8 * n)
        try:
            buf = seg.buf
            buf[0:n] = memoryview(batch.ops).cast("B")
            buf[a_off : a_off + 4 * n] = memoryview(batch.a).cast("B")
            buf[a_off + 4 * n : a_off + 8 * n] = memoryview(batch.b).cast(
                "B"
            )
            buf = None
            self._broadcast(("shm", seg.name, n))
        finally:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        self._account(n, routed, accesses)
        return n

    def ingest_all(self, batches: Iterable[EventBatch]) -> int:
        """Process a sequence of batches; returns total events."""
        return sum(self.ingest(batch) for batch in batches)

    def ingest_trace(self, path: str) -> int:
        """Feed an RPR2TRC file without materializing it in the parent.

        The parent maps the file, validates the columns through
        zero-copy views, and broadcasts only the column offsets; each
        worker re-maps the file and self-selects its share.  Adopts the
        trace's location table when the engine has no interner yet.
        """
        self._require_open()
        if self._collected is not None:
            raise ProgramError(
                "parallel engine already collected; call reset() first"
            )
        with map_trace(path) as mapped:
            if self.interner is None:
                self.interner = mapped.interner
            n = mapped.n_events
            if n == 0:
                self._c_batches.inc()
                return 0
            if _np is None or not mapped.native:
                # Rare paths (no numpy / foreign-endian file): validate
                # on a materialized batch, still feed workers by offset.
                batch = mapped.batch()
                routed, accesses = self._validate(
                    batch.ops, batch.a, batch.b, n
                )
            else:
                ops_v, a_v, b_v = mapped.columns()
                try:
                    routed, accesses = self._validate_np(
                        _np.frombuffer(ops_v, dtype=_np.uint8),
                        _np.frombuffer(a_v, dtype=_np.int32),
                        _np.frombuffer(b_v, dtype=_np.int32),
                        n,
                    )
                finally:
                    ops_v.release()
                    a_v.release()
                    b_v.release()
            self._broadcast(
                (
                    "trace",
                    path,
                    n,
                    mapped.ops_offset,
                    mapped.a_offset,
                    mapped.b_offset,
                    mapped.native,
                )
            )
        self._account(n, routed, accesses)
        return n

    def _account(self, n: int, routed: List[int], accesses: int) -> None:
        self.events_ingested += n
        self._c_events.inc(n)
        self._c_batches.inc()
        self._c_lifecycle.inc(n - accesses)
        for k, cnt in enumerate(routed):
            self._routed_events[k] += cnt
            self._c_routed[k].inc(cnt)

    # -- results -------------------------------------------------------------

    def _collect(self) -> List[tuple]:
        """Gather every worker's races, counters and registry export;
        idempotent until :meth:`reset`."""
        if self._collected is None:
            results = self._broadcast(("collect",))
            results.sort(key=lambda msg: msg[1])  # deterministic: by shard
            self._collected = results
            for msg in results:
                self.registry.merge_state(msg[4])
                self._c_races.inc(len(msg[2]))
        return self._collected

    def _decode_reports(self, results: List[tuple]) -> List[RaceReport]:
        location = self.interner.location if self.interner else None
        out: List[RaceReport] = []
        for msg in results:
            for loc, task, kind, prior_kind, prior_repr, opi in msg[2]:
                out.append(
                    RaceReport(
                        loc=loc if location is None else location(loc),
                        task=task,
                        kind=_READ if kind == 0 else _WRITE,
                        prior_kind=_READ if prior_kind == 0 else _WRITE,
                        prior_repr=prior_repr,
                        op_index=opi,
                    )
                )
        return out

    def races(self) -> List[RaceReport]:
        """All shards' reports, merged in shard order (decoded when an
        interner is available).

        ``op_index`` values are per-worker sub-stream positions, not
        global ones -- compare reports across engines by
        ``(task, loc, kind)``, exactly like the sharded serial engine.
        """
        return self._decode_reports(self._collect())

    def peek_races(self) -> List[RaceReport]:
        """Snapshot of the reports found *so far*, in shard order.

        Unlike :meth:`races` this does not collect: worker counters
        stay put and ingestion may continue afterwards.  The streaming
        server calls this after every batch to compute race deltas
        without ending the run.
        """
        self._require_open()
        if self._collected is not None:
            return self._decode_reports(self._collected)
        results = self._broadcast(("peek",))
        results.sort(key=lambda msg: msg[1])  # deterministic: by shard
        return self._decode_reports(results)

    def routing_counts(self) -> List[int]:
        """Parent-side per-shard access routing counts."""
        return list(self._routed_events)

    def worker_access_counts(self) -> List[int]:
        """Worker-side per-shard access counts (what each worker's
        kernel actually processed).  Equal to :meth:`routing_counts` on
        every healthy run -- the differential harness asserts it."""
        return [msg[3] for msg in self._collect()]

    def reset(self) -> None:
        """Clear all detector state, keeping the pool alive (between
        benchmark repeats)."""
        self._broadcast(("reset",))
        self._collected = None
        self._n_threads = 1
        self._halted = [False]
        self._joined = [False]
        self._routed_events = [0] * self.num_workers
        self.events_ingested = 0

    # -- checkpoint / restore ------------------------------------------------

    _MANIFEST = "manifest.json"
    _MANIFEST_FORMAT = "rpr2ckpt-parallel"
    _MANIFEST_VERSION = 1

    def save_checkpoint(
        self, directory: str, *, meta: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        """Coordinated checkpoint of the whole pool into ``directory``.

        Ingestion is synchronous (every :meth:`ingest` waits for all
        shard acks), so the broadcast itself is the barrier: when every
        worker has answered the ``snapshot`` command there are no
        in-flight events anywhere.  Each worker durably writes its own
        ``shard-<k>.ckpt`` segment; the parent writes its structural
        mirror as ``parent.ckpt`` and then commits the checkpoint by
        atomically writing ``manifest.json``, which records every
        segment's size and CRC32.  A directory without a complete,
        consistent manifest is not a checkpoint.

        Returns the manifest dict.  Pools running the ``depa`` backend
        refuse with a typed :class:`~repro.errors.CheckpointError`
        (never a silent fallback): the depa interval columns have no
        checkpoint codec yet.
        """
        self._require_open()
        if self.backend != "lattice2d":
            raise CheckpointError(
                f"parallel {self.backend!r} shard state cannot be "
                "checkpointed; only the lattice2d backend supports "
                "parallel checkpoints"
            )
        if self._collected is not None:
            raise ProgramError(
                "parallel engine already collected; checkpoint before "
                "races() or call reset() first"
            )
        _os.makedirs(directory, exist_ok=True)
        results = self._broadcast(("snapshot", directory))
        results.sort(key=lambda msg: msg[1])
        segments = [
            {"shard": msg[1], **msg[2]} for msg in results
        ]
        parent_blob = pack_state(
            {
                "kind": "parent",
                "num_workers": self.num_workers,
                "n_threads": self._n_threads,
                "events_ingested": self.events_ingested,
                "routed": list(self._routed_events),
                "interner": (
                    None
                    if self.interner is None
                    else [
                        encode_location(loc)
                        for loc in self.interner.locations()
                    ]
                ),
                "meta": meta if meta is not None else {},
            },
            [
                ("halted", array("B", self._halted)),
                ("joined", array("B", self._joined)),
            ],
        )
        write_checkpoint_file(
            _os.path.join(directory, "parent.ckpt"), parent_blob
        )
        manifest = {
            "format": self._MANIFEST_FORMAT,
            "version": self._MANIFEST_VERSION,
            "num_workers": self.num_workers,
            "backend": self.backend,
            "events_ingested": self.events_ingested,
            "segments": segments,
            "parent": {
                "file": "parent.ckpt",
                "bytes": len(parent_blob),
                "crc": _zlib.crc32(parent_blob),
            },
        }
        write_checkpoint_file(
            _os.path.join(directory, self._MANIFEST),
            _json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8"),
        )
        return manifest

    @classmethod
    def _read_manifest(cls, directory: str) -> Dict[str, Any]:
        raw = read_checkpoint_file(_os.path.join(directory, cls._MANIFEST))
        try:
            manifest = _json.loads(raw.decode("utf-8"))
        except ValueError as exc:
            raise CheckpointError(
                f"corrupt parallel checkpoint manifest: {exc}"
            ) from None
        if (
            not isinstance(manifest, dict)
            or manifest.get("format") != cls._MANIFEST_FORMAT
        ):
            raise CheckpointError(
                f"{directory!r} does not hold a parallel checkpoint"
            )
        if manifest.get("version") != cls._MANIFEST_VERSION:
            raise CheckpointError(
                f"unsupported parallel checkpoint version "
                f"{manifest.get('version')}"
            )
        return manifest

    @classmethod
    def _verify_segment(
        cls, directory: str, entry: Dict[str, Any]
    ) -> bytes:
        blob = read_checkpoint_file(_os.path.join(directory, entry["file"]))
        if len(blob) != entry["bytes"] or _zlib.crc32(blob) != entry["crc"]:
            raise CheckpointError(
                f"checkpoint segment {entry['file']!r} does not match its "
                f"manifest (truncated or corrupted)"
            )
        return blob

    @classmethod
    def restore(
        cls,
        directory: str,
        *,
        registry: Optional[MetricsRegistry] = None,
        timeout: float = 60.0,
    ) -> "ParallelShardedEngine":
        """Re-spawn a pool from a coordinated checkpoint.

        Every segment is verified against the manifest's size and CRC32
        *before* any worker loads it (and each worker re-validates its
        own segment's container CRC on read); any mismatch raises
        :class:`~repro.errors.CheckpointError` -- a damaged checkpoint
        is never silently loaded.  The restored engine continues exactly
        where :meth:`save_checkpoint` left off.
        """
        manifest = cls._read_manifest(directory)
        backend = manifest.get("backend", "lattice2d")
        if backend != "lattice2d":
            raise CheckpointError(
                f"parallel checkpoint claims backend {backend!r}; only "
                "lattice2d pools can be checkpointed, so this manifest "
                "was not written by save_checkpoint"
            )
        try:
            num_workers = int(manifest["num_workers"])
            segment_entries = {
                int(e["shard"]): e for e in manifest["segments"]
            }
            parent_entry = manifest["parent"]
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"malformed parallel checkpoint manifest: {exc!r}"
            ) from None
        if sorted(segment_entries) != list(range(num_workers)):
            raise CheckpointError(
                f"manifest lists shards {sorted(segment_entries)} for "
                f"{num_workers} workers"
            )
        parent_blob = cls._verify_segment(directory, parent_entry)
        for k in range(num_workers):
            cls._verify_segment(directory, segment_entries[k])
        head, arrays = unpack_state(parent_blob)
        if head.get("kind") != "parent":
            raise CheckpointError(
                f"parent segment holds {head.get('kind')!r} state"
            )
        interner = None
        if head.get("interner") is not None:
            interner = LocationInterner()
            for encoded in head["interner"]:
                interner.intern(decode_location(encoded))
        engine = cls(
            num_workers,
            interner=interner,
            registry=registry,
            timeout=timeout,
        )
        try:
            engine._n_threads = int(head["n_threads"])
            engine._halted = [bool(x) for x in arrays["halted"]]
            engine._joined = [bool(x) for x in arrays["joined"]]
            engine._routed_events = [int(x) for x in head["routed"]]
            engine.events_ingested = int(head["events_ingested"])
            if not (
                len(engine._halted)
                == len(engine._joined)
                == engine._n_threads
            ):
                raise CheckpointError(
                    "parent segment thread tables have mismatched lengths"
                )
            engine._broadcast(("restore", directory))
        except CheckpointError:
            engine.close()
            raise
        except (KeyError, TypeError, ValueError) as exc:
            engine.close()
            raise CheckpointError(
                f"malformed parent segment: {exc!r}"
            ) from None
        except BaseException:
            engine.close()
            raise
        return engine
