"""Shared machinery for the engine throughput benchmark.

Both entry points -- ``repro-race bench-engine`` and
``benchmarks/bench_engine_batch.py`` -- run this module, so the CLI
table and the checked-in benchmark can never drift apart.

The measured contenders, slowest to fastest:

* ``replay``    -- the pre-engine production path:
  :func:`repro.forkjoin.replay.replay_events` (per-event objects plus
  full structural validation);
* ``per-event`` -- per-event objects, no validation: an isinstance
  dispatch loop calling the detector's ``on_*`` methods directly;
* ``batched``   -- :class:`~repro.engine.ingest.BatchEngine` over
  columnar batches with interned locations (metrics registry live, as
  in production);
* ``batched-noobs`` -- the same engine bound to the disabled
  :data:`~repro.obs.registry.NULL_REGISTRY`, isolating what the
  per-batch counters cost (the gate keeps the ratio within 5%);
* ``depa``      -- :class:`~repro.engine.ingest.BatchEngine` with the
  array-native ``depa`` backend: the numpy segment kernel over
  :class:`~repro.detectors.depa.DePaDetector`'s flat columns
  (cross-checked against the union-find referee every run);
* ``predict``   -- :class:`~repro.engine.ingest.BatchEngine` in sound
  race-prediction mode (:class:`~repro.detectors.shb.SHBDetector`):
  vector-clock epochs plus per-location candidate windows, reporting
  every feasibly-reorderable racing pair.  Strictly more work per
  access than the observed-order paths; its soundness invariant
  (predicted races include everything lattice2d *and* depa observe) is
  cross-checked every run and recorded as ``differential.
  predict_sound``;
* ``sharded``   -- :class:`~repro.engine.ingest.ShardedBatchEngine`
  (measures the lifecycle-replication overhead sharding pays for its
  partitioning; it is not expected to win on one core);
* ``parallel``  -- :class:`~repro.engine.parallel.ParallelShardedEngine`
  with ``jobs`` worker processes over shared memory.  The pool is built
  once and reset between repeats (resetting is bookkeeping, not
  ingestion), and each timed run ships the whole batch in one payload
  -- the engine's intended feed.  Its per-shard kernel drops the
  per-event checks the parent pre-validates, which is why it can beat
  ``batched`` even on a single core.
* ``depa_parallel`` -- the same process pool running the array-native
  ``depa`` kernel in every worker (``backend="depa"``): each worker
  reconstructs the depa columns from the shared-memory payload and
  runs the vectorized segment kernel over its sub-stream.  Timed
  interleaved with ``depa`` so the ``speedup_depa_parallel_vs_depa``
  ratio is drift-free; cross-checked against the serial lattice2d
  referee every run (``differential.depa_parallel_agrees``).

Every run also differentially cross-checks verdicts across the paths
(and across the lattice2d/fasttrack/spbags trio) before reporting, so
a throughput number from a detector that stopped detecting is
impossible by construction.
"""

from __future__ import annotations

import gc
import io
import os
import statistics
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.compress import compress as compress_trace, write_tracez
from repro.core.detector import RaceDetector2D
from repro.engine.batch import BatchBuilder, EventBatch, LocationInterner
from repro.engine.differential import (
    DEFAULT_DETECTORS,
    cross_check_backend,
    cross_check_compressed,
    cross_check_parallel,
    cross_check_predict,
    cross_check_sharded,
    replay_differential,
)
from repro.engine.ingest import BatchEngine, ShardedBatchEngine
from repro.engine.parallel import ParallelShardedEngine
from repro.engine.tracefile import write_trace
from repro.obs.registry import NULL_REGISTRY
from repro.events import (
    Event,
    ForkEvent,
    HaltEvent,
    JoinEvent,
    ReadEvent,
    StepEvent,
    WriteEvent,
)
from repro.workloads.racegen import bulk_access_program, loop_program

__all__ = [
    "build_workload",
    "build_loop_workload",
    "capture",
    "drive_per_event",
    "run_engine_benchmark",
    "format_record",
]


def build_workload(
    accesses: int = 100_000,
    *,
    fanout: int = 8,
    accesses_per_task: int = 250,
    racy: bool = True,
) -> Callable:
    """The benchmark's standard traffic: a ``racegen`` bulk program
    sized to roughly ``accesses`` memory accesses (SP-shaped, so the
    differential trio including ``spbags`` applies)."""
    per_round = fanout * accesses_per_task
    rounds = max(1, accesses // per_round)
    racy_rounds = range(0, rounds, 5) if racy else ()
    return bulk_access_program(
        rounds,
        fanout,
        accesses_per_task,
        racy_rounds=racy_rounds,
    )


def build_loop_workload(
    accesses: int = 100_000,
    *,
    fanout: int = 4,
    pattern: int = 64,
    racy: bool = True,
) -> Callable:
    """The compressed path's standard traffic: a ``racegen`` loop
    program sized to roughly ``accesses`` memory accesses.  The
    ``pattern`` default divides the compressor's block width, so the
    interior of every worker's run dedups to a handful of unique
    blocks (the workload the ``--loops`` CLI knobs expose)."""
    loops = max(1, accesses // (fanout * pattern))
    return loop_program(fanout, loops, pattern, racy=racy)


def capture(body: Callable):
    """Run ``body`` once, capturing the event list and the columnar
    batch in the same execution; returns ``(events, batch, interner)``."""
    from repro.forkjoin.interpreter import run

    builder = BatchBuilder()
    ex = run(body, observers=[builder], record_events=True)
    assert ex.events is not None
    return ex.events, builder.batch, builder.interner


def drive_per_event(events: Sequence[Event], detector: Any) -> None:
    """The unbatched reference loop: one dispatch per event object."""
    for ev in events:
        if isinstance(ev, ReadEvent):
            detector.on_read(ev.task, ev.loc, ev.label)
        elif isinstance(ev, WriteEvent):
            detector.on_write(ev.task, ev.loc, ev.label)
        elif isinstance(ev, ForkEvent):
            detector.on_fork(ev.parent, ev.child)
        elif isinstance(ev, JoinEvent):
            detector.on_join(ev.joiner, ev.joined)
        elif isinstance(ev, HaltEvent):
            detector.on_halt(ev.task)
        elif isinstance(ev, StepEvent):
            detector.on_step(ev.task)


def _best_of(
    repeats: int,
    fn: Callable[[], Any],
    pre: Optional[Callable[[], Any]] = None,
) -> float:
    """Min wall time over ``repeats`` timed runs, after one untimed
    warm-up run and with the cyclic GC paused (timeit's discipline --
    a collection triggered mid-run would bill one contender for
    whatever garbage the process accumulated beforehand).  ``pre`` runs
    untimed before every run -- the reset hook for contenders that
    reuse state across repeats (the parallel engine's persistent
    pool)."""
    if pre is not None:
        pre()
    fn()
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        best = float("inf")
        for _ in range(max(1, repeats)):
            if pre is not None:
                pre()
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def _paired_samples(
    repeats: int, fa: Callable[[], Any], fb: Callable[[], Any]
) -> List[tuple]:
    """Interleaved a/b/a/b wall-time samples, so slow drift (frequency
    scaling, cache pressure from the surrounding process) hits both
    sides equally.  Returns the list of ``(a_seconds, b_seconds)``
    pairs: callers take the min for a headline number and the median
    per-pair ratio for the hysteresis gates, which a single noisy
    repeat cannot move."""
    fa()
    fb()
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        samples = []
        for _ in range(max(1, repeats)):
            t0 = time.perf_counter()
            fa()
            t1 = time.perf_counter()
            fb()
            t2 = time.perf_counter()
            samples.append((t1 - t0, t2 - t1))
    finally:
        if was_enabled:
            gc.enable()
    return samples


def _best_of_paired(
    repeats: int, fa: Callable[[], Any], fb: Callable[[], Any]
) -> tuple:
    """Min wall time per side over interleaved samples (see
    :func:`_paired_samples`).  Used for the metrics-overhead ratio,
    where the two timings are only meaningful relative to each
    other."""
    samples = _paired_samples(repeats, fa, fb)
    return min(a for a, _ in samples), min(b for _, b in samples)


def run_engine_benchmark(
    *,
    accesses: int = 100_000,
    fanout: int = 8,
    accesses_per_task: int = 250,
    racy: bool = True,
    shards: int = 4,
    batch_size: int = 8192,
    repeats: int = 3,
    jobs: int = 4,
    loop_fanout: int = 4,
    loop_pattern: int = 64,
    detectors: Sequence[str] = DEFAULT_DETECTORS,
) -> Dict[str, Any]:
    """Measure every ingestion path on one workload; return the record.

    The returned dict is what ``BENCH_engine.json`` stores: workload
    shape, per-path wall seconds and events/sec, the batched-over-
    per-event and parallel-over-batched speedups, race counts, and the
    differential verdicts.
    """
    body = build_workload(
        accesses,
        fanout=fanout,
        accesses_per_task=accesses_per_task,
        racy=racy,
    )
    events, batch, interner = capture(body)

    def run_replay():
        from repro.forkjoin.replay import replay_events

        det = RaceDetector2D()
        # replay_events drives observer-protocol objects; RaceDetector2D
        # itself satisfies it (on_root checks the dense id).
        replay_events(events, observers=[det])
        return det

    def run_per_event():
        det = RaceDetector2D()
        det.spawn_root()
        drive_per_event(events, det)
        return det

    def run_batched():
        # Default registry: metrics stay ON for the headline number, so
        # the >=2x gate is met with instrumentation in place.
        engine = BatchEngine(interner=interner)
        engine.ingest_all(batch.slices(batch_size))
        return engine

    def run_batched_noobs():
        engine = BatchEngine(interner=interner, registry=NULL_REGISTRY)
        engine.ingest_all(batch.slices(batch_size))
        return engine

    def run_sharded():
        engine = ShardedBatchEngine(shards, interner=interner)
        engine.ingest_all(batch.slices(batch_size))
        return engine

    def run_depa():
        engine = BatchEngine(interner=interner, backend="depa")
        engine.ingest_all(batch.slices(batch_size))
        return engine

    def run_predict():
        engine = BatchEngine(interner=interner, predict=True)
        engine.ingest_all(batch.slices(batch_size))
        return engine

    batched_s, batched_noobs_s = _best_of_paired(
        repeats, run_batched, run_batched_noobs
    )
    # depa's headline is the ratio against batched, so the two are
    # timed interleaved as well -- drift hits both sides equally.  The
    # per-pair samples also feed the median ratio, which the shape gate
    # asserts the hard target on (the single best-of ratio only has to
    # clear a 2.8x hysteresis floor, so one noisy repeat cannot flip
    # CI).
    depa_samples = _paired_samples(max(repeats, 5), run_batched, run_depa)
    batched_b = min(a for a, _ in depa_samples)
    depa_s = min(b for _, b in depa_samples)
    depa_ratio_median = statistics.median(
        a / b for a, b in depa_samples
    )
    timings = {
        "replay": _best_of(repeats, run_replay),
        "per-event": _best_of(repeats, run_per_event),
        "batched": min(batched_s, batched_b),
        "batched-noobs": batched_noobs_s,
        "depa": depa_s,
        "predict": _best_of(repeats, run_predict),
        "sharded": _best_of(repeats, run_sharded),
    }

    # The parallel engine keeps a persistent worker pool, so the pool
    # is built (and torn down) outside the timed region and reset
    # between repeats.  It ingests the whole batch in one payload: one
    # shared-memory publish per run is the engine's intended feed, and
    # slicing it into per-8192 round trips would bench the IPC, not the
    # kernel.  Metrics stay ON (default registry), matching the batched
    # headline; the parallel engine's counters are per-batch, not
    # per-event, so they cost one increment per run.
    with ParallelShardedEngine(jobs, interner=interner) as par_engine:

        def run_parallel():
            par_engine.ingest(batch)
            return par_engine.races()

        # Repeats are nearly free once the pool exists (reset is one
        # queue round trip), so take the min over a few extra samples:
        # the contender's number should reflect the kernel, not one
        # noisy scheduling of 5 processes on a shared box.
        timings["parallel"] = _best_of(
            max(repeats, 5), run_parallel, pre=par_engine.reset
        )
    # The depa-native pool: same discipline (persistent pool, reset
    # between repeats, whole batch in one payload).
    with ParallelShardedEngine(
        jobs, interner=interner, backend="depa"
    ) as depa_pool:

        def run_depa_parallel():
            depa_pool.ingest(batch)
            return depa_pool.races()

        timings["depa_parallel"] = _best_of(
            max(repeats, 5), run_depa_parallel, pre=depa_pool.reset
        )
    n = len(batch)

    # -- the compressed path ------------------------------------------------
    # Measured on its natural traffic: the deliberately repetitive
    # ``racegen`` loop workload (same access budget), where block dedup
    # actually bites.  Raw batched ingestion over the expanded stream
    # vs memoized ingestion over the compressed form, interleaved so
    # drift hits both sides equally.
    loop_body = build_loop_workload(
        accesses, fanout=loop_fanout, pattern=loop_pattern, racy=racy
    )
    _, loop_batch, loop_interner = capture(loop_body)
    ctrace = compress_trace(loop_batch, registry=NULL_REGISTRY)

    def run_batched_loops():
        engine = BatchEngine(interner=loop_interner)
        engine.ingest_all(loop_batch.slices(batch_size))
        return engine

    def run_compressed():
        # A fresh engine per run: the memo starts cold every repeat, so
        # the timing includes the scan-and-record misses.
        engine = BatchEngine(interner=loop_interner)
        engine.ingest_compressed(ctrace)
        return engine

    comp_samples = _paired_samples(
        max(repeats, 5), run_batched_loops, run_compressed
    )
    loop_timings = {
        "batched_loops": min(a for a, _ in comp_samples),
        "compressed": min(b for _, b in comp_samples),
    }
    compressed_ratio_median = statistics.median(
        a / b for a, b in comp_samples
    )
    n_loop = len(loop_batch)
    raw_buf = io.BytesIO()
    write_trace(raw_buf, loop_batch, loop_interner)
    z_buf = io.BytesIO()
    write_tracez(z_buf, ctrace, loop_interner)
    raw_bytes = len(raw_buf.getvalue())
    z_bytes = len(z_buf.getvalue())
    memo_engine = run_compressed()
    memo = memo_engine._memo
    compressed_races = memo_engine.races()
    comp_agree_loops, _, _ = cross_check_compressed(
        loop_batch, loop_interner
    )
    # The bulk workload barely repeats, so this leg checks the memo's
    # fallback discipline rather than its cache.
    comp_agree_bulk, _, _ = cross_check_compressed(batch, interner)
    compressed_agrees = comp_agree_loops and comp_agree_bulk

    # Correctness gates: the fast paths must report exactly what the
    # reference does, and the detector trio must agree per access.
    # (Labels are dropped on the batched path, so compare everything
    # except the label.)
    def key(r):
        return (r.loc, r.task, r.kind, r.prior_kind, r.prior_repr, r.op_index)

    per_event_races = run_per_event().races
    batched_races = run_batched().races()
    if [key(r) for r in batched_races] != [key(r) for r in per_event_races]:
        raise AssertionError(
            "batched ingestion changed verdicts: "
            f"{len(batched_races)} vs {len(per_event_races)} reports"
        )
    depa_agree, _, depa_races = cross_check_backend(
        batch, interner, backend="depa", batch_size=batch_size
    )
    shard_agree, _, sharded_races = cross_check_sharded(
        batch, interner, num_shards=shards, batch_size=batch_size
    )
    parallel_agree, _, parallel_races = cross_check_parallel(
        batch, interner, num_workers=jobs
    )
    depa_par_agree, _, depa_par_races = cross_check_parallel(
        batch, interner, num_workers=jobs, backend="depa"
    )
    predict_sound, predicted_races, _ = cross_check_predict(
        batch, interner, batch_size=batch_size
    )
    diff = replay_differential(batch, interner, detectors)

    record: Dict[str, Any] = {
        "bench": "engine_batch",
        "workload": {
            "generator": "racegen.bulk_access_program",
            "accesses": batch.access_count(),
            "events": n,
            "tasks": 1 + sum(1 for ev in events if isinstance(ev, ForkEvent)),
            "fanout": fanout,
            "accesses_per_task": accesses_per_task,
            "racy": racy,
            "locations": len(interner),
        },
        "batch_size": batch_size,
        "shards": shards,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "workload_loops": {
            "generator": "racegen.loop_program",
            "accesses": loop_batch.access_count(),
            "events": n_loop,
            "fanout": loop_fanout,
            "pattern": loop_pattern,
            "unique_blocks": len(ctrace.blocks),
            "expanded_blocks": ctrace.block_count(),
            "block_width": ctrace.block_width,
            "raw_bytes": raw_bytes,
            "compressed_bytes": z_bytes,
        },
        "seconds": {
            **{k: round(v, 6) for k, v in timings.items()},
            **{k: round(v, 6) for k, v in loop_timings.items()},
        },
        "events_per_sec": {
            **{k: round(n / v) for k, v in timings.items() if v > 0},
            **{
                k: round(n_loop / v)
                for k, v in loop_timings.items()
                if v > 0
            },
        },
        "compression_ratio": round(raw_bytes / z_bytes, 3),
        "speedup_compressed_vs_batched": round(
            loop_timings["batched_loops"] / loop_timings["compressed"], 3
        ),
        "speedup_compressed_vs_batched_median": round(
            compressed_ratio_median, 3
        ),
        "memo": {
            "hits": memo.hits,
            "misses": memo.misses,
            "fallbacks": memo.fallbacks,
        },
        "speedup_batched_vs_per_event": round(
            timings["per-event"] / timings["batched"], 3
        ),
        "speedup_batched_vs_replay": round(
            timings["replay"] / timings["batched"], 3
        ),
        "speedup_parallel_vs_batched": round(
            timings["batched"] / timings["parallel"], 3
        ),
        "speedup_depa_vs_batched": round(
            timings["batched"] / timings["depa"], 3
        ),
        "speedup_depa_vs_batched_median": round(depa_ratio_median, 3),
        "speedup_depa_parallel_vs_depa": round(
            timings["depa"] / timings["depa_parallel"], 3
        ),
        # How much the per-batch counters cost when metrics are live,
        # and what a disabled (null) registry costs relative to that.
        # Both engines run the same kernels; the ratio should hug 1.0.
        "metrics_overhead_vs_disabled": round(
            timings["batched"] / timings["batched-noobs"], 3
        )
        if timings["batched-noobs"] > 0
        else None,
        "races": {
            "per_event": len(per_event_races),
            "batched": len(batched_races),
            "depa": len(depa_races),
            "predict": len(predicted_races),
            "sharded": len(sharded_races),
            "parallel": len(parallel_races),
            "depa_parallel": len(depa_par_races),
            "compressed": len(compressed_races),
        },
        "differential": {
            "detectors": list(diff.detectors),
            "races": diff.races,
            "divergences": len(diff.divergences),
            "depa_agrees": depa_agree,
            "sharded_agrees": shard_agree,
            "parallel_agrees": parallel_agree,
            "depa_parallel_agrees": depa_par_agree,
            "predict_sound": predict_sound,
            "compressed_agrees": compressed_agrees,
        },
        "versions": _versions(),
    }
    return record


def _versions() -> Dict[str, Any]:
    """Interpreter and numpy versions, for cross-host comparability of
    the committed record (absolute ev/s gates mean little without
    them)."""
    import platform

    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is baked in
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
    }


def format_record(record: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Rows for :func:`repro.bench.tables.format_table`."""
    base = record["seconds"]["per-event"]
    # The loops contenders run a different (loop-shaped) workload, so
    # their reference is the raw batched ingestion of that same stream,
    # not the main workload's per-event loop.
    loop_base = record["seconds"].get("batched_loops")
    rows = []
    for name, secs in record["seconds"].items():
        if name in ("batched_loops", "compressed") and loop_base:
            ratio = f"{loop_base / secs:.2f}x vs batched_loops"
        else:
            ratio = f"{base / secs:.2f}x"
        rows.append(
            {
                "path": name,
                "seconds": round(secs, 4),
                "events/s": record["events_per_sec"][name],
                "vs per-event": ratio,
            }
        )
    return rows
