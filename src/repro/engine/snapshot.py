"""Versioned, CRC-checked checkpoints of detector state.

The paper's whole point -- Θ(1) shadow words per location plus Θ(1)
union-find words per thread (Theorems 4-5) -- is what makes durable
snapshots *tractable*: the complete detector state is a compact,
well-defined cut, unlike a vector-clock detector whose history grows
with the thread count.  This module serializes that cut:

* the union-find forest (``parent`` / ``rank`` / ``label``) including
  its operation counters,
* the per-thread ``visited`` / ``halted`` / ``joined`` flags,
* the shadow map of ``[read_sup, write_sup]`` cells (plus the space
  accounting peak),
* the batch kernel's access-epoch cache,
* the race reports found so far, the op index, the engine's event
  counter, and (when present) the location interner.

Container layout (all header integers little-endian)::

    offset  size  field
    0       8     magic  b"RPR2CKPT"
    8       1     endianness of the array payload (0=little, 1=big)
    9       3     reserved (zero)
    12      4     version (currently 1)
    16      8     payload length P
    24      4     CRC32 of bytes [0, 24) *and* the payload -- covering
                  the header means a flipped endian flag or reserved
                  byte is caught, not just payload damage
    28      P     payload: u32 JSON header length, the UTF-8 JSON
                  header, then the raw array sections in the order the
                  header's ``sections`` list declares them

The JSON header carries every scalar plus a ``sections`` table of
``[name, typecode, count]`` triples sizing the binary sections that
follow, so a reader validates *every* length against the actual bytes
before allocating.  Any mismatch -- bad magic, unsupported version, CRC
failure, truncation, a header that lies about lengths -- raises
:class:`~repro.errors.CheckpointError`; a damaged checkpoint is never
silently loaded.

Writes are crash-safe: the blob goes to a temporary file in the target
directory, is fsync'd, atomically renamed over the destination, and the
directory is fsync'd, so a reader never observes a torn checkpoint --
it sees either the old complete file or the new complete file.

:func:`state_digest` captures an engine's full state as one comparable
value; the test suite and the checkpoint benchmark use it for the
restored-engine-equals-original differential.
"""

from __future__ import annotations

import json
import os
import struct
import sys
import time
import zlib
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.detector import RaceDetector2D
from repro.core.reports import AccessKind, RaceReport
from repro.engine.batch import LocationInterner
from repro.engine.ingest import BatchEngine
from repro.errors import CheckpointError
from repro.obs.registry import MetricsRegistry, get_registry
from repro.trace import decode_location, encode_location

__all__ = [
    "MAGIC",
    "VERSION",
    "save_checkpoint",
    "load_checkpoint",
    "engine_to_blob",
    "engine_from_blob",
    "state_digest",
    "pack_state",
    "unpack_state",
    "write_checkpoint_file",
    "read_checkpoint_file",
]

MAGIC = b"RPR2CKPT"
VERSION = 1

_HEADER = struct.Struct("<8sB3xIQI")
_HEADER_PREFIX = struct.Struct("<8sB3xIQ")  # everything before the CRC
_CRC = struct.Struct("<I")
_JSON_LEN = struct.Struct("<I")

_KINDS = (AccessKind.READ, AccessKind.WRITE)
_I64_MIN, _I64_MAX = -(1 << 63), (1 << 63) - 1


def _native_flag() -> int:
    return 0 if sys.byteorder == "little" else 1


def _observe(reg: MetricsRegistry, op: str, seconds: float, nbytes: int) -> None:
    """Record one save/restore against the checkpoint instruments."""
    labels = {"component": "checkpoint"}
    reg.counter(
        "checkpoint_ops_total", "checkpoint saves/restores",
        labels={**labels, "op": op},
    ).inc()
    reg.histogram(
        "checkpoint_seconds", "checkpoint save/restore latency",
        labels={**labels, "op": op},
        buckets=(0.001, 0.005, 0.02, 0.1, 0.5, 2.0),
    ).observe(seconds)
    reg.gauge(
        "checkpoint_bytes", "size of the last checkpoint handled",
        labels=labels,
    ).set(nbytes)
    reg.gauge(
        "checkpoint_last_unixtime",
        "wall-clock time of the last checkpoint operation (age source)",
        labels=labels,
    ).set(time.time())


# -- generic container --------------------------------------------------------


def pack_state(obj: Dict[str, Any], sections: Sequence[Tuple[str, array]]) -> bytes:
    """Pack a JSON header plus named array sections into one blob.

    ``obj`` must be JSON-serializable; ``sections`` is an ordered list
    of ``(name, array)`` pairs whose typecodes and counts are recorded
    in the header so :func:`unpack_state` can size its reads exactly.
    """
    head = dict(obj)
    head["sections"] = [
        [name, arr.typecode, len(arr)] for name, arr in sections
    ]
    head_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    parts = [_JSON_LEN.pack(len(head_bytes)), head_bytes]
    parts.extend(arr.tobytes() for _, arr in sections)
    payload = b"".join(parts)
    prefix = _HEADER_PREFIX.pack(
        MAGIC, _native_flag(), VERSION, len(payload)
    )
    crc = zlib.crc32(payload, zlib.crc32(prefix))
    return prefix + _CRC.pack(crc) + payload


def unpack_state(blob: bytes) -> Tuple[Dict[str, Any], Dict[str, array]]:
    """Validate and unpack a blob produced by :func:`pack_state`.

    Every corruption mode raises :class:`CheckpointError`: bad magic,
    unsupported version, bad endian flag, truncated payload, CRC
    mismatch, malformed JSON header, or section lengths that disagree
    with the payload size.
    """
    if len(blob) < _HEADER.size:
        raise CheckpointError(
            f"truncated checkpoint: {len(blob)} bytes is shorter than "
            f"the {_HEADER.size}-byte header"
        )
    magic, endian, version, payload_len, crc = _HEADER.unpack_from(blob)
    if magic != MAGIC:
        raise CheckpointError(f"not a checkpoint (magic {magic!r})")
    if version != VERSION:
        raise CheckpointError(f"unsupported checkpoint version {version}")
    if endian not in (0, 1):
        raise CheckpointError(f"bad endianness flag {endian} in checkpoint")
    payload = blob[_HEADER.size:]
    if len(payload) != payload_len:
        raise CheckpointError(
            f"truncated checkpoint: header claims {payload_len} payload "
            f"bytes but {len(payload)} are present"
        )
    prefix = bytes(blob[:_HEADER_PREFIX.size])
    if zlib.crc32(payload, zlib.crc32(prefix)) != crc:
        raise CheckpointError("checkpoint failed its CRC32 check")
    if len(payload) < _JSON_LEN.size:
        raise CheckpointError("checkpoint payload too short for its header")
    (json_len,) = _JSON_LEN.unpack_from(payload)
    if _JSON_LEN.size + json_len > len(payload):
        raise CheckpointError("checkpoint JSON header overruns the payload")
    try:
        head = json.loads(
            payload[_JSON_LEN.size:_JSON_LEN.size + json_len].decode("utf-8")
        )
    except ValueError as exc:
        raise CheckpointError(
            f"corrupt checkpoint JSON header: {exc}"
        ) from None
    if not isinstance(head, dict) or not isinstance(head.get("sections"), list):
        raise CheckpointError("checkpoint JSON header is not a section table")
    arrays: Dict[str, array] = {}
    off = _JSON_LEN.size + json_len
    for entry in head["sections"]:
        try:
            name, typecode, count = entry
            arr = array(typecode)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(
                f"bad checkpoint section descriptor {entry!r}: {exc}"
            ) from None
        nbytes = count * arr.itemsize
        if off + nbytes > len(payload):
            raise CheckpointError(
                f"checkpoint section {name!r} overruns the payload"
            )
        arr.frombytes(payload[off:off + nbytes])
        if endian != _native_flag() and arr.itemsize > 1:
            arr.byteswap()
        arrays[name] = arr
        off += nbytes
    if off != len(payload):
        raise CheckpointError(
            f"checkpoint payload has {len(payload) - off} trailing bytes"
        )
    return head, arrays


def write_checkpoint_file(path: str, blob: bytes) -> None:
    """Atomically and durably write ``blob`` to ``path``.

    The blob goes to a same-directory temporary file, is flushed and
    fsync'd, renamed over ``path`` with :func:`os.replace`, and the
    directory entry itself is fsync'd -- a crash at any point leaves
    either the previous complete checkpoint or the new one, never a
    torn file.
    """
    directory = os.path.dirname(os.path.abspath(path))
    tmp = os.path.join(
        directory, f".{os.path.basename(path)}.tmp.{os.getpid()}"
    )
    try:
        with open(tmp, "wb") as fp:
            fp.write(blob)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise CheckpointError(f"cannot write checkpoint {path!r}: {exc}") from exc
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platform without directory fds; rename is still atomic
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def read_checkpoint_file(path: str) -> bytes:
    """Read a checkpoint file whole; missing/unreadable files raise
    :class:`CheckpointError` (the caller decides whether that is fatal)."""
    try:
        with open(path, "rb") as fp:
            return fp.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc


# -- BatchEngine serialization ------------------------------------------------


def _check_detector(det: Any) -> RaceDetector2D:
    if not isinstance(det, RaceDetector2D):
        raise CheckpointError(
            f"only RaceDetector2D state can be checkpointed, got "
            f"{type(det).__name__}"
        )
    return det


def _encode_races(races: Sequence[RaceReport]) -> List[List[Any]]:
    return [
        [
            encode_location(r.loc),
            r.task,
            _KINDS.index(r.kind),
            _KINDS.index(r.prior_kind),
            r.prior_repr,
            r.op_index,
            r.label,
        ]
        for r in races
    ]


def _decode_races(rows: Any) -> List[RaceReport]:
    try:
        return [
            RaceReport(
                loc=decode_location(loc),
                task=task,
                kind=_KINDS[kind],
                prior_kind=_KINDS[prior_kind],
                prior_repr=prior_repr,
                op_index=op_index,
                label=label,
            )
            for loc, task, kind, prior_kind, prior_repr, op_index, label in rows
        ]
    except (TypeError, ValueError, IndexError) as exc:
        raise CheckpointError(f"corrupt race table in checkpoint: {exc}") from None


def _int_keyed(mapping: Dict[Any, Any]) -> bool:
    return all(
        type(k) is int and _I64_MIN <= k <= _I64_MAX for k in mapping
    )


def engine_to_blob(
    engine: BatchEngine, *, meta: Optional[Dict[str, Any]] = None
) -> bytes:
    """Serialize a :class:`BatchEngine`'s full detector state.

    ``meta`` is an arbitrary JSON-serializable dict stored alongside the
    state and handed back by :func:`engine_from_blob`; the serve layer
    uses it for its sequence bookkeeping.
    """
    det = _check_detector(engine.detector)
    uf = det._uf
    cells = det.shadow._cells
    epoch = det._epoch

    obj: Dict[str, Any] = {
        "kind": "engine",
        "config": {
            "literal": det._literal,
            "path_compression": uf.path_compression,
            "link_by_rank": uf.link_by_rank,
            "epoch_cache": epoch is not None,
        },
        "op_index": det.op_index,
        "events_ingested": engine.events_ingested,
        "uf_counts": [uf.find_count, uf.union_count, uf.hop_count],
        "peak_entries": det.shadow.peak_entries_per_loc,
        "races": _encode_races(det.races),
        "interner": (
            [encode_location(loc) for loc in engine.interner.locations()]
            if engine.interner is not None
            else None
        ),
        "cells_json": None,
        "epoch_json": None,
        "meta": meta if meta is not None else {},
    }

    sections: List[Tuple[str, array]] = [
        ("uf_parent", array("i", uf._parent)),
        ("uf_rank", array("i", uf._rank)),
        ("uf_label", array("i", uf._label)),
        ("visited", array("B", det._visited)),
        ("halted", array("B", det._halted)),
        ("joined", array("B", det._joined)),
    ]

    if _int_keyed(cells) and (epoch is None or _int_keyed(epoch)):
        # The common case: locations are interned dense ids, so the
        # whole shadow map packs into three parallel columns.
        lids = array("q")
        rsup = array("i")
        wsup = array("i")
        for lid, (r, w) in cells.items():
            lids.append(lid)
            rsup.append(-1 if r is None else r)
            wsup.append(-1 if w is None else w)
        sections += [("cell_lid", lids), ("cell_r", rsup), ("cell_w", wsup)]
        if epoch is not None:
            ekeys = array("q", epoch.keys())
            evals = array("q", epoch.values())
            sections += [("epoch_key", ekeys), ("epoch_val", evals)]
    else:
        # Per-event detectors may shadow arbitrary hashable locations;
        # fall back to the tagged JSON codec for those.
        obj["cells_json"] = [
            [encode_location(loc), r, w] for loc, (r, w) in cells.items()
        ]
        if epoch is not None:
            obj["epoch_json"] = [
                [encode_location(loc), v] for loc, v in epoch.items()
            ]
    return pack_state(obj, sections)


def engine_from_blob(
    blob: bytes, *, registry: Optional[MetricsRegistry] = None
) -> Tuple[BatchEngine, Dict[str, Any]]:
    """Rebuild a :class:`BatchEngine` from a checkpoint blob.

    Returns ``(engine, meta)`` where ``meta`` is the dict stored at save
    time.  The restored engine is state-identical to the saved one --
    :func:`state_digest` of the two compares equal -- so ingestion can
    continue exactly where it stopped.
    """
    head, arrays = unpack_state(blob)
    if head.get("kind") != "engine":
        raise CheckpointError(
            f"checkpoint holds {head.get('kind')!r} state, not an engine"
        )
    try:
        cfg = head["config"]
        det = RaceDetector2D(
            paper_figure6_literal=bool(cfg["literal"]),
            path_compression=bool(cfg["path_compression"]),
            link_by_rank=bool(cfg["link_by_rank"]),
            epoch_cache=bool(cfg["epoch_cache"]),
        )
        uf = det._uf
        uf._parent = list(arrays["uf_parent"])
        uf._rank = list(arrays["uf_rank"])
        uf._label = list(arrays["uf_label"])
        det._visited = [bool(x) for x in arrays["visited"]]
        det._halted = [bool(x) for x in arrays["halted"]]
        det._joined = [bool(x) for x in arrays["joined"]]
        uf.find_count, uf.union_count, uf.hop_count = head["uf_counts"]
        det.op_index = head["op_index"]
        det.races = _decode_races(head["races"])

        cells: Dict[Any, List[Optional[int]]] = {}
        if head.get("cells_json") is not None:
            for loc, r, w in head["cells_json"]:
                cells[decode_location(loc)] = [r, w]
            if head.get("epoch_json") is not None:
                det._epoch = {
                    decode_location(loc): v for loc, v in head["epoch_json"]
                }
        else:
            for lid, r, w in zip(
                arrays["cell_lid"], arrays["cell_r"], arrays["cell_w"]
            ):
                cells[lid] = [None if r < 0 else r, None if w < 0 else w]
            if det._epoch is not None:
                det._epoch = dict(
                    zip(arrays.get("epoch_key", ()), arrays.get("epoch_val", ()))
                )
        det.shadow._cells = cells
        det.shadow._entries = {
            loc: (c[0] is not None) + (c[1] is not None)
            for loc, c in cells.items()
        }
        det.shadow.peak_entries_per_loc = head["peak_entries"]

        n = len(uf._parent)
        if not (
            len(uf._rank) == len(uf._label) == len(det._visited)
            == len(det._halted) == len(det._joined) == n
        ):
            raise CheckpointError(
                "checkpoint thread tables have mismatched lengths"
            )

        interner = None
        if head.get("interner") is not None:
            interner = LocationInterner()
            for encoded in head["interner"]:
                interner.intern(decode_location(encoded))
            if len(interner) != len(head["interner"]):
                raise CheckpointError(
                    "duplicate locations in checkpoint interner table"
                )
        engine = BatchEngine(det, interner=interner, registry=registry)
        engine.events_ingested = head["events_ingested"]
    except CheckpointError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed checkpoint state: {exc!r}") from None
    meta = head.get("meta") or {}
    if not isinstance(meta, dict):
        raise CheckpointError("checkpoint meta is not an object")
    return engine, meta


def save_checkpoint(
    engine: BatchEngine, path: str, *, meta: Optional[Dict[str, Any]] = None
) -> int:
    """Serialize ``engine`` durably to ``path``; returns bytes written."""
    t0 = time.perf_counter()
    blob = engine_to_blob(engine, meta=meta)
    write_checkpoint_file(path, blob)
    _observe(get_registry(), "save", time.perf_counter() - t0, len(blob))
    return len(blob)


def load_checkpoint(
    path: str, *, registry: Optional[MetricsRegistry] = None
) -> Tuple[BatchEngine, Dict[str, Any]]:
    """Load ``path`` back into ``(engine, meta)`` (see
    :func:`engine_from_blob`); any validation failure raises
    :class:`CheckpointError`."""
    t0 = time.perf_counter()
    blob = read_checkpoint_file(path)
    engine, meta = engine_from_blob(blob, registry=registry)
    _observe(get_registry(), "restore", time.perf_counter() - t0, len(blob))
    return engine, meta


# -- differentials ------------------------------------------------------------


def state_digest(engine: BatchEngine) -> Dict[str, Any]:
    """The engine's complete observable state as one comparable value.

    Two engines with equal digests behave identically on any future
    event stream: the digest covers the union-find forest (raw parent
    pointers included, so even path-compression state matches), thread
    flags, shadow cells, epoch cache, races, counters, and interner.
    """
    det = _check_detector(engine.detector)
    uf = det._uf
    return {
        "parent": tuple(uf._parent),
        "rank": tuple(uf._rank),
        "label": tuple(uf._label),
        "visited": tuple(det._visited),
        "halted": tuple(det._halted),
        "joined": tuple(det._joined),
        "uf_counts": (uf.find_count, uf.union_count, uf.hop_count),
        "cells": {
            loc: tuple(cell) for loc, cell in det.shadow._cells.items()
        },
        "entries": dict(det.shadow._entries),
        "peak_entries": det.shadow.peak_entries_per_loc,
        "epoch": None if det._epoch is None else dict(det._epoch),
        "races": tuple(
            (r.loc, r.task, r.kind, r.prior_kind, r.prior_repr, r.op_index,
             r.label)
            for r in det.races
        ),
        "op_index": det.op_index,
        "events_ingested": engine.events_ingested,
        "interner": (
            None if engine.interner is None
            else tuple(engine.interner.locations())
        ),
    }
