"""Batched event-ingestion engine: the detector's serving fast path.

Five pieces, layered so each is useful alone:

* :mod:`repro.engine.batch` -- dense columnar event batches (parallel
  opcode / task-id / interned-location arrays) and the
  :class:`BatchBuilder` observer that captures them from a run;
* :mod:`repro.engine.ingest` -- :class:`BatchEngine`, the tight
  pre-bound per-batch loop over a detector (with named ``backend``
  selection, :data:`BACKENDS`), and :class:`ShardedBatchEngine`, which
  partitions the shadow map by location id across independent detector
  instances;
* :mod:`repro.engine.vectorized` -- the numpy segment kernel behind
  the ``depa`` backend: whole batch columns per precedence query;
* :mod:`repro.engine.parallel` -- :class:`ParallelShardedEngine`, the
  same location partitioning over a persistent pool of worker
  *processes* fed through shared memory and mapped trace files;
* :mod:`repro.engine.tracefile` -- the compact binary record/replay
  format (capture a workload once, replay it into any detector),
  with ``mmap``-backed zero-copy reads;
* :mod:`repro.engine.differential` -- lockstep cross-checking of
  per-access verdicts across detectors and across fast paths; the
  correctness gate every future perf change must pass.

Quickstart::

    from repro.engine import BatchBuilder, BatchEngine, replay_differential
    from repro.forkjoin import run

    builder = BatchBuilder()
    run(body, observers=[builder])            # capture columnar trace
    engine = BatchEngine(interner=builder.interner)
    engine.ingest(builder.batch)              # batched detection
    print(engine.races())
    assert replay_differential(builder.batch, builder.interner,
                               ("lattice2d", "fasttrack")).agreed
"""

from repro.engine.batch import (
    OP_FORK,
    OP_HALT,
    OP_JOIN,
    OP_READ,
    OP_STEP,
    OP_WRITE,
    OPCODE_NAMES,
    BatchBuilder,
    EventBatch,
    LocationInterner,
    batch_from_events,
    events_from_batch,
)
from repro.engine.differential import (
    DEFAULT_DETECTORS,
    DifferentialReport,
    Divergence,
    cross_check_backend,
    cross_check_parallel,
    cross_check_sharded,
    replay_differential,
)
from repro.engine.ingest import BACKENDS, BatchEngine, ShardedBatchEngine
from repro.engine.parallel import ParallelShardedEngine
from repro.engine.tracefile import (
    MappedTrace,
    is_tracefile,
    map_trace,
    read_trace,
    record_trace,
    write_trace,
)

__all__ = [
    "OP_FORK",
    "OP_JOIN",
    "OP_HALT",
    "OP_STEP",
    "OP_READ",
    "OP_WRITE",
    "OPCODE_NAMES",
    "BatchBuilder",
    "EventBatch",
    "LocationInterner",
    "batch_from_events",
    "events_from_batch",
    "BACKENDS",
    "BatchEngine",
    "ShardedBatchEngine",
    "ParallelShardedEngine",
    "DEFAULT_DETECTORS",
    "DifferentialReport",
    "Divergence",
    "replay_differential",
    "cross_check_backend",
    "cross_check_sharded",
    "cross_check_parallel",
    "is_tracefile",
    "read_trace",
    "record_trace",
    "write_trace",
    "map_trace",
    "MappedTrace",
]
