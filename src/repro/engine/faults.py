"""Fault injection for the checkpoint/resume machinery.

Everything here is *seeded*: a failing soak run prints its seed and
replays exactly.  Three families of faults, matching the recovery
guarantees documented in ``docs/FAULT_TOLERANCE.md``:

* **Torn checkpoints** -- :func:`corrupt_truncate` / :func:`corrupt_flip`
  damage a checkpoint file the way a crashed writer or bad disk would;
  :func:`repro.engine.snapshot.load_checkpoint` must refuse with
  :class:`~repro.errors.CheckpointError`, never load silently.
* **Process kills** -- :class:`ServerProcess` runs ``repro-race serve``
  as a real subprocess and :meth:`ServerProcess.kill` delivers SIGKILL,
  the no-cleanup crash.  A durable client resuming against a restarted
  server must end with exactly the race multiset of an uninterrupted
  local replay.
* **Worker kills** (the ``kill_worker`` leg) -- the same workload is
  streamed through a 2-worker :class:`~repro.serve.cluster.RaceCluster`
  gateway and a random *engine worker* is SIGKILLed at a random batch
  boundary mid-stream; the supervisor respawns it, the gateway's links
  RESUME their ``(session, shard)`` checkpoints and replay unacked
  slices, and the client's final race multiset must again equal the
  uninterrupted local replay (migration under kill, see
  ``docs/SCALE_OUT.md``).
* **Duplicated frames** -- :func:`resend_unacked` replays a batch the
  server may already hold; sequence-number dedup must absorb it.
* **Backend negotiation under faults** -- every round also replays the
  workload over a depa-negotiated session (v3 HELLO) against the same
  server and requires the exact local race multiset, then asserts that
  a *durable* depa session is refused with a typed ``ERR_CHECKPOINT``
  at the RESUME handshake -- non-checkpointable backends must never be
  silently swapped for one that is.

:func:`run_soak` drives randomized rounds of all three for a bounded
wall-clock budget; ``python -m repro.engine.faults`` is the entry the
scheduled soak workflow runs.
"""

from __future__ import annotations

import collections
import os
import random
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CheckpointError, WorkloadError

__all__ = [
    "corrupt_truncate",
    "corrupt_flip",
    "corrupt_file",
    "resend_unacked",
    "free_port",
    "ServerProcess",
    "run_soak",
    "main",
]


# -- file corruption ----------------------------------------------------------


def corrupt_truncate(path: str, rng: random.Random) -> int:
    """Truncate ``path`` at a random interior byte (a torn write).

    Returns the new length.  The cut point is strictly inside the file
    so the result is damaged, not merely empty-but-valid.
    """
    size = os.path.getsize(path)
    if size < 2:
        raise WorkloadError(f"{path} is too small to truncate ({size} bytes)")
    keep = rng.randrange(1, size)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def corrupt_flip(path: str, rng: random.Random, flips: int = 8) -> List[int]:
    """Flip ``flips`` random bits in ``path`` (bit rot / bad sector).

    Returns the damaged byte offsets.
    """
    data = bytearray(open(path, "rb").read())
    if not data:
        raise WorkloadError(f"{path} is empty")
    offsets = []
    for _ in range(flips):
        k = rng.randrange(len(data))
        data[k] ^= 1 << rng.randrange(8)
        offsets.append(k)
    with open(path, "wb") as handle:
        handle.write(bytes(data))
    return offsets


def corrupt_file(path: str, rng: random.Random) -> str:
    """Apply one randomly chosen corruption mode; returns its name."""
    mode = rng.choice(("truncate", "flip"))
    if mode == "truncate":
        corrupt_truncate(path, rng)
    else:
        corrupt_flip(path, rng)
    return mode


# -- frame-level faults -------------------------------------------------------


def resend_unacked(client, rng: random.Random) -> Optional[int]:
    """Deliberately resend one retained batch of a durable client.

    The duplicate reaches the server with a sequence number at or
    below what it already enqueued, so it must be skipped idempotently
    (and the spent credit handed straight back).  Returns the seq that
    was duplicated, or None if nothing is retained.
    """
    if not client._unacked:
        return None
    seq = rng.choice(sorted(client._unacked))
    ftype, payload = client._unacked[seq]
    client._with_retry(lambda: client._send_payload(ftype, payload))
    return seq


# -- a killable serve subprocess ----------------------------------------------


def free_port() -> int:
    """Bind-and-release to find a free loopback TCP port."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


class ServerProcess:
    """``repro-race serve`` as a killable subprocess.

    Unlike :class:`~repro.serve.server.ServerThread`, this is a real
    OS process: :meth:`kill` delivers SIGKILL, so no drain, no final
    checkpoint, no atexit -- the crash the durability layer exists to
    survive.  Use as a context manager; exiting terminates whatever is
    still running.
    """

    def __init__(
        self,
        port: int,
        checkpoint_dir: str,
        *,
        checkpoint_interval: int = 4,
        extra_args: Tuple[str, ...] = (),
        startup_timeout: float = 20.0,
    ) -> None:
        self.port = port
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.extra_args = tuple(extra_args)
        self.startup_timeout = startup_timeout
        self._proc: Optional[subprocess.Popen] = None

    def start(self) -> "ServerProcess":
        if self._proc is not None and self._proc.poll() is None:
            raise WorkloadError("server process already running")
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        self._proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", str(self.port),
                "--checkpoint-dir", self.checkpoint_dir,
                "--checkpoint-interval", str(self.checkpoint_interval),
                *self.extra_args,
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
        )
        self._wait_ready()
        return self

    def _wait_ready(self) -> None:
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            if self._proc is not None and self._proc.poll() is not None:
                raise WorkloadError(
                    f"serve process exited with {self._proc.returncode} "
                    f"before accepting connections"
                )
            try:
                with socket.create_connection(
                    ("127.0.0.1", self.port), timeout=0.25
                ):
                    return
            except OSError:
                time.sleep(0.05)
        raise WorkloadError(
            f"serve process not accepting on port {self.port} within "
            f"{self.startup_timeout}s"
        )

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    def kill(self) -> None:
        """SIGKILL: the process gets no chance to clean up."""
        if self._proc is not None:
            self._proc.kill()
            self._proc.wait()

    def terminate(self, timeout: float = 10.0) -> None:
        """SIGTERM: the server drains gracefully."""
        if self._proc is not None and self._proc.poll() is None:
            self._proc.terminate()
            try:
                self._proc.wait(timeout)
            except subprocess.TimeoutExpired:
                self.kill()

    def __enter__(self) -> "ServerProcess":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.terminate()
        return False


# -- the soak driver ----------------------------------------------------------


def _race_multiset(reports) -> "collections.Counter":
    return collections.Counter(
        (r.task, r.loc, r.kind, r.prior_kind) for r in reports
    )


def _local_expected(batch):
    from repro.engine.ingest import BatchEngine

    engine = BatchEngine()
    engine.ingest(batch)
    return _race_multiset(engine.detector.races)


#: the fault legs :func:`run_soak` knows how to drive
SOAK_LEGS = ("kill_server", "kill_worker")


def run_soak(
    seconds: float = 60.0,
    *,
    seed: int = 0,
    accesses: int = 20_000,
    batch_size: int = 2048,
    checkpoint_interval: int = 4,
    legs: Tuple[str, ...] = SOAK_LEGS,
    log_dir: Optional[str] = None,
    log=print,
) -> Dict[str, Any]:
    """Randomized kill/corrupt/duplicate rounds for ``seconds`` of
    wall clock; raises :class:`AssertionError` on the first divergence.

    Each ``kill_server`` round builds a seeded racegen workload,
    streams it through a durable session against a subprocess server,
    SIGKILLs the server at a random batch boundary, restarts it, lets
    the client resume, and requires the final race multiset to equal
    an uninterrupted local replay.  Between rounds it also tears
    checkpoints apart on disk and asserts the typed refusal.

    Each ``kill_worker`` round streams the same workload through a
    2-worker gateway (:class:`~repro.serve.cluster.RaceCluster`) and
    SIGKILLs a random *engine worker* at the same batch boundary; the
    respawn/RESUME/replay machinery must deliver the identical
    multiset.  ``legs`` selects which families run; ``log_dir``
    captures the cluster workers' stdout/stderr for CI artifacts.
    """
    import tempfile

    from repro.engine.benchlib import build_workload, capture
    from repro.engine.ingest import BatchEngine
    from repro.engine.snapshot import load_checkpoint, save_checkpoint
    from repro.serve import protocol as wire
    from repro.serve.client import RaceClient, RemoteError
    from repro.obs.registry import MetricsRegistry
    from repro.serve.cluster import ClusterConfig, ClusterThread

    for leg in legs:
        if leg not in SOAK_LEGS:
            raise WorkloadError(
                f"unknown soak leg {leg!r}; expected a subset of "
                f"{SOAK_LEGS}"
            )
    if not legs:
        raise WorkloadError("need at least one soak leg")
    rng = random.Random(seed)
    stats: Dict[str, Any] = {
        "seed": seed, "legs": list(legs), "rounds": 0, "kills": 0,
        "reconnects": 0, "duplicates": 0, "corruptions_rejected": 0,
        "events": 0, "races": 0, "depa_sessions": 0,
        "depa_resume_refusals": 0, "worker_kills": 0,
        "worker_respawns": 0, "cluster_events": 0, "cluster_races": 0,
    }
    deadline = time.monotonic() + seconds
    while time.monotonic() < deadline:
        round_seed = rng.randrange(2**32)
        round_rng = random.Random(round_seed)
        stats["rounds"] += 1
        # build_workload is deterministic per shape, so the round's
        # diversity comes from varying the shape with the round seed.
        _events, batch, _interner = capture(
            build_workload(
                accesses + round_rng.randrange(accesses // 4 + 1),
                fanout=round_rng.choice((4, 8, 16)),
            )
        )
        expected = _local_expected(batch)
        pieces = list(batch.slices(batch_size))
        kill_at = round_rng.randrange(1, max(2, len(pieces)))

        if "kill_worker" in legs:
            victim = round_rng.randrange(2)
            with ClusterThread(
                ClusterConfig(
                    workers=2,
                    checkpoint_interval=checkpoint_interval,
                    log_dir=log_dir,
                ),
                # A private registry per round: the respawn counters
                # below must count this round's kills only.
                registry=MetricsRegistry(),
            ) as cluster:
                gw_client = RaceClient(
                    "127.0.0.1", cluster.port, timeout=30.0
                ).connect()
                for k, piece in enumerate(pieces):
                    if k == kill_at:
                        cluster.kill_worker(victim)
                        stats["worker_kills"] += 1
                    gw_client.send_batch(piece)
                gw_summary = gw_client.finish()
                gw_client.close()
                assert cluster.cluster is not None
                stats["worker_respawns"] += sum(
                    c.value
                    for c in cluster.cluster._m.respawns
                )
            got_gw = _race_multiset(gw_summary.reports)
            if got_gw != expected:
                raise AssertionError(
                    f"gateway race multiset diverged after worker kill "
                    f"(seed={seed}, round_seed={round_seed}, "
                    f"kill_at={kill_at}, victim={victim}): got "
                    f"{sum(got_gw.values())} reports, expected "
                    f"{sum(expected.values())}"
                )
            stats["cluster_events"] += gw_summary.events
            stats["cluster_races"] += sum(got_gw.values())

        if "kill_server" not in legs:
            log(
                f"soak round {stats['rounds']}: ok "
                f"(round_seed={round_seed}, kill_at={kill_at}, "
                f"worker_kills={stats['worker_kills']}, "
                f"cluster_events={stats['cluster_events']})"
            )
            continue
        with tempfile.TemporaryDirectory(prefix="repro-soak-") as ckdir:
            port = free_port()
            server = ServerProcess(
                port, ckdir, checkpoint_interval=checkpoint_interval
            ).start()
            try:
                client = RaceClient(
                    "127.0.0.1", port, session=f"soak-{round_seed}",
                    timeout=15.0, max_retries=8, retry_backoff=0.2,
                ).connect()
                for k, piece in enumerate(pieces):
                    if k == kill_at:
                        server.kill()
                        stats["kills"] += 1
                        server = ServerProcess(
                            port, ckdir,
                            checkpoint_interval=checkpoint_interval,
                        ).start()
                    client.send_batch(piece)
                    if round_rng.random() < 0.1:
                        if resend_unacked(client, round_rng) is not None:
                            stats["duplicates"] += 1
                summary = client.finish()
                client.close()
                stats["reconnects"] += client.reconnects
                got = _race_multiset(summary.reports)
                if got != expected:
                    raise AssertionError(
                        f"race multiset diverged after kill/resume "
                        f"(seed={seed}, round_seed={round_seed}, "
                        f"kill_at={kill_at}): got {sum(got.values())} "
                        f"reports, expected {sum(expected.values())}"
                    )
                stats["events"] += summary.events
                stats["races"] += sum(got.values())

                # Depa leg: a depa-negotiated session (v3 HELLO) against
                # the same, possibly-restarted server must stream the
                # exact local multiset -- negotiation moves work, never
                # verdicts, kills included.
                depa_client = RaceClient(
                    "127.0.0.1", port, timeout=15.0, backend="depa"
                ).connect()
                try:
                    for piece in pieces:
                        depa_client.send_batch(piece)
                    depa_summary = depa_client.finish()
                finally:
                    depa_client.close()
                got_depa = _race_multiset(depa_summary.reports)
                if got_depa != expected:
                    raise AssertionError(
                        f"depa session race multiset diverged "
                        f"(seed={seed}, round_seed={round_seed}): got "
                        f"{sum(got_depa.values())} reports, expected "
                        f"{sum(expected.values())}"
                    )
                stats["depa_sessions"] += 1

                # A *durable* depa session must be refused typed at the
                # RESUME handshake: the backend is not checkpointable
                # and must never be silently swapped for one that is.
                try:
                    leak = RaceClient(
                        "127.0.0.1", port,
                        session=f"soak-depa-{round_seed}",
                        timeout=15.0, backend="depa",
                    ).connect()
                except RemoteError as exc:
                    if exc.code != wire.ERR_CHECKPOINT:
                        raise AssertionError(
                            f"durable depa session refused with code "
                            f"{exc.code}, expected ERR_CHECKPOINT "
                            f"(seed={seed}, round_seed={round_seed})"
                        )
                    stats["depa_resume_refusals"] += 1
                else:
                    leak.close()
                    raise AssertionError(
                        f"durable depa session was accepted -- RESUME on "
                        f"a non-checkpointable backend must be refused "
                        f"(seed={seed}, round_seed={round_seed})"
                    )
            finally:
                server.terminate()

            # Torn-checkpoint leg: damage what the round left on disk
            # (or a freshly written checkpoint) and demand refusal.
            ckpts = [
                os.path.join(ckdir, f)
                for f in os.listdir(ckdir)
                if f.endswith(".ckpt")
            ]
            if not ckpts:
                engine = BatchEngine()
                engine.ingest(batch)
                path = os.path.join(ckdir, "synthetic.ckpt")
                save_checkpoint(engine, path)
                ckpts = [path]
            victim = round_rng.choice(ckpts)
            mode = corrupt_file(victim, round_rng)
            try:
                load_checkpoint(victim)
            except CheckpointError:
                stats["corruptions_rejected"] += 1
            else:
                raise AssertionError(
                    f"{mode}-corrupted checkpoint {victim} loaded "
                    f"without error (seed={seed}, round_seed={round_seed})"
                )
        log(
            f"soak round {stats['rounds']}: ok "
            f"(round_seed={round_seed}, kill_at={kill_at}, "
            f"reconnects={stats['reconnects']}, "
            f"events={stats['events']}, races={stats['races']}, "
            f"worker_kills={stats['worker_kills']})"
        )
    return stats


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import json

    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.faults",
        description="randomized kill/corrupt/duplicate soak of the "
        "checkpoint-resume machinery",
    )
    parser.add_argument(
        "--seconds", type=float, default=60.0,
        help="wall-clock budget (default: 60)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="master seed; a failing run replays with it (default: 0)",
    )
    parser.add_argument("--accesses", type=int, default=20_000)
    parser.add_argument("--batch-size", type=int, default=2048)
    parser.add_argument("--checkpoint-interval", type=int, default=4)
    parser.add_argument(
        "--legs", default=",".join(SOAK_LEGS), metavar="LEGS",
        help="comma-separated fault legs to run "
        f"(default: {','.join(SOAK_LEGS)})",
    )
    parser.add_argument(
        "--log-dir", metavar="DIR",
        help="capture cluster worker stdout/stderr as DIR/worker-K.log "
        "(kill_worker leg; CI uploads these on failure)",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the stats as JSON"
    )
    args = parser.parse_args(argv)
    try:
        stats = run_soak(
            args.seconds,
            seed=args.seed,
            accesses=args.accesses,
            batch_size=args.batch_size,
            checkpoint_interval=args.checkpoint_interval,
            legs=tuple(
                leg.strip() for leg in args.legs.split(",") if leg.strip()
            ),
            log_dir=args.log_dir,
        )
    except (AssertionError, WorkloadError) as exc:
        print(f"SOAK FAILURE: {exc}", file=sys.stderr)
        return 1
    encoded = json.dumps(stats, sort_keys=True)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fp:
            fp.write(encoded + "\n")
    print(encoded)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
