#!/usr/bin/env python3
"""Spawn-sync divide-and-conquer: SP-bags and the 2D detector side by side.

A mergesort-shaped computation over abstract array segments: each node
spawns sorts of its two halves, syncs, then merges.  Because spawn-sync
is the bracketed sub-discipline of the paper's fork-join (construction
(11)), the task graph is series-parallel and *both* the classic SP-bags
detector and the paper's 2D detector apply -- and must agree.

The buggy variant merges before syncing (a forgotten ``sync``), the
canonical Cilk determinacy bug that SP-bags was built to catch.

Run:  python examples/cilk_mergesort.py
"""

from repro import cilk, read, run, write
from repro.detectors import Lattice2DDetector, SPBagsDetector


def make_mergesort(forgot_sync: bool):
    @cilk
    def sort(ctx, lo: int, hi: int):
        if hi - lo <= 1:
            yield write(("seg", lo, hi))  # base case: sort in place
            return
        mid = (lo + hi) // 2
        yield from ctx.spawn(sort, lo, mid)
        yield from ctx.spawn(sort, mid, hi)
        if not forgot_sync:
            yield from ctx.sync()
        # merge: read both halves, write the whole segment
        yield read(("seg", lo, mid), label=f"merge-left[{lo}:{mid}]")
        yield read(("seg", mid, hi), label=f"merge-right[{mid}:{hi}]")
        yield write(("seg", lo, hi))
        # (the implicit sync at task end joins the children in the
        # forgotten-sync variant -- too late for the merge reads)

    return sort


def monitor(n: int, forgot_sync: bool):
    detectors = [SPBagsDetector(), Lattice2DDetector()]
    ex = run(make_mergesort(forgot_sync), 0, n, observers=detectors)
    return ex, detectors


if __name__ == "__main__":
    print("== correct mergesort over 16 elements ==")
    ex, (spbags, lattice2d) = monitor(16, forgot_sync=False)
    print(f"tasks: {ex.task_count}, ops: {ex.op_count}")
    print(f"  spbags    races={len(spbags.races)}  "
          f"shadow/loc={spbags.shadow_peak_per_location()}")
    print(f"  lattice2d races={len(lattice2d.races)}  "
          f"shadow/loc={lattice2d.shadow_peak_per_location()}")
    print("  (both Θ(1) space -- the 2D detector matches SP-bags on SP "
          "programs)")

    print("\n== forgotten sync before the merge ==")
    ex, (spbags, lattice2d) = monitor(16, forgot_sync=True)
    print(f"  spbags    races={len(spbags.races)}")
    print(f"  lattice2d races={len(lattice2d.races)}")
    print(f"\nfirst SP-bags report:\n  {spbags.races[0]}")
    print(f"first 2D report:\n  {lattice2d.races[0]}")
