#!/usr/bin/env python3
"""Quickstart: detect the race in the paper's Figure 2 program.

The program (fork-join pseudocode from the paper)::

    fork a { A() }     # A reads l
    B()                # B reads l
    fork c { join a; C() }
    D()                # D writes l   <-- races with A, but not with B
    join c

Its task graph is a two-dimensional lattice that is *not*
series-parallel, so SP-only detectors (SP-bags) cannot monitor it -- but
the 2D detector can, online, with two words of shadow state per
location.

Run:  python examples/quickstart.py
"""

from repro import RaceDetector2D, build_task_graph, fork, join, read, run, step, write


def task_a(self):
    yield read("l", label="A")


def task_c(self, a):
    # Joining `a` is legal because `a` sits immediately left of `c`
    # in the task line -- the paper's structured restriction.
    yield join(a)
    yield step(label="C")


def main(self):
    a = yield fork(task_a)
    yield read("l", label="B")
    c = yield fork(task_c, a)
    yield write("l", label="D")
    yield join(c)


if __name__ == "__main__":
    detector = RaceDetector2D()
    execution = run(main, observers=[detector], record_events=True)

    print(f"executed {execution.op_count} operations "
          f"across {execution.task_count} tasks")
    print(f"detected {len(detector.races)} race(s):")
    for race in detector.races:
        print(f"  {race}")

    # The detector state is tiny: two thread names per location.
    print(f"\nshadow entries for location 'l': "
          f"{detector.shadow.max_entries_per_loc()} (constant by design)")

    # Reconstruct the task graph and confirm the paper's claims about it.
    tg = build_task_graph(execution.events)
    by_label = {op.label: i for i, op in tg.ops.items() if op.label}
    print("\nhappened-before facts (from the reconstructed task graph):")
    print(f"  A || D : {not tg.poset.comparable(by_label['A'], by_label['D'])}"
          "   (the race)")
    print(f"  B ⊑ D  : {tg.poset.lt(by_label['B'], by_label['D'])}"
          "   (ordered, no race)")

    from repro.lattice.realizer import is_two_dimensional
    from repro.lattice.series_parallel import is_series_parallel

    print(f"  task graph is a 2D lattice : "
          f"{tg.poset.is_lattice() and is_two_dimensional(tg.poset)}")
    print(f"  task graph is series-parallel : "
          f"{is_series_parallel(tg.graph.transitive_reduction())}"
          "   (no -- beyond SP-bags' reach)")
