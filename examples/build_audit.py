#!/usr/bin/env python3
"""Offline race audit of a build-system schedule -- no program required.

The paper formulates its detector "directly in terms of the graph
structure and not on the programming language".  This example uses that
capability on a different domain: a parallel *build system* whose step
schedule forms a 2D lattice (steps are pipelined wave by wave), with
each step annotated by the files it reads and writes.

Given only the dependency DAG and the file annotations we can:

1. audit it **offline** (`detect_races_on_lattice`) -- exact: every
   access racing with an earlier one is flagged;
2. **synthesize** a structured fork-join execution realising the same
   lattice (the converse of Theorem 6) and replay it through the
   *online* detector -- what would have happened had we monitored a
   real build.

The buggy schedule compiles `parser.c` before the step that generates
`parser.h` is guaranteed done -- a missing edge, hence a race on the
generated header.

Run:  python examples/build_audit.py
"""

from repro.core.reports import AccessKind
from repro.detectors import Lattice2DDetector, detect_races_on_lattice
from repro.forkjoin import replay_events, synthesize_events
from repro.lattice.digraph import Digraph
from repro.lattice.dominance import Diagram
from repro.lattice.poset import Poset

R, W = AccessKind.READ, AccessKind.WRITE


def build_graph(missing_edge: bool) -> Digraph:
    """The build-step DAG (a 2D lattice: pipelined compile waves)."""
    arcs = [
        ("configure", "gen-headers"),
        ("configure", "compile-util"),
        ("gen-headers", "compile-parser"),
        ("gen-headers", "compile-lexer"),
        ("compile-util", "compile-lexer"),
        ("compile-parser", "link"),
        ("compile-lexer", "link"),
    ]
    if missing_edge:
        # BUG: compile-parser no longer waits for gen-headers; it only
        # waits for configure.
        arcs.remove(("gen-headers", "compile-parser"))
        arcs.append(("configure", "compile-parser"))
        arcs.append(("compile-parser", "compile-lexer"))
    return Digraph(arcs)


ACCESSES = {
    "configure": [("config.h", W)],
    "gen-headers": [("config.h", R), ("parser.h", W)],
    "compile-util": [("config.h", R), ("util.o", W)],
    "compile-parser": [("parser.h", R), ("parser.o", W)],
    "compile-lexer": [("parser.h", R), ("lexer.o", W)],
    "link": [("util.o", R), ("parser.o", R), ("lexer.o", R), ("bin", W)],
}


def audit(missing_edge: bool) -> None:
    graph = build_graph(missing_edge)
    label = "buggy" if missing_edge else "correct"
    print(f"== {label} schedule ==")

    # 1) Offline audit straight on the annotated DAG.
    reports = detect_races_on_lattice(graph, ACCESSES)
    print(f"offline audit: {len(reports)} race(s)")
    for r in reports:
        print(
            f"  step '{r.vertex}' {r.kind.value}s {r.loc!r} unordered "
            f"with earlier {r.prior_kind.value} history"
        )

    # 2) Synthesize a fork-join execution of the same schedule and
    #    monitor it online.
    diagram = Diagram.from_poset(Poset(graph))
    synth = synthesize_events(diagram, ACCESSES)
    detector = Lattice2DDetector()
    replay_events(synth.events, observers=[detector])
    print(
        f"online replay:  {len(detector.races)} race(s) across "
        f"{synth.task_count} synthesized tasks"
    )
    print()


if __name__ == "__main__":
    audit(missing_edge=False)
    audit(missing_edge=True)
    print("the missing gen-headers -> compile-parser edge shows up as a "
          "race on 'parser.h'")
