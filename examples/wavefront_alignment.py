#!/usr/bin/env python3
"""Wavefront dynamic programming (Smith-Waterman-style), monitored online.

A score matrix is filled cell by cell; cell (i, j) depends on its upper
and left neighbours -- exactly the grid dependence structure of a 2D
lattice.  We express the computation as a linear pipeline: rows are the
pipeline "items", columns the "stages", so cell (i, j) is ordered after
(i-1, j) and (i, j-1) and nothing else.

The correct kernel reads only those two neighbours (plus the diagonal,
which is ordered transitively).  The buggy variant reads the *right*
neighbour of the previous row, (i-1, j+1) -- a classic anti-diagonal
off-by-one that is NOT covered by the wavefront ordering; the detector
pinpoints it.

Run:  python examples/wavefront_alignment.py
"""

from repro import RaceDetector2D, read, run_pipeline, write


def cell(i: int, j: int):
    return ("score", i, j)


def make_column_stage(j: int, n_cols: int, buggy: bool):
    def stage(row, i):
        # (i-1, j): same column, previous row -- ordered by the pipeline's
        # stage serialisation.
        if i > 0:
            yield read(cell(i - 1, j))
        # (i, j-1): same row, previous column -- ordered by item order.
        if j > 0:
            yield read(cell(i, j - 1))
            # (i-1, j-1): the diagonal, ordered transitively.
            if i > 0:
                yield read(cell(i - 1, j - 1))
        if buggy and i > 0 and j + 1 < n_cols:
            # BUG: reading the previous row's RIGHT neighbour.  Cell
            # (i-1, j+1) is concurrent with (i, j) on the wavefront.
            yield read(cell(i - 1, j + 1), label=f"anti-diagonal@({i},{j})")
        yield write(cell(i, j))

    stage.__name__ = f"col{j}"
    return stage


def fill(rows: int, cols: int, buggy: bool) -> RaceDetector2D:
    detector = RaceDetector2D()
    stages = [make_column_stage(j, cols, buggy) for j in range(cols)]
    run_pipeline(list(range(rows)), stages, observers=[detector])
    return detector


if __name__ == "__main__":
    rows, cols = 8, 6

    print(f"== correct wavefront ({rows}x{cols}) ==")
    det = fill(rows, cols, buggy=False)
    print(f"races: {len(det.races)} (wavefront ordering covers all reads)")
    print(f"shadow entries/location (peak): {det.space_per_location()}")
    print(f"threads tracked: {det.thread_count}, "
          f"words per thread: {det.space_per_thread()}")

    print(f"\n== buggy wavefront (anti-diagonal read) ==")
    det = fill(rows, cols, buggy=True)
    print(f"races: {len(det.races)}")
    for race in det.races[:3]:
        print(f"  {race}")
    if len(det.races) > 3:
        print(f"  ... and {len(det.races) - 3} more")
