#!/usr/bin/env python3
"""Pipeline parallelism: a dedup/compress stream pipeline, monitored online.

This is the workload class the paper's Section 5 targets ("Handling
pipeline parallelism", after Lee et al.'s Cilk-P): a stream of chunks
flows through stages

    parse -> dedup -> compress -> emit

Stage-serialisation makes same-stage state (the dedup hash table, the
output offset counter) safe across chunks.  The buggy variant "optimises"
the parse stage to peek at the dedup table -- parse of chunk j+1 runs
concurrently with dedup of chunk j, a genuine race which every detector
here flags.

The example also shows the paper's space result on a pipeline scale-up:
the 2D detector's shadow stays at 2 entries per location while the
vector-clock detector's grows with the number of tasks.

Run:  python examples/pipeline_dedup.py
"""

from repro import read, run_pipeline, step, write
from repro.detectors import (
    FastTrackDetector,
    Lattice2DDetector,
    VectorClockDetector,
)


def make_stages(buggy: bool):
    """Build the four pipeline stages over abstract memory locations."""

    def parse(chunk, j):
        yield read(("input", j))
        if buggy:
            # BUG: peeking at the shared dedup table from the parse
            # stage -- unordered with stage-1 updates for earlier chunks.
            yield read(("dedup-table",), label=f"peek@chunk{j}")
        yield write(("parsed", j))

    def dedup(chunk, j):
        yield read(("parsed", j))
        yield read(("dedup-table",))
        yield write(("dedup-table",), label=f"dedup-update@chunk{j}")
        yield write(("unique", j))

    def compress(chunk, j):
        yield read(("unique", j))
        yield step()  # model compression work
        yield write(("compressed", j))

    def emit(chunk, j):
        yield read(("compressed", j))
        yield read(("output-offset",))
        yield write(("output-offset",))
        yield write(("output", j))

    return [parse, dedup, compress, emit]


def monitor(n_chunks: int, buggy: bool):
    detectors = [
        Lattice2DDetector(),
        VectorClockDetector(),
        FastTrackDetector(),
    ]
    chunks = [f"chunk-{j}" for j in range(n_chunks)]
    ex = run_pipeline(chunks, make_stages(buggy), observers=detectors)
    return ex, detectors


if __name__ == "__main__":
    print("== clean pipeline (16 chunks x 4 stages) ==")
    ex, detectors = monitor(16, buggy=False)
    print(f"tasks: {ex.task_count}, operations: {ex.op_count}")
    for det in detectors:
        print(
            f"  {det.name:12s} races={len(det.races):2d}  "
            f"peak shadow/loc={det.shadow_peak_per_location():3d}  "
            f"metadata entries={det.metadata_entries()}"
        )
    print("  -> note the Θ(1) vs Θ(n) shadow gap on the shared locations")

    print("\n== buggy pipeline (parse peeks at the dedup table) ==")
    ex, detectors = monitor(8, buggy=True)
    for det in detectors:
        print(f"  {det.name:12s} races={len(det.races)}")
    first = detectors[0].races[0]
    print(f"\nfirst report: {first}")
