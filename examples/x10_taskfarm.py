#!/usr/bin/env python3
"""Async-finish task farm with escaped asyncs, under ESP-bags and 2D.

An X10/Habanero-style task farm: a coordinator asyncs one worker per
request inside a ``finish``; workers may themselves async follow-up
tasks ("escaped asyncs") that the *outer* finish is responsible for --
the terminally-strict pattern that distinguishes async-finish from
Cilk's spawn-sync.

The buggy variant aggregates into a shared counter from inside the
block, concurrent with the workers' updates.

Run:  python examples/x10_taskfarm.py
"""

from repro import read, run, write, x10
from repro.detectors import ESPBagsDetector, Lattice2DDetector


def make_farm(n_requests: int, buggy: bool):
    def follow_up(ctx, req):
        # An escaped async: created by the worker, joined by whatever
        # finish encloses the worker's creation.
        yield write(("audit-log", req))

    def worker(ctx, req):
        yield read(("request", req))
        yield from ctx.async_(follow_up, req)
        yield write(("response", req), label=f"respond@req{req}")

    @x10
    def coordinator(ctx):
        for req in range(n_requests):
            yield write(("request", req))

        def block():
            for req in range(n_requests):
                yield from ctx.async_(worker, req)
            if buggy:
                # BUG: reading a response while its worker may still be
                # writing it -- concurrent inside the finish block.
                yield read(("response", 0), label="premature-read")

        yield from ctx.finish(block)
        # After the finish everything (including escaped follow-ups) is
        # joined: aggregating here is safe.
        for req in range(n_requests):
            yield read(("response", req))
            yield read(("audit-log", req))
        yield write(("stats",))

    return coordinator


def monitor(n: int, buggy: bool):
    detectors = [ESPBagsDetector(), Lattice2DDetector()]
    ex = run(make_farm(n, buggy), observers=detectors)
    return ex, detectors


if __name__ == "__main__":
    print("== clean task farm (8 requests) ==")
    ex, (esp, l2) = monitor(8, buggy=False)
    print(f"tasks: {ex.task_count} (coordinator + workers + follow-ups)")
    print(f"  espbags   races={len(esp.races)}  "
          f"shadow/loc={esp.shadow_peak_per_location()}")
    print(f"  lattice2d races={len(l2.races)}  "
          f"shadow/loc={l2.shadow_peak_per_location()}")
    print("  (escaped follow-up asyncs are joined by the outer finish, "
          "so the audit-log reads are safe)")

    print("\n== buggy task farm (premature stats read) ==")
    ex, (esp, l2) = monitor(4, buggy=True)
    print(f"  espbags   races={len(esp.races)}")
    print(f"  lattice2d races={len(l2.races)}")
    if l2.races:
        print(f"\nfirst 2D report:\n  {l2.races[0]}")
