"""Setup shim for legacy editable installs.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which build a wheel) fail.  ``pip install
-e . --no-use-pep517 --no-build-isolation`` uses this shim instead; all
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
