"""Tests for the dense numpy vector-clock detector."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reports import AccessKind
from repro.detectors import (
    DenseVectorClockDetector,
    VectorClockDetector,
    detector_is_sound,
    exact_races,
    first_report_is_precise,
)
from repro.errors import DetectorError
from repro.forkjoin import run
from repro.workloads.synthetic import SyntheticConfig, random_program


def fresh():
    d = DenseVectorClockDetector(initial_capacity=2)
    d.on_root(0)
    return d


class TestBasics:
    def test_parallel_writes_race(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_write(0, "x")
        assert len(d.races) == 1
        assert d.races[0].prior_repr == 1

    def test_join_orders(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_write(1, "x")
        d.on_halt(1)
        d.on_join(0, 1)
        d.on_write(0, "x")
        assert d.races == []

    def test_capacity_doubles_transparently(self):
        d = fresh()
        for i in range(1, 20):
            d.on_fork(0, i)
            d.on_read(i, "cfg")
            d.on_halt(i)
        assert d._capacity >= 20
        assert d.races == []  # reads only
        for i in range(19, 0, -1):
            d.on_join(0, i)
        d.on_write(0, "cfg")
        assert d.races == []  # all joined: ordered

    def test_double_join_rejected(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_halt(1)
        d.on_join(0, 1)
        with pytest.raises(DetectorError):
            d.on_join(0, 1)

    def test_dense_cost_counter(self):
        d = fresh()
        for i in range(1, 9):
            d.on_fork(0, i)
            d.on_halt(i)
        # Each fork copies a whole clock vector: quadratic-ish growth.
        assert d.elements_copied >= 8 * 2

    def test_shadow_is_full_vectors(self):
        d = fresh()
        d.on_fork(0, 1)
        d.on_read(1, "x")
        # One read already stores a capacity-sized vector.
        assert d.shadow_peak_per_location() >= 2


class TestAgreementWithSparse:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1))
    def test_same_verdicts_as_sparse_and_oracle(self, seed):
        cfg = SyntheticConfig(seed=seed, max_tasks=14, ops_per_task=5,
                              n_locations=3)
        dense = DenseVectorClockDetector()
        sparse = VectorClockDetector()
        ex = run(random_program(cfg), observers=[dense, sparse],
                 record_events=True)
        pairs = exact_races(ex.events)
        assert detector_is_sound(dense.races, pairs)
        assert first_report_is_precise(dense.races, pairs)
        # Report-for-report identical to the sparse implementation.
        assert [
            (r.loc, r.op_index, r.kind, r.prior_kind)
            for r in dense.races
        ] == [
            (r.loc, r.op_index, r.kind, r.prior_kind)
            for r in sparse.races
        ]

    def test_dense_metadata_dominates_sparse(self):
        from repro.forkjoin.pipeline import run_pipeline
        from repro.workloads.pipelines import clean_pipeline

        items, stages = clean_pipeline(32, 4)
        dense = DenseVectorClockDetector()
        sparse = VectorClockDetector()
        run_pipeline(items, stages, observers=[dense, sparse])
        assert dense.metadata_entries() > sparse.metadata_entries()
